#!/usr/bin/env python
"""Quickstart: detect a data race in a 20-line DSM program.

Four simulated processes share a small array.  A counter is updated under
a lock (properly synchronized — never reported); a "status word" is
updated by everyone with no synchronization at all — a write-write data
race the detector reports at the next barrier, with the affected variable
name, the race kind, and the interval pair.

Run:  python examples/quickstart.py
"""

from repro import CVM, DsmConfig


def app(env):
    counter = env.malloc(1, name="counter")
    status = env.malloc(1, name="status")
    env.barrier()

    # Properly synchronized: acquire the lock around the read-modify-write.
    for _ in range(3):
        with env.locked(0):
            env.store(counter, env.load(counter) + 1)

    # NOT synchronized: everyone scribbles on the shared status word.
    env.store(status, env.pid, site="quickstart.py:status-update")

    env.barrier()
    return env.load(counter)


def main():
    config = DsmConfig(nprocs=4, page_size_words=64, segment_words=4096)
    result = CVM(config).run(app)

    print(f"counter ended at {result.results[0]} "
          f"(3 increments x 4 processes = 12, races never corrupt it)")
    print(f"\n{len(result.races)} data race(s) detected:")
    for race in result.races:
        print(f"  {race}")

    print("\nDetector work for this run:")
    st = result.detector_stats
    print(f"  interval comparisons: {st.interval_comparisons}")
    print(f"  concurrent pairs:     {st.concurrent_pairs}")
    print(f"  bitmaps fetched:      {st.bitmaps_fetched} "
          f"of {st.bitmaps_created} created")
    assert all(r.symbol == "status" for r in result.races), \
        "only the unsynchronized word races"


if __name__ == "__main__":
    main()
