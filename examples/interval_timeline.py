#!/usr/bin/env python
"""Visualize intervals, happens-before edges and a race — Figure 2, live.

Reproduces the structure of the paper's Figure 2 from an actual traced
execution: two processes synchronizing through a lock, plus one
unsynchronized write that creates a race.  The timeline shows each
process's intervals (with the words they read/write), the release->acquire
edges the lock created, and which concurrent interval pair carries the
race.

Run:  python examples/interval_timeline.py
"""

from repro.core.timeline import timeline_from_run
from repro.dsm.config import DsmConfig
from repro.dsm.cvm import CVM


def app(env):
    x = env.malloc(1, name="x")
    y = env.malloc(1, name="y")
    env.barrier()
    if env.pid == 0:
        with env.locked(1):            # σ: w(x) under the lock
            env.store(x, 10)
        env.store(y, 77)               # unsynchronized write: half a race
    else:
        with env.locked(1):            # ordered with P0's critical section
            env.load(x)
        env.load(y)                    # the other half of the race
    env.barrier()


def main():
    config = DsmConfig(nprocs=2, page_size_words=16, segment_words=1024,
                       track_access_trace=True)
    system = CVM(config)
    result = system.run(app)

    print("interval timeline (word addresses; '!' marks racy words):\n")
    print(timeline_from_run(system, result))
    print(f"\nraces reported by the online detector:")
    for race in result.races:
        print(f"  {race}")
    assert len(result.races) == 1
    assert result.races[0].symbol == "y"


if __name__ == "__main__":
    main()
