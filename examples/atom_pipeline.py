#!/usr/bin/env python
"""The ATOM-analogue pipeline, end to end (paper §4/§5.1, Table 2).

1. Write a kernel in the mini C-like language (as source text).
2. Compile it to the mini ISA and link it against the synthetic libc and
   CVM runtime.
3. Run the static filter: classify every load/store as stack / static /
   library / CVM / instrumentable (the paper eliminates >99% statically).
4. Rewrite the binary, inserting an analysis call before each survivor.
5. Execute the instrumented binary on the interpreter and watch the
   analysis routine fire — classifying each effective address as shared
   (heap) or private, exactly the run-time check of §5.1.

Run:  python examples/atom_pipeline.py
"""

from repro.instrument.atom import AtomRewriter
from repro.instrument.binaries import table2_reports
from repro.instrument.linker import LIBC_CORE, link
from repro.instrument.machine import AnalysisCounter, Machine
from repro.instrument.parser import compile_source

KERNEL_SOURCE = """
# sum = sum(data[i]); count elements above a static threshold
static threshold, above;

func scan(data, n) {
    local i, v, sum;
    sum = 0;
    for (i = 0; i < n; i += 1) {
        v = data[i];
        sum = sum + v;
        if (threshold < v) { above = above + 1; }
    }
    return sum;
}

func main(n) {
    local p, i;
    p = malloc(n);
    for (i = 0; i < n; i += 1) { p[i] = i * i; }
    return scan(p, n);
}
"""


def main():
    obj = compile_source(KERNEL_SOURCE, name="demo")
    image = link("demo", [obj], libraries=[LIBC_CORE])
    print(f"linked binary: {image.total_instructions():,} instructions, "
          f"{image.load_store_count():,} loads/stores")

    rewriter = AtomRewriter()
    report = rewriter.analyze(image)
    print("\nstatic classification (the demo's Table 2 row):")
    for name, count in report.row().items():
        print(f"  {name:13s} {count:6d}")
    print(f"  statically eliminated: {report.eliminated_fraction:.2%}")

    instrumented = rewriter.instrument(image)
    hook = AnalysisCounter()
    machine = Machine(instrumented, analysis_hook=hook)
    result = machine.run(10)
    print(f"\nexecuted instrumented binary: scan sum = {result} "
          f"(expected {sum(i * i for i in range(10))})")
    print(f"analysis calls fired: {machine.analysis_calls} "
          f"({hook.shared} shared, {hook.private} private)")

    print("\nfull Table 2 for the paper's four applications:")
    for app, rep in table2_reports().items():
        row = rep.row()
        print(f"  {app:6s} stack={row['stack']:4d} static={row['static']:3d} "
              f"library={row['library']:6d} cvm={row['cvm']:5d} "
              f"inst={row['instrumented']:3d} "
              f"eliminated={rep.eliminated_fraction:.2%}")


if __name__ == "__main__":
    main()
