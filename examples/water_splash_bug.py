#!/usr/bin/env python
"""The Splash2 Water bug the paper found (and got fixed upstream).

Water-Nsquared accumulates a global potential-energy sum; the shipped code
missed the lock on that read-modify-write.  The paper's detector flagged
it as a write-write data race, the authors reported it, and Splash fixed
it.  This example runs the buggy and the repaired miniature Water
side-by-side across several schedules and shows:

* the detector reports write-write races on ``water_poteng`` only for the
  buggy version;
* under some interleavings the buggy version *loses updates* — the energy
  it reports is wrong, which is what makes this a genuine bug rather than
  a benign race like TSP's.

Run:  python examples/water_splash_bug.py
"""

from repro.apps.registry import APPLICATIONS
from repro.apps.water import WaterParams, water
from repro.dsm.cvm import CVM


def run(fixed: bool, seed: int):
    spec = APPLICATIONS["water"]
    cfg = spec.config(nprocs=4, policy="random", seed=seed)
    params = WaterParams(nmol=16, steps=2, fixed=fixed)
    return CVM(cfg).run(water, params)


def main():
    reference = run(fixed=True, seed=0)
    correct = reference.results[0]
    print(f"fixed Water:  potential sum = {correct:.6f}, "
          f"races = {len(reference.races)}")
    assert reference.races == []

    print("\nbuggy Water across schedules:")
    corrupted = 0
    for seed in range(6):
        res = run(fixed=False, seed=seed)
        lost = abs(res.results[0] - correct) > 1e-9
        corrupted += lost
        ww = sum(1 for r in res.races if r.kind.value == "write-write")
        print(f"  seed {seed}: potential sum = {res.results[0]:.6f} "
              f"{'(LOST UPDATES!)' if lost else '(lucky interleaving)'} — "
              f"{ww} write-write races on water_poteng")
        assert res.races and all(r.symbol.startswith("water_poteng")
                                 for r in res.races)

    print(f"\n{corrupted}/6 schedules produced a corrupted energy sum; "
          "the detector flagged the race in every run, including the "
          "lucky ones — that is the point of race detection.")


if __name__ == "__main__":
    main()
