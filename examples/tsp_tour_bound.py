#!/usr/bin/env python
"""TSP's benign races on the global tour bound, plus §6.1 attribution.

The branch-and-bound TSP deliberately reads the global best-tour bound
without locking: a stale bound only causes redundant search, never a wrong
answer.  The paper's system flags these as read-write data races — real
races, benign by design.  This example:

1. runs TSP on 8 simulated processes and shows the detector's reports;
2. verifies the answer equals the true optimum despite the races;
3. runs the two-phase replay pipeline of §6.1 to attribute the races to
   the exact source sites (the "program counter" identification the paper
   describes), using a recorded synchronization order so the races recur.

Run:  python examples/tsp_tour_bound.py
"""

from itertools import permutations

from repro.apps.registry import APPLICATIONS
from repro.apps.tsp import TspParams, _distance_matrix
from repro.replay import attribute_races


def true_optimum(n):
    dist = _distance_matrix(n)
    return min(sum(dist[t[i] * n + t[(i + 1) % n]] for i in range(n))
               for t in ((0,) + p for p in permutations(range(1, n))))


def main():
    spec = APPLICATIONS["tsp"]
    params = TspParams(ncities=9)
    result = spec.run(nprocs=8, params=params)

    print(f"TSP solved: optimal tour length {result.results[0]} "
          f"(exhaustive check: {true_optimum(params.ncities)})")
    print(f"lock acquires: {result.lock_acquires}, "
          f"intervals/barrier: {result.intervals_per_barrier:.1f}")

    print(f"\n{len(result.races)} benign data races on the tour bound:")
    for race in result.races[:5]:
        print(f"  {race}")
    if len(result.races) > 5:
        print(f"  ... and {len(result.races) - 5} more, all on tsp_bound")
    assert all(r.symbol.startswith("tsp_bound") for r in result.races)

    print("\n--- §6.1 second-run attribution (record + replay) ---")
    report = attribute_races(spec.func, params, spec.config(nprocs=8))
    print(f"synchronization log: {report.log_bytes} bytes, "
          f"{report.replay_grants} grants replayed")
    print("source sites touching the racy word:")
    for site in sorted(report.sites_for_symbol("tsp_bound")):
        print(f"  {site}")


if __name__ == "__main__":
    main()
