#!/usr/bin/env python
"""Figure 5: races that only exist on weak memory systems.

Adve et al.'s queue example, as discussed in the paper's §6.4.  P1
publishes a queue (pointer + not-empty flag) but the release is missing;
P2's check of the flag is missing its acquire.  Under lazy release
consistency the two propagations are independent: P2 observes the *fresh*
flag and the *stale* pointer (37), and starts writing into cells P3 is
concurrently filling.  A sequentially consistent machine could never
produce the cell collision — once the flag arrived, the pointer write
would have arrived with it.

The detector reports all races of the actual execution: the qPtr/qEmpty
read-write races (which SC would also produce) *and* the weak-memory-only
write-write collisions on the queue cells.  With the missing
synchronization restored (``--fixed``), the program is race-free and P2
sees pointer 100.

Run:  python examples/weak_memory_queue.py [--fixed]
"""

import sys

from repro.apps.queue_racy import (PUBLISHED_PTR, STALE_PTR, QueueParams,
                                   queue_app)
from repro.apps.registry import EXTRAS
from repro.dsm.cvm import CVM


def main(with_sync: bool):
    spec = EXTRAS["queue_racy"]
    cfg = spec.config(nprocs=3)
    result = CVM(cfg).run(queue_app, QueueParams(with_sync=with_sync))

    ptr = result.results[1]
    print(f"P2 observed qPtr = {ptr} "
          f"({'stale!' if ptr == STALE_PTR else 'fresh'})")
    if not result.races:
        print("no data races (synchronization restored)")
        assert with_sync and ptr == PUBLISHED_PTR
        return

    sc_races = [r for r in result.races
                if r.symbol.startswith(("qPtr", "qEmpty"))]
    weak_only = [r for r in result.races
                 if r.symbol.startswith("queue_cells")]
    print(f"\nraces an SC system would also produce ({len(sc_races)}):")
    for r in sc_races:
        print(f"  {r}")
    print(f"\nweak-memory-only races ({len(weak_only)}) — "
          "impossible under sequential consistency:")
    for r in weak_only:
        print(f"  {r}")
    assert any(r.kind.value == "write-write" for r in weak_only)


if __name__ == "__main__":
    main(with_sync="--fixed" in sys.argv)
