"""repro — Online Data-Race Detection via Coherency Guarantees.

A full reproduction of Perković & Keleher (OSDI 1996) on a simulated
lazy-release-consistent DSM.  Quickstart::

    from repro import CVM, DsmConfig

    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        env.store(x, env.pid)          # every process writes x: a race
        env.barrier()

    result = CVM(DsmConfig(nprocs=4)).run(app)
    for race in result.races:
        print(race)

Package map:

* :mod:`repro.dsm` — the CVM-analogue DSM (pages, LRC protocols, locks,
  barriers, intervals, vector clocks) and the application Env API;
* :mod:`repro.core` — the on-the-fly race detector and its oracles;
* :mod:`repro.instrument` — the ATOM-analogue static toolchain;
* :mod:`repro.apps` — FFT, SOR, TSP, Water and auxiliary programs;
* :mod:`repro.replay` — synchronization record/replay + attribution;
* :mod:`repro.harness` — regenerates every table and figure;
* :mod:`repro.sim`, :mod:`repro.net` — the deterministic substrate.
"""

# Import order matters: repro.dsm must initialize before repro.core is
# imported at package level (core.checklist pulls in dsm.interval, and
# dsm.cvm pulls in core.detector — importing dsm first lets both halves of
# that cycle resolve against fully-loaded submodules).
from repro.dsm.config import DsmConfig
from repro.dsm.cvm import CVM, Env, RunResult

from repro.core.detector import DetectorStats, RaceDetector
from repro.core.report import RaceKind, RaceReport
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "CVM",
    "DetectorStats",
    "DsmConfig",
    "Env",
    "RaceDetector",
    "RaceKind",
    "RaceReport",
    "ReproError",
    "RunResult",
    "__version__",
]
