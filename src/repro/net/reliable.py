"""Reliable fragmenting channel over the accounting transport.

This is the "modified communication layer" the paper promised (§5.3),
modeled in the same accounting-only style as :class:`~repro.net.transport.
Transport`: payloads still travel by reference and control flow stays
synchronous, but every datagram's fate is decided by a deterministic
:class:`~repro.net.faults.FaultInjector`, and the channel charges the
sender's virtual clock for everything reliability costs on a lossy
network — retransmissions after timeouts (capped exponential backoff),
per-fragment headers, and acknowledgements — under
``CostCategory.RETRANSMIT`` so the robustness overhead is separable from
the paper's Figure 3 categories.

Semantics:

* Messages are split into fragments that fit the datagram limit, each
  carrying its own header (fragment seqnos identify retransmitted and
  duplicated copies; the receiver suppresses duplicates by seqno).
* A dropped fragment costs the sender a timeout — doubling each retry up
  to a cap — and a retransmission.  After ``retry_budget`` total attempts
  the channel raises :class:`~repro.errors.RetryExhaustedError`; callers
  either propagate (a sync message that cannot be delivered is fatal) or
  degrade (the detector falls back to page-granularity reporting).
* Duplicated fragments are delivered then discarded (counted, no clock
  charge: the copy is the network's work, not the sender's).
* Reordered fragments arrive late by ``reorder_delay_cycles``; the
  message's arrival time is the latest fragment arrival, so reordering
  simply delays the receiver.

A channel is only placed in the send path when faults are configured
(:attr:`DsmConfig.faults_enabled`); with faults disabled, CVM keeps using
the bare transport and every ledger stays byte-identical to a build
without this module.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.errors import MessageTooLargeError, RetryExhaustedError
from repro.net.faults import FaultInjector, FaultPlan
from repro.net.message import HEADER_BYTES, Message
from repro.net.stats import TrafficStats
from repro.net.transport import Transport
from repro.sim.clock import VirtualClock
from repro.sim.costmodel import CostCategory

#: Encoded ack body: acked channel seqno, fragment count, receive window.
ACK_BODY_BYTES = 12

#: Default first-retry timeout.  Roughly two one-way latencies of the
#: default cost model (9k cycles each): the sender waits a round trip
#: before concluding the fragment or its ack was lost.
DEFAULT_TIMEOUT_CYCLES = 18_000.0

#: Backoff cap: retries never wait longer than this.
DEFAULT_MAX_TIMEOUT_CYCLES = 144_000.0

#: Default total attempts per fragment (first send + 7 retries).
DEFAULT_RETRY_BUDGET = 8


class ReliableChannel:
    """Drop-in ``Transport`` replacement adding loss tolerance.

    Exposes the same ``send``/``deliver``/``stats`` surface as
    :class:`Transport`, so the DSM layer and the detector can hold either
    without caring which.
    """

    def __init__(self, transport: Transport, plan: FaultPlan,
                 retry_budget: int = DEFAULT_RETRY_BUDGET,
                 timeout_cycles: float = DEFAULT_TIMEOUT_CYCLES,
                 max_timeout_cycles: float = DEFAULT_MAX_TIMEOUT_CYCLES):
        if retry_budget < 1:
            raise ValueError("retry_budget must be at least 1 attempt")
        if timeout_cycles <= 0:
            raise ValueError("timeout_cycles must be positive")
        self.transport = transport
        self.plan = plan
        self.injector = FaultInjector(plan)
        self.retry_budget = retry_budget
        self.timeout_cycles = timeout_cycles
        self.max_timeout_cycles = max(timeout_cycles, max_timeout_cycles)
        #: Per-(src, dst) channel sequence numbers; retransmits and
        #: network duplicates of a fragment reuse its seqno, which is how
        #: the receiver recognizes and suppresses the extra copies.
        self._next_seq: Dict[Tuple[int, int], int] = {}
        #: Memoized fragmentation plans keyed by body size.  Traffic is
        #: dominated by a handful of fixed shapes (page replies, barrier
        #: arrivals, acks), so each plan is computed once per channel —
        #: retransmitted and repeated messages reuse the tuple instead of
        #: re-deriving it.
        self._frag_cache: Dict[int, Tuple[int, ...]] = {}
        #: Optional ``(tag, src, dst)`` callback fired once per *logical*
        #: message at the end of :meth:`send`, after every fragment —
        #: retransmissions included — has been delivered.  This is the
        #: two-phase pipeline's delivery-order capture point on a lossy
        #: network: the trace records what was actually delivered, not
        #: what was first attempted.  The inner transport's own hook is
        #: left unset, so per-fragment sends, retransmits and acks never
        #: fire it.
        self.delivery_hook = None

    # -- Transport surface ------------------------------------------------ #
    @property
    def stats(self) -> TrafficStats:
        return self.transport.stats

    @property
    def cost_model(self):
        return self.transport.cost_model

    @property
    def max_datagram(self) -> int:
        return self.transport.max_datagram

    @property
    def messages(self) -> list:
        return self.transport.messages

    def deliver(self, msg: Message, dst_clock: VirtualClock) -> Any:
        return self.transport.deliver(msg, dst_clock)

    # -- sending ---------------------------------------------------------- #
    def _channel_seqno(self, src: int, dst: int) -> int:
        key = (src, dst)
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        return seq

    def _fragment_sizes(self, body_bytes: int) -> Tuple[int, ...]:
        cached = self._frag_cache.get(body_bytes)
        if cached is not None:
            return cached
        capacity = self.max_datagram - HEADER_BYTES
        sizes = []
        remaining = body_bytes
        while remaining > capacity:
            sizes.append(capacity)
            remaining -= capacity
        sizes.append(remaining)  # possibly 0 for an empty body
        plan = tuple(sizes)
        self._frag_cache[body_bytes] = plan
        return plan

    def send(self, tag: str, src: int, dst: int, payload: Any,
             body_bytes: int, src_clock: VirtualClock,
             category: CostCategory = CostCategory.BASE,
             fragmentable: bool = False) -> Message:
        """Reliably transmit a message, fragment by fragment.

        Same contract as :meth:`Transport.send`, plus loss tolerance: the
        returned message's ``arrival_time`` is the virtual time by which
        every fragment has reached the receiver (including retransmission
        and reordering delays).  Raises :class:`RetryExhaustedError` if
        any fragment's retry budget runs out.
        """
        if HEADER_BYTES + body_bytes > self.max_datagram and not fragmentable:
            raise MessageTooLargeError(HEADER_BYTES + body_bytes,
                                       self.max_datagram, tag)
        stats = self.stats
        seq = self._channel_seqno(src, dst)
        send_time = src_clock.now
        arrival = src_clock.now
        total_bytes = 0
        nfragments = 0
        for frag_idx, frag_body in enumerate(self._fragment_sizes(body_bytes)):
            nfragments += 1
            frag_arrival = self._send_fragment(
                tag, src, dst, frag_body, src_clock, category, seq, frag_idx)
            total_bytes += frag_body + HEADER_BYTES
            arrival = max(arrival, frag_arrival)
        # Cumulative ack for the whole message.  The sender is the one
        # waiting on it, so its wire time lands on the sender's clock,
        # under RETRANSMIT with everything else reliability costs.  The
        # *message* arrival stays the data arrival — the receiver has the
        # payload before it acks.
        self.transport.send("ack", dst, src, None, ACK_BODY_BYTES,
                            src_clock, category=CostCategory.RETRANSMIT)
        stats.acks += 1
        if self.delivery_hook is not None:
            self.delivery_hook(tag, src, dst)
        return Message(tag=tag, src=src, dst=dst, payload=payload,
                       nbytes=total_bytes, send_time=send_time,
                       arrival_time=arrival, seqno=seq,
                       nfragments=nfragments)

    def _send_fragment(self, tag: str, src: int, dst: int, frag_body: int,
                       src_clock: VirtualClock, category: CostCategory,
                       seq: int, frag_idx: int) -> float:
        """Send one fragment until it gets through; returns its arrival
        time on the receiver's timeline."""
        stats = self.stats
        attempt = 0
        while True:
            attempt += 1
            fate = self.injector.decide(tag, src, dst, seq, frag_idx, attempt)
            cat = category if attempt == 1 else CostCategory.RETRANSMIT
            msg = self.transport.send(tag, src, dst, None, frag_body,
                                      src_clock, category=cat)
            if attempt > 1:
                stats.retransmits += 1
            if fate.drop:
                stats.drops += 1
                if attempt >= self.retry_budget:
                    stats.retry_failures += 1
                    raise RetryExhaustedError(tag, src, dst, seq, frag_idx,
                                              attempt)
                timeout = min(self.timeout_cycles * 2.0 ** (attempt - 1),
                              self.max_timeout_cycles)
                src_clock.advance(timeout, CostCategory.RETRANSMIT)
                continue
            if fate.duplicate:
                # The network delivered a second copy; the receiver
                # recognizes the (seq, fragment) pair and discards it.
                stats.duplicates += 1
            if fate.reorder:
                stats.reorders += 1
                return msg.arrival_time + self.plan.reorder_delay_cycles
            return msg.arrival_time
