"""Simulated point-to-point network.

CVM runs its own end-to-end protocols over UDP (paper §4).  In this
reproduction, message *contents* travel between simulated processes as plain
Python object references — control flow is synchronous and deterministic —
while this package accounts for what the network would have cost: per-message
latency, per-byte bandwidth, datagram size limits, and per-tag traffic
statistics.

Wire sizes are computed from explicit field-size rules
(:mod:`repro.net.message`) so that the paper's Table 3 "message overhead of
read notices" column can be regenerated from actual byte counts.
"""

from repro.net.faults import (FaultDecision, FaultInjector, FaultPlan,
                              FaultRates)
from repro.net.message import Message, WireSizer
from repro.net.reliable import ReliableChannel
from repro.net.stats import TrafficStats
from repro.net.transport import Transport

__all__ = ["FaultDecision", "FaultInjector", "FaultPlan", "FaultRates",
           "Message", "ReliableChannel", "Transport", "TrafficStats",
           "WireSizer"]
