"""Deterministic datagram fault injection.

The paper's prototype ran over raw UDP and deferred loss and fragmentation
to a "modified communication layer" that never shipped (§5.3).  This module
supplies the fault model half of that layer: a :class:`FaultPlan` describes
per-tag drop/duplicate/reorder probabilities, and a :class:`FaultInjector`
turns the plan into concrete per-datagram decisions.

Decisions are *hash-derived*, not drawn from a stateful RNG: each decision
is a pure function of ``(seed, tag, src, dst, seqno, fragment, attempt)``.
That makes the fault schedule a property of the message's identity alone —
two runs with the same seed see the *same* drops on the *same* datagrams
regardless of how sends from different processes interleave, which is what
replay-based debugging (Ronsse & De Bosschere, PAPERS.md) needs from a
fault model.  Seqnos are per-transport (see :mod:`repro.net.message`), so
back-to-back runs in one interpreter assign identical message identities.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional


def _unit(key: str) -> float:
    """Deterministic uniform [0, 1) variate derived from ``key``.

    blake2b is stable across platforms and Python versions (unlike
    ``hash()``, which is salted per process).
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


@dataclass(frozen=True)
class FaultRates:
    """Per-datagram fault probabilities for one message class.

    Attributes:
        drop: Probability a datagram is lost in flight.
        duplicate: Probability the network delivers a second copy (the
            receiver suppresses it via the channel seqno).
        reorder: Probability a datagram is delivered late relative to its
            successors (modeled as extra arrival delay).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} rate must be in [0, 1): {rate}")

    @property
    def any(self) -> bool:
        return self.drop > 0 or self.duplicate > 0 or self.reorder > 0


@dataclass(frozen=True)
class FaultDecision:
    """The injector's verdict for one datagram transmission attempt."""

    drop: bool = False
    duplicate: bool = False
    reorder: bool = False


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded fault schedule for one run.

    Attributes:
        default: Rates applied to every message tag without an override.
        by_tag: Per-tag overrides (e.g. drop only ``"bitmap_reply"`` to
            exercise the detector's page-granularity degradation).
        seed: Schedule seed; the entire fault schedule is a deterministic
            function of it (``--fault-seed`` on the CLI).
        reorder_delay_cycles: Extra arrival latency a reordered datagram
            suffers (it went the long way round).
    """

    default: FaultRates = field(default_factory=FaultRates)
    by_tag: Dict[str, FaultRates] = field(default_factory=dict)
    seed: int = 0
    reorder_delay_cycles: float = 9_000.0

    @classmethod
    def uniform(cls, loss_rate: float = 0.0, duplicate_rate: float = 0.0,
                reorder_rate: float = 0.0, seed: int = 0) -> "FaultPlan":
        """A plan applying the same rates to every message tag."""
        return cls(default=FaultRates(drop=loss_rate, duplicate=duplicate_rate,
                                      reorder=reorder_rate), seed=seed)

    def rates_for(self, tag: str) -> FaultRates:
        return self.by_tag.get(tag, self.default)

    @property
    def enabled(self) -> bool:
        """True if any message class can experience any fault."""
        return self.default.any or any(r.any for r in self.by_tag.values())


class FaultInjector:
    """Turns a :class:`FaultPlan` into per-datagram decisions."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def decide(self, tag: str, src: int, dst: int, seqno: int,
               fragment: int = 0, attempt: int = 1) -> FaultDecision:
        """Fate of one transmission attempt of one datagram.

        The decision depends only on the plan seed and the datagram's
        identity, so retransmissions of the same fragment (``attempt`` >
        1) roll fresh — but reproducible — dice.
        """
        rates = self.plan.rates_for(tag)
        if not rates.any:
            return FaultDecision()
        ident = (f"{self.plan.seed}:{tag}:{src}>{dst}"
                 f":{seqno}.{fragment}#{attempt}")
        drop = rates.drop > 0 and _unit("drop|" + ident) < rates.drop
        if drop:
            # A dropped datagram never reaches the receiver; duplication
            # and reordering are moot.
            return FaultDecision(drop=True)
        return FaultDecision(
            duplicate=(rates.duplicate > 0
                       and _unit("dup|" + ident) < rates.duplicate),
            reorder=(rates.reorder > 0
                     and _unit("ord|" + ident) < rates.reorder))


def plan_from_rates(loss_rate: float, duplicate_rate: float,
                    reorder_rate: float, seed: int) -> Optional[FaultPlan]:
    """Build a uniform plan from scalar config fields; ``None`` when every
    rate is zero (the transport then runs bare, with zero overhead)."""
    if loss_rate <= 0 and duplicate_rate <= 0 and reorder_rate <= 0:
        return None
    return FaultPlan.uniform(loss_rate=loss_rate,
                             duplicate_rate=duplicate_rate,
                             reorder_rate=reorder_rate, seed=seed)
