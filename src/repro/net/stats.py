"""Traffic statistics.

The harness uses these counters to regenerate the paper's Table 3 "Msg
Overhead" column: the fraction of total synchronization-message bandwidth
attributable to read notices (the detector's addition) — plus general
per-tag accounting used in tests and ablations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class TrafficStats:
    """Byte and message counters, per message tag and per (src, dst) pair."""

    messages_by_tag: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_tag: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_pair: Dict[Tuple[int, int], int] = field(
        default_factory=lambda: defaultdict(int))
    #: Bytes consumed specifically by read notices (detector addition).
    read_notice_bytes: int = 0
    #: Bytes consumed by the extra bitmap-retrieval round (detector addition).
    bitmap_round_bytes: int = 0
    #: Bytes of coarse access digests piggy-backed on notice lists by the
    #: two-level detection filter (``--coarse-filter``).  Tracked apart
    #: from the message bodies — carriage is priced in cycles under
    #: ``CostCategory.COARSE_FILTER`` — and kept out of
    #: :meth:`message_overhead_fraction`, whose numerator and denominator
    #: must both count wire bytes.
    digest_bytes: int = 0
    #: Datagrams the fault layer dropped (each forces a retransmission
    #: unless the retry budget is exhausted).
    drops: int = 0
    #: Retransmitted datagrams (charged to ``CostCategory.RETRANSMIT``).
    retransmits: int = 0
    #: Network-duplicated datagrams, suppressed at the receiver by the
    #: reliable channel's per-channel sequence numbers.
    duplicates: int = 0
    #: Datagrams delivered out of order (modeled as extra arrival delay).
    reorders: int = 0
    #: Acknowledgements sent by the reliable channel.
    acks: int = 0
    #: Fragments abandoned after the retry budget ran out.
    retry_failures: int = 0

    def record(self, tag: str, src: int, dst: int, nbytes: int,
               count: int = 1) -> None:
        """Record ``count`` datagrams (fragments of one logical message)
        totalling ``nbytes`` on the wire."""
        self.messages_by_tag[tag] += count
        self.bytes_by_tag[tag] += nbytes
        self.bytes_by_pair[(src, dst)] += nbytes

    def add_read_notice_bytes(self, nbytes: int) -> None:
        self.read_notice_bytes += nbytes

    def add_bitmap_round_bytes(self, nbytes: int) -> None:
        self.bitmap_round_bytes += nbytes

    def add_digest_bytes(self, nbytes: int) -> None:
        self.digest_bytes += nbytes

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_tag.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_tag.values())

    def message_overhead_fraction(self) -> float:
        """Fraction of all bandwidth added by the race detector (read
        notices plus the bitmap round), the quantity in Table 3's "Msg
        Ohead" column."""
        total = self.total_bytes
        if total == 0:
            return 0.0
        return (self.read_notice_bytes + self.bitmap_round_bytes) / total

    def summary(self) -> Dict[str, int]:
        """Flat summary used in logs and tests."""
        return {
            "messages": self.total_messages,
            "bytes": self.total_bytes,
            "read_notice_bytes": self.read_notice_bytes,
            "bitmap_round_bytes": self.bitmap_round_bytes,
        }

    def fault_summary(self) -> Dict[str, int]:
        """Reliable-channel counters (all zero on a fault-free network)."""
        return {
            "drops": self.drops,
            "retransmits": self.retransmits,
            "duplicates": self.duplicates,
            "reorders": self.reorders,
            "acks": self.acks,
            "retry_failures": self.retry_failures,
        }
