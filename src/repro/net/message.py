"""Messages and wire-size accounting.

A :class:`Message` is a tagged payload travelling between two simulated
processes.  Its size on the wire is computed by a :class:`WireSizer`, which
knows the encoded size of the protocol data structures (version vectors,
write/read notices, word bitmaps, page contents).  Sizes follow CVM's layout
conventions: 32-bit integers for ids and indices, one vector-clock entry per
process, page-sized data blocks, and one bit per word for access bitmaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

#: Encoded size of a 32-bit integer field.
INT_BYTES = 4
#: Fixed per-message header (src, dst, tag, length, seqno...).  When a
#: fragmentable message exceeds the datagram limit, *every* UDP fragment
#: carries its own copy of this header.
HEADER_BYTES = 24


@dataclass
class Message:
    """One simulated datagram.

    Attributes:
        tag: Protocol message type, e.g. ``"lock_grant"`` or
            ``"barrier_arrival"``.
        src: Sending process id.
        dst: Receiving process id.
        payload: Arbitrary protocol data (not serialized; sizes are
            accounted separately).
        nbytes: Wire size in bytes, including one header per fragment.
        send_time: Sender's virtual time at transmission.
        arrival_time: Receiver-side virtual arrival time (filled in by the
            transport).
        seqno: Per-transport sequence number, assigned by
            :meth:`~repro.net.transport.Transport.send` at send time so
            that back-to-back runs in one interpreter see identical
            seqnos (record/replay determinism).  Messages constructed
            directly default to 0.
        nfragments: How many datagrams the message occupied on the wire.
    """

    tag: str
    src: int
    dst: int
    payload: Any
    nbytes: int
    send_time: float = 0.0
    arrival_time: float = 0.0
    seqno: int = 0
    nfragments: int = 1

    def __post_init__(self) -> None:
        if self.nbytes < HEADER_BYTES:
            raise ValueError(f"message smaller than its header: {self.nbytes}")


class WireSizer:
    """Computes encoded sizes of protocol structures.

    Parameterized by the number of processes (vector-clock width) and the
    page size in words (bitmap and page-data sizes).
    """

    def __init__(self, nprocs: int, page_size_words: int):
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        if page_size_words <= 0 or page_size_words % 8 != 0:
            raise ValueError("page_size_words must be a positive multiple of 8")
        self.nprocs = nprocs
        self.page_size_words = page_size_words
        # Shape-dependent sizes are constants of the configuration, so
        # they are computed once here; the per-message methods below just
        # return them.  Sizing a message is pure arithmetic on these
        # constants — no structure is ever serialized to measure it.
        self._vc_bytes = INT_BYTES * nprocs
        self._bitmap_bytes = page_size_words // 8
        self._page_data_bytes = page_size_words * 8
        # Coarse-digest granule mask, folded to <= 64 bits (see
        # repro.core.bitmap.digest_width_bits): recomputed here as pure
        # arithmetic so sizing never imports the bitmap layer.
        ngran = (page_size_words + 15) // 16
        while ngran > 64:
            ngran = (ngran + 1) // 2
        self._digest_bytes = 1 + (ngran + 7) // 8  # mode flag + granule mask
        self._bloom_bytes = 64 // 8

    # -- primitive fields ------------------------------------------------ #
    def ints(self, n: int = 1) -> int:
        """Size of ``n`` 32-bit integer fields."""
        return INT_BYTES * n

    def vector_clock(self) -> int:
        """One interval-index entry per process."""
        return self._vc_bytes

    # -- protocol structures --------------------------------------------- #
    def notice_list(self, npages: int) -> int:
        """A write- or read-notice list: a count plus one page id per entry.

        Read and write notices are the same size (paper §5.3); read notices
        cost more bandwidth only because reads outnumber writes.
        """
        return INT_BYTES * (1 + npages)

    def interval_record(self, nwrite_notices: int, nread_notices: int = 0) -> int:
        """An interval on the wire: owner pid + index + version vector +
        its notice lists."""
        return (INT_BYTES * (4 + nwrite_notices + nread_notices)
                + self._vc_bytes)

    def bitmap(self) -> int:
        """A word-granularity access bitmap for one page: one bit per word."""
        return self._bitmap_bytes

    def digest(self, with_bloom: bool) -> int:
        """One coarse access digest piggy-backed on a notice entry: a mode
        flag, the folded granule mask, and — for sparse access sets — the
        64-bit Bloom filter of the exact word offsets."""
        return self._digest_bytes + (self._bloom_bytes if with_bloom else 0)

    def page_data(self, word_bytes: int = 8) -> int:
        """Full page contents (Alpha: 8-byte words)."""
        if word_bytes == 8:
            return self._page_data_bytes
        return self.page_size_words * word_bytes

    def diff(self, nchanged_words: int, word_bytes: int = 8) -> int:
        """A run-length diff: count plus (offset, value) per changed word."""
        return INT_BYTES + nchanged_words * (INT_BYTES + word_bytes)

    def message(self, body_bytes: int) -> int:
        """Total wire size of a message with ``body_bytes`` of body."""
        return HEADER_BYTES + body_bytes


def sizer_for(nprocs: int, page_size_words: int) -> WireSizer:
    """Convenience constructor used by the DSM configuration."""
    return WireSizer(nprocs, page_size_words)
