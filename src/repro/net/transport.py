"""Simulated transport: latency, bandwidth, size limits, statistics.

Control flow in the simulation is synchronous (the protocol handler runs as
a direct call in the sender's thread), so the transport's job is purely to
*account* for the message: compute its wire size, enforce the maximum
datagram size, charge transmission cycles, record statistics, and compute
the receiver-side arrival time that the protocol uses to advance the
receiver's virtual clock.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.errors import MessageTooLargeError
from repro.net.message import HEADER_BYTES, Message
from repro.net.stats import TrafficStats
from repro.sim.clock import VirtualClock
from repro.sim.costmodel import CostCategory, CostModel

#: CVM ran over UDP; its effective maximum datagram size bounds how much
#: consistency information one synchronization message can carry (§5.3).
DEFAULT_MAX_DATAGRAM = 64 * 1024


class Transport:
    """Accounting-only network between simulated processes."""

    def __init__(self, cost_model: CostModel,
                 max_datagram: int = DEFAULT_MAX_DATAGRAM,
                 stats: Optional[TrafficStats] = None,
                 trace: bool = False):
        if max_datagram <= HEADER_BYTES:
            raise ValueError(
                f"max_datagram must exceed the {HEADER_BYTES}-byte header")
        self.cost_model = cost_model
        self.max_datagram = max_datagram
        self.stats = stats or TrafficStats()
        #: When tracing, every sent message is retained (tests/debugging;
        #: payloads are references, so keep runs small).
        self.trace = trace
        self.messages: list = []
        #: Per-transport sequence counter: seqnos are a property of *this*
        #: channel, not the process, so back-to-back runs in one
        #: interpreter (equivalence suites, benchmarks) assign identical
        #: seqnos and record/replay stays deterministic.
        self._seqno = itertools.count()
        #: Optional ``(tag, src, dst)`` callback fired once per *logical*
        #: message at the end of :meth:`send` — the two-phase pipeline's
        #: delivery-order capture point on a fault-free network.  On a
        #: lossy network the :class:`~repro.net.reliable.ReliableChannel`
        #: owns the hook instead (post-retransmit order) and leaves this
        #: one unset on its inner transport, so fragments, retransmits and
        #: acks never fire it.
        self.delivery_hook = None

    def send(self, tag: str, src: int, dst: int, payload: Any,
             body_bytes: int, src_clock: VirtualClock,
             category: CostCategory = CostCategory.BASE,
             fragmentable: bool = False) -> Message:
        """Transmit a message, charging the sender and returning it with its
        arrival time filled in.

        Args:
            tag: Protocol message type.
            src, dst: Endpoint process ids.
            payload: Protocol data carried by reference.
            body_bytes: Encoded body size (header added here).
            src_clock: Sender's virtual clock; charged the full
                transmission cost (CVM's protocols are sender-driven).
            category: Cost category the transmission is charged to.  Base
                protocol messages use BASE; e.g. the detector's bitmap
                round charges BITMAPS.
            fragmentable: If True, messages above the datagram limit are
                charged as multiple fragments instead of failing — the
                "modified communication layer" the paper says is coming
                (§5.3).  Default False: oversize messages raise
                :class:`MessageTooLargeError`, as in the paper's prototype.

        Returns:
            The :class:`Message`, with ``arrival_time`` set to the virtual
            time at which the receiver may consume it.
        """
        if HEADER_BYTES + body_bytes > self.max_datagram and not fragmentable:
            raise MessageTooLargeError(HEADER_BYTES + body_bytes,
                                       self.max_datagram, tag)

        # Every UDP fragment carries its own header, so a fragmented body
        # is split over the *usable* per-datagram capacity and the wire
        # size charges one header per fragment (a single-fragment message
        # is accounted exactly as before).
        capacity = self.max_datagram - HEADER_BYTES
        nfragments = max(1, -(-body_bytes // capacity))
        nbytes = body_bytes + HEADER_BYTES * nfragments
        cycles = (self.cost_model.cycles_per_byte * nbytes
                  + self.cost_model.msg_latency * nfragments)
        send_time = src_clock.now
        src_clock.advance(cycles, category)
        arrival = src_clock.now  # store-and-forward: arrival == send done

        msg = Message(tag=tag, src=src, dst=dst, payload=payload,
                      nbytes=nbytes, send_time=send_time,
                      arrival_time=arrival, seqno=next(self._seqno),
                      nfragments=nfragments)
        self.stats.record(tag, src, dst, nbytes, count=nfragments)
        if self.trace:
            self.messages.append(msg)
        if self.delivery_hook is not None:
            self.delivery_hook(tag, src, dst)
        return msg

    def deliver(self, msg: Message, dst_clock: VirtualClock) -> Any:
        """Advance the receiver's clock to the message arrival time and
        return the payload.  Idempotent with respect to clock time (a
        receiver already past the arrival time is unaffected)."""
        dst_clock.wait_until(msg.arrival_time)
        return msg.payload
