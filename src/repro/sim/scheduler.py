"""Token-passing deterministic scheduler.

Simulated processes are Python threads, but at most one ever executes: a
single *token* is passed between the dispatcher (the thread that called
:meth:`Scheduler.run`) and the process threads.  Processes hand the token
back at explicit yield points — the DSM substrate yields at synchronization
operations and page faults — and the scheduling policy picks who runs next.
Given the same policy and seed, an execution is fully reproducible.

This design lets application code (FFT, SOR, TSP, Water...) be written as
ordinary Python functions while the simulation retains complete control over
interleaving, which is what makes race *occurrence* deterministic and the
experiments repeatable.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import (DeadlineExceeded, DeadlockError, NodeCrashed,
                          ProcessFailure, SimulationError)
from repro.sim.clock import VirtualClock
from repro.sim.policy import RoundRobinPolicy, SchedulingPolicy


class ProcState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    #: Terminal fail-stop state: the process died at an injected crash
    #: point (:class:`~repro.errors.NodeCrashed`) and nothing will recover
    #: it.  Unlike DONE it marks the run as degraded: processes later
    #: blocking on the dead one deadlock, and the deadlock report names it.
    CRASHED = "crashed"


class SimProcess:
    """One simulated process: a function plus its thread, state and clock."""

    def __init__(self, pid: int, fn: Callable[..., Any], args: tuple, name: str):
        self.pid = pid
        self.fn = fn
        self.args = args
        self.name = name
        self.state = ProcState.NEW
        self.block_reason: Optional[str] = None
        self.clock = VirtualClock()
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.thread: Optional[threading.Thread] = None
        #: Number of times this process passed a yield point.
        self.yields = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimProcess(pid={self.pid}, state={self.state.value})"


class Scheduler:
    """Runs a set of :class:`SimProcess` to completion, one at a time.

    Usage::

        sched = Scheduler()
        for pid in range(8):
            sched.spawn(worker, pid)
        sched.run()

    Process code interacts with the scheduler through
    :meth:`yield_control`, :meth:`block` and :meth:`unblock`; the DSM layer
    wraps these so applications never call them directly.
    """

    _DISPATCHER = None  # token value meaning "dispatcher's turn"

    def __init__(self, policy: Optional[SchedulingPolicy] = None,
                 max_switches: int = 50_000_000,
                 deadline_seconds: Optional[float] = None):
        self.policy = policy or RoundRobinPolicy()
        self.max_switches = max_switches
        #: Wall-clock budget for the whole run (``--deadline``); ``None``
        #: disables the guard.  Checked in the dispatcher loop so the
        #: abort happens while the dispatcher holds the token — the
        #: process threads unwind quietly via the shutdown path.
        self.deadline_seconds = deadline_seconds
        self.processes: Dict[int, SimProcess] = {}
        self.switches = 0
        self._cv = threading.Condition()
        self._token: Optional[int] = self._DISPATCHER
        self._shutdown = False
        self._started = False

    # ------------------------------------------------------------------ #
    # Dispatcher side.
    # ------------------------------------------------------------------ #
    def spawn(self, fn: Callable[..., Any], *args: Any,
              name: Optional[str] = None) -> SimProcess:
        """Register a new process; it starts running when :meth:`run` is
        called.  Spawning after :meth:`run` has begun is not supported."""
        if self._started:
            raise SimulationError("cannot spawn after run() has started")
        pid = len(self.processes)
        proc = SimProcess(pid, fn, args, name or f"P{pid}")
        self.processes[pid] = proc
        return proc

    def run(self) -> None:
        """Execute all spawned processes to completion.

        Raises :class:`ProcessFailure` if any process raises, and
        :class:`DeadlockError` if all live processes block forever.
        """
        if self._started:
            raise SimulationError("run() may only be called once")
        self._started = True
        for proc in self.processes.values():
            proc.state = ProcState.READY
            proc.thread = threading.Thread(
                target=self._thread_main, args=(proc,),
                name=f"sim-{proc.name}", daemon=True)
            proc.thread.start()

        last: Optional[int] = None
        started_at = time.monotonic()
        try:
            while True:
                if (self.deadline_seconds is not None
                        and self.switches % 256 == 0):
                    elapsed = time.monotonic() - started_at
                    if elapsed > self.deadline_seconds:
                        raise DeadlineExceeded(self.deadline_seconds,
                                               elapsed, self.switches)
                ready = [p.pid for p in self.processes.values()
                         if p.state is ProcState.READY]
                if not ready:
                    blocked = {p.pid: p.block_reason or "?"
                               for p in self.processes.values()
                               if p.state is ProcState.BLOCKED}
                    if blocked:
                        raise DeadlockError(blocked,
                                            crashed=self.crashed_pids())
                    return  # everything DONE (or fail-stop CRASHED)
                self.switches += 1
                if self.switches > self.max_switches:
                    raise SimulationError(
                        f"exceeded max_switches={self.max_switches}; "
                        "likely livelock")
                pid = self.policy.pick(ready, last)
                last = pid
                self._give_token(pid)
                self._await_token()
                proc = self.processes[pid]
                if isinstance(proc.error, NodeCrashed):
                    # A fail-stop crash is not a program bug: park the
                    # process in the terminal CRASHED state and keep
                    # scheduling the survivors.  If any of them later waits
                    # on the dead node the run ends in a DeadlockError that
                    # names the crash.
                    proc.state = ProcState.CRASHED
                    proc.error = None
                    continue
                if proc.error is not None:
                    raise ProcessFailure(pid, proc.error) from proc.error
        finally:
            self._release_all_threads()

    def _give_token(self, pid: int) -> None:
        proc = self.processes[pid]
        with self._cv:
            proc.state = ProcState.RUNNING
            self._token = pid
            self._cv.notify_all()

    def _await_token(self) -> None:
        with self._cv:
            while self._token is not self._DISPATCHER:
                self._cv.wait()

    def _release_all_threads(self) -> None:
        """Unpark any threads still waiting (after an error) so they exit."""
        with self._cv:
            self._shutdown = True
            self._cv.notify_all()

    # ------------------------------------------------------------------ #
    # Process side (called from process threads, which hold the token).
    # ------------------------------------------------------------------ #
    def current(self) -> Optional[int]:
        """Pid of the process currently holding the token (None if the
        dispatcher holds it)."""
        return self._token

    def yield_control(self, pid: int) -> None:
        """Voluntary preemption point.

        Returns immediately when no other process is ready — the common
        fast path that keeps per-access overhead low.
        """
        proc = self._require_running(pid)
        proc.yields += 1
        if not any(p.state is ProcState.READY for p in self.processes.values()):
            return
        proc.state = ProcState.READY
        self._hand_back_and_wait(proc)

    def block(self, pid: int, reason: str) -> None:
        """Block the calling process until another process calls
        :meth:`unblock` on it.  ``reason`` is reported on deadlock."""
        proc = self._require_running(pid)
        proc.state = ProcState.BLOCKED
        proc.block_reason = reason
        self._hand_back_and_wait(proc)
        proc.block_reason = None

    def others_ready(self, pid: int) -> bool:
        """True if any process other than ``pid`` is currently runnable —
        used by spin-style waits to detect that yielding cannot make
        progress."""
        return any(p.pid != pid and p.state is ProcState.READY
                   for p in self.processes.values())

    def unblock(self, pid: int) -> None:
        """Make a blocked process runnable again (does not transfer control).

        Safe to call on an already-runnable process; that is a no-op, which
        simplifies broadcast wakeups (e.g. barrier releases).
        """
        proc = self.processes[pid]
        if proc.state is ProcState.BLOCKED:
            proc.state = ProcState.READY

    # ------------------------------------------------------------------ #
    # Internals.
    # ------------------------------------------------------------------ #
    def _require_running(self, pid: int) -> SimProcess:
        proc = self.processes.get(pid)
        if proc is None:
            raise SimulationError(f"unknown pid {pid}")
        if self._token != pid:
            raise SimulationError(
                f"P{pid} called into the scheduler without holding the token")
        return proc

    def _hand_back_and_wait(self, proc: SimProcess) -> None:
        """Give the token to the dispatcher and sleep until rescheduled."""
        with self._cv:
            self._token = self._DISPATCHER
            self._cv.notify_all()
            while self._token != proc.pid:
                if self._shutdown:
                    raise SystemExit  # unwind quietly after a failure
                self._cv.wait()

    def _thread_main(self, proc: SimProcess) -> None:
        # Wait for the first dispatch.
        with self._cv:
            while self._token != proc.pid:
                if self._shutdown:
                    return
                self._cv.wait()
        try:
            proc.result = proc.fn(*proc.args)
        except SystemExit:  # shutdown unwind
            return
        except BaseException as exc:  # noqa: BLE001 - reported as ProcessFailure
            proc.error = exc
        finally:
            with self._cv:
                proc.state = ProcState.DONE
                self._token = self._DISPATCHER
                self._cv.notify_all()

    # ------------------------------------------------------------------ #
    # Introspection used by the harness and tests.
    # ------------------------------------------------------------------ #
    @property
    def num_processes(self) -> int:
        return len(self.processes)

    def clocks(self) -> List[VirtualClock]:
        """Virtual clocks of all processes, in pid order."""
        return [self.processes[pid].clock for pid in sorted(self.processes)]

    def results(self) -> List[Any]:
        """Return values of all process functions, in pid order."""
        return [self.processes[pid].result for pid in sorted(self.processes)]

    def crashed_pids(self) -> List[int]:
        """Pids of processes that died fail-stop, in pid order."""
        return sorted(pid for pid, p in self.processes.items()
                      if p.state is ProcState.CRASHED)
