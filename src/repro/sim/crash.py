"""Deterministic node-crash injection.

PR 2 hardened the *message* layer (drop/duplicate/reorder with a
retransmitting channel); this module hardens the *node* layer.  A
:class:`CrashPlan` describes when simulated processes die — by a uniform
per-event probability, by explicit ``(pid, barrier generation)`` schedule
entries, or both — and a :class:`CrashInjector` turns the plan into
concrete per-event decisions.

Decisions use the same BLAKE2b recipe as :mod:`repro.net.faults`: the fate
of one event is a pure function of ``(crash seed, pid, event kind, event
count)``, where the count is a per-``(pid, kind)`` local counter.  The
crash schedule is therefore a property of each process's own event stream
— the same seed kills the same node at the same access/send/barrier no
matter how the processes interleave, which is what makes chaos sweeps
reproducible and recovered-vs-crash-free report comparisons meaningful.

Three event kinds are instrumented (the points a real fail-stop node can
die with observable consequences for the DSM and the detector):

* ``"access"`` — an instrumented shared access (the analysis routine was
  mid-flight; the open interval's bitmap updates die with the node),
* ``"send"``   — a protocol message send (lock request/grant, event set),
* ``"barrier"`` — a barrier arrival (the node dies at the epoch boundary,
  before its notices reach the master).

Whether the barrier *master* can be killed depends on the failover switch
(:mod:`repro.dsm.coordinator`).  With ``master_failover`` off — the default
— the master runs the detection analysis and the recovery protocol, so
rate-derived hits on it are suppressed and counted
(``CrashStats.master_crashes_suppressed``) and an explicit ``--crash-at
0:g`` is a configuration error.  With ``--master-failover`` on, the
coordinator is an elected, migratable role: the master is crashable like
any other node, the immunity counter stays at zero, and only real
scheduling skips (a node whose crash is still pending recovery,
``CrashStats.pending_crash_skips``) are suppressed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

#: Master-side virtual-time timeout: how long past the last live arrival
#: the barrier master waits before declaring a silent node dead.  Two
#: reliable-channel first-retry timeouts (= four one-way latencies of the
#: default cost model): long enough that a merely-slow message is not
#: mistaken for a death on a fault-free network.
DEFAULT_CRASH_DETECT_TIMEOUT = 36_000.0

#: Survivor-side virtual-time timeout of the coordinator election: how
#: long past the last live barrier arrival the surviving nodes wait for
#: the (dead) coordinator's release before electing a replacement.  Same
#: rationale and default as the death-declaration timeout above — the two
#: overlap rather than stack (``wait_until`` is monotonic).
DEFAULT_ELECTION_TIMEOUT = DEFAULT_CRASH_DETECT_TIMEOUT

#: Event kinds the injector evaluates, in documentation order.
EVENT_KINDS = ("access", "send", "barrier")


def _unit(key: str) -> float:
    """Deterministic uniform [0, 1) variate derived from ``key`` (the
    :mod:`repro.net.faults` recipe: BLAKE2b is stable across platforms and
    interpreter runs, unlike the salted builtin ``hash``)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


def parse_crash_at(specs: Iterable[str]) -> Tuple[Tuple[int, int], ...]:
    """Parse CLI ``--crash-at pid:barrier_gen`` specs into schedule pairs.

    Raises ``ValueError`` on malformed input; range checks against
    ``nprocs`` happen in ``DsmConfig.__post_init__``.
    """
    out = []
    for spec in specs:
        pid_s, sep, gen_s = spec.partition(":")
        if not sep:
            raise ValueError(
                f"bad --crash-at spec {spec!r}: expected PID:BARRIER_GEN")
        try:
            pid, gen = int(pid_s), int(gen_s)
        except ValueError:
            raise ValueError(
                f"bad --crash-at spec {spec!r}: PID and BARRIER_GEN "
                f"must be integers") from None
        if pid < 0 or gen < 0:
            raise ValueError(
                f"bad --crash-at spec {spec!r}: values must be >= 0")
        out.append((pid, gen))
    return tuple(sorted(set(out)))


@dataclass(frozen=True)
class CrashPlan:
    """A complete, seeded crash schedule for one run.

    Attributes:
        rate: Per-event death probability applied at every instrumented
            access, message send and barrier arrival (``--crash-rate``).
        seed: Schedule seed (``--crash-seed``); the entire rate-derived
            schedule is a deterministic function of it, independent of the
            scheduling seed and the network fault seed.
        at: Explicit schedule entries ``(pid, barrier_gen)``: the node dies
            at its arrival to that barrier generation (``--crash-at``).
    """

    rate: float = 0.0
    seed: int = 0
    at: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"crash rate must be in [0, 1): {self.rate}")

    @property
    def enabled(self) -> bool:
        return self.rate > 0 or bool(self.at)


class CrashInjector:
    """Turns a :class:`CrashPlan` into per-event crash decisions.

    Each process advances its own per-kind event counter; the decision for
    event ``n`` of kind ``k`` on process ``p`` is
    ``blake2b(f"crash|{seed}:{p}:{k}:{n}") < rate`` — reproducible from
    the plan alone.
    """

    def __init__(self, plan: CrashPlan):
        self.plan = plan
        self._counts: Dict[Tuple[int, str], int] = {}
        self._at: FrozenSet[Tuple[int, int]] = frozenset(plan.at)

    def decide(self, pid: int, kind: str) -> bool:
        """Fate of one event: does process ``pid`` die here?"""
        key = (pid, kind)
        count = self._counts.get(key, 0)
        self._counts[key] = count + 1
        if self.plan.rate <= 0:
            return False
        ident = f"crash|{self.plan.seed}:{pid}:{kind}:{count}"
        return _unit(ident) < self.plan.rate

    def scheduled_at(self, pid: int, generation: int) -> bool:
        """True if the explicit schedule kills ``pid`` at its arrival to
        barrier ``generation``."""
        return (pid, generation) in self._at


@dataclass
class CrashRecord:
    """One pending (not yet recovered) crash of one node."""

    kind: str
    #: The node's virtual clock reading at the crash point.
    time: float
    #: Barrier epoch the node was executing when it died.
    epoch: int


@dataclass
class CrashStats:
    """Crash/recovery counters for one run (all zero when crashes are
    disabled — the default)."""

    #: Crashes actually injected (master suppressions not included).
    crashes: int = 0
    #: Injected crashes by event kind.
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: Recoveries that restored the node from a barrier checkpoint
    #: (metadata intact: the recovered run's race report is byte-identical
    #: to the crash-free run's).
    recoveries_from_checkpoint: int = 0
    #: Recoveries with checkpointing off: pages are refetched from their
    #: managers but the node's current-epoch detection metadata is lost.
    recoveries_without_checkpoint: int = 0
    #: Interval records whose bitmaps died with a node (checkpointing off).
    intervals_lost: int = 0
    #: Rate-derived crashes of the barrier master, suppressed because with
    #: ``master_failover`` off the master runs the recovery protocol and
    #: must survive.  Stays at zero once failover makes the master
    #: crashable (the coordinator is then an elected, migratable role).
    master_crashes_suppressed: int = 0
    #: Crash opportunities skipped because the node already carries a
    #: pending, not-yet-recovered crash this epoch — a scheduling skip of
    #: the one-crash-per-epoch rule, distinct from master immunity.
    pending_crash_skips: int = 0
    #: Deaths the barrier master declared after its virtual-time timeout.
    deaths_declared: int = 0
    #: Locks whose static manager pid was declared dead and whose
    #: management (queue, prepared-grant state) was reassigned to the
    #: lowest live pid during recovery/failover.
    locks_migrated: int = 0
    #: Checkpoints written (one per node per barrier when enabled).
    checkpoints_written: int = 0
    #: Total serialized checkpoint bytes written.
    checkpoint_bytes: int = 0

    def record_crash(self, kind: str) -> None:
        self.crashes += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    @property
    def recoveries(self) -> int:
        return (self.recoveries_from_checkpoint
                + self.recoveries_without_checkpoint)

    def summary(self) -> Dict[str, int]:
        """Flat summary used in logs and tests."""
        return {
            "crashes": self.crashes,
            "master_crashes_suppressed": self.master_crashes_suppressed,
            "pending_crash_skips": self.pending_crash_skips,
            "recoveries_from_checkpoint": self.recoveries_from_checkpoint,
            "recoveries_without_checkpoint": self.recoveries_without_checkpoint,
            "intervals_lost": self.intervals_lost,
            "deaths_declared": self.deaths_declared,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_bytes": self.checkpoint_bytes,
        }


def plan_from_options(rate: float, seed: int,
                      at: Tuple[Tuple[int, int], ...]) -> Optional[CrashPlan]:
    """Build a plan from scalar config fields; ``None`` when no crash can
    ever fire (the crash layer then stays entirely out of the run)."""
    if rate <= 0 and not at:
        return None
    return CrashPlan(rate=rate, seed=seed, at=tuple(at))
