"""Deterministic execution engine for simulated parallel processes.

The paper ran its applications on eight Alpha workstations connected by ATM.
We substitute a deterministic simulation: each simulated process is a Python
thread, but a token-passing scheduler guarantees that exactly one of them
executes at a time and that every interleaving decision is made by a seeded
policy.  Runs are therefore reproducible bit-for-bit.

Wall-clock performance is replaced by *virtual time*: each process owns a
:class:`~repro.sim.clock.VirtualClock` measured in cycles, advanced explicitly
by the DSM substrate and the instrumentation runtime according to a
:class:`~repro.sim.costmodel.CostModel`.  Every charge is tagged with an
overhead category so the harness can regenerate the paper's Figure 3
decomposition exactly.
"""

from repro.sim.clock import VirtualClock
from repro.sim.costmodel import CostCategory, CostModel
from repro.sim.policy import RandomPolicy, RoundRobinPolicy, make_policy
from repro.sim.scheduler import Scheduler, SimProcess

__all__ = [
    "CostCategory",
    "CostModel",
    "RandomPolicy",
    "RoundRobinPolicy",
    "Scheduler",
    "SimProcess",
    "VirtualClock",
    "make_policy",
]
