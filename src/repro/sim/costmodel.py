"""Virtual-time cost model.

The paper reports overheads in five categories (Figure 3):

* ``CVM Mods`` — data-structure setup in the modified CVM plus the extra
  bandwidth consumed by read notices,
* ``Proc Call`` — the procedure-call overhead of the (non-inlined) ATOM
  instrumentation stubs,
* ``Access Check`` — time inside the analysis routine deciding whether an
  access is shared and setting the bitmap bit,
* ``Intervals`` — the concurrent-interval comparison algorithm,
* ``Bitmaps`` — the extra barrier round that retrieves bitmaps plus the
  bitmap comparisons themselves.

Everything else (application compute, base DSM protocol work, base
communication) is *base* time.  Slowdown is then
``(base + sum(overheads)) / base``, exactly how the paper's Figure 3 relates
to its Table 1 slowdown column.

The default cycle costs below are calibrated so that the four applications
land in the paper's reported slowdown band (≈1.8–2.6× at 8 processors) while
keeping the *relative* weight of the categories (instrumentation ≈ 68% of
overhead, interval/bitmap comparisons 3rd/4th).  Absolute cycle values are
not meaningful — only ratios are.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class CostCategory(enum.Enum):
    """Tag attached to every virtual-time charge."""

    #: Application computation and base (unmodified-CVM) protocol work.
    BASE = "base"
    #: Race-detection data-structure management + read-notice bandwidth.
    CVM_MODS = "cvm_mods"
    #: Procedure-call overhead of instrumentation stubs.
    PROC_CALL = "proc_call"
    #: Shared/private classification + bitmap bit set.
    ACCESS_CHECK = "access_check"
    #: Concurrent-interval comparison at barriers.
    INTERVALS = "intervals"
    #: Extra bitmap round + bitmap comparison.
    BITMAPS = "bitmaps"
    #: Retransmissions, retry timeouts and acks of the reliable channel
    #: (:mod:`repro.net.reliable`) on a lossy network.  Not one of the
    #: paper's Figure 3 categories — the prototype ran over bare UDP — so
    #: it is deliberately *not* in :data:`OVERHEAD_CATEGORIES`: tables and
    #: figures regenerated with faults disabled stay byte-identical.
    RETRANSMIT = "retransmit"
    #: Crash-fault tolerance: barrier checkpoints, death-declaration
    #: timeouts, recovery traffic, checkpoint restores and the deterministic
    #: re-execution of lost work (:mod:`repro.sim.crash`,
    #: :mod:`repro.dsm.checkpoint`).  Like RETRANSMIT it lies outside the
    #: paper's taxonomy and outside :data:`OVERHEAD_CATEGORIES`, so with
    #: crashes and checkpointing disabled (the default) every regenerated
    #: table and figure stays byte-identical.
    RECOVERY = "recovery"
    #: Master failover: coordinator-state journaling at barriers, the
    #: election round after the coordinator dies, detection-state migration
    #: to the new coordinator and the re-solicitation of in-flight interval
    #: metadata from survivors (:mod:`repro.dsm.coordinator`).  Like
    #: RETRANSMIT and RECOVERY it lies outside the paper's taxonomy and
    #: outside :data:`OVERHEAD_CATEGORIES`, so with failover disabled (the
    #: default) every regenerated table and figure stays byte-identical.
    FAILOVER = "failover"
    #: Sharded epoch detection (``--sharded-detection``): the shard-
    #: assignment broadcast, partner interval-record fetches, owner-side
    #: bitmap retrievals and the candidate-report tree-reduce back to the
    #: coordinator.  The *comparison work itself* stays in the paper's
    #: INTERVALS/BITMAPS categories (it merely moves to the shard owners'
    #: clocks); only the distribution protocol's traffic is priced here.
    #: Like RETRANSMIT, RECOVERY and FAILOVER it lies outside the paper's
    #: taxonomy and outside :data:`OVERHEAD_CATEGORIES`, so with sharding
    #: disabled (the default) every regenerated table and figure stays
    #: byte-identical.
    SHARDED_DETECT = "sharded_detect"
    #: Two-phase record mode (``--mode record``): appending one
    #: synchronization-order entry (lock grant, barrier arrival, message
    #: delivery) to the in-memory log and flushing the hash-framed trace
    #: file at the end of the run.  This is the *online* cost of the
    #: record/detect-offline pipeline (Ronsse & De Bosschere's
    #: non-intrusive record phase); the detector's full cost moves to the
    #: offline replay run.  Like RETRANSMIT, RECOVERY, FAILOVER and
    #: SHARDED_DETECT it lies outside the paper's taxonomy and outside
    #: :data:`OVERHEAD_CATEGORIES`, so with record mode off (the default)
    #: every regenerated table and figure stays byte-identical.
    RECORD = "record"
    #: Two-level detection filter (``--coarse-filter``): the coarse-digest
    #: bytes piggy-backed on interval records and the granule pre-checks
    #: that prove most page-overlapping pairs race-free before any bitmap
    #: is fetched.  The savings land in the BITMAPS (centralized) and
    #: SHARDED_DETECT (shard owners) categories as *fewer* fetches and
    #: comparisons; the filter's own cost is priced here, outside
    #: :data:`OVERHEAD_CATEGORIES`, so with the filter disabled every
    #: regenerated table and figure stays byte-identical.
    COARSE_FILTER = "coarse_filter"

    @property
    def is_overhead(self) -> bool:
        return self is not CostCategory.BASE


#: Categories whose charges are race-detection overhead, in Figure 3 order.
#: RETRANSMIT, RECOVERY and FAILOVER are excluded: they are robustness
#: overhead (network, node and coordinator layer respectively) outside the
#: paper's taxonomy, reported separately (see docs/robustness.md).
OVERHEAD_CATEGORIES = (
    CostCategory.CVM_MODS,
    CostCategory.PROC_CALL,
    CostCategory.ACCESS_CHECK,
    CostCategory.INTERVALS,
    CostCategory.BITMAPS,
)


@dataclass
class CostModel:
    """Cycle costs used to advance virtual clocks.

    All values are in CPU cycles of a simulated 250 MHz processor (the
    paper's DECstation Alphas), except bandwidth terms which are in
    cycles/byte.
    """

    #: Clock rate used to convert cycles to (virtual) seconds.
    clock_hz: float = 250e6

    # ------------------------------------------------------------------ #
    # Application-side costs (charged per executed operation).
    # ------------------------------------------------------------------ #
    #: One unit of application compute (a handful of ALU ops).
    compute_unit: float = 4.0
    #: A load or store that was *not* instrumented (stack/static/library).
    plain_access: float = 1.0
    #: Procedure call + return of the instrumentation stub (ATOM cannot
    #: inline, §5.1).
    proc_call: float = 46.0
    #: Shared/private classification (segment bounds compare) per call.
    access_check_private: float = 18.0
    #: Classification plus setting the per-page bitmap bit.
    access_check_shared: float = 27.0

    # ------------------------------------------------------------------ #
    # Communication costs.
    # ------------------------------------------------------------------ #
    #: Fixed per-message latency (software + wire), in cycles.
    msg_latency: float = 9_000.0
    #: Transfer cost per byte.  The raw 155 Mbit ATM figure would be ~13
    #: cycles/byte; we calibrate lower because the simulated inputs are
    #: scaled down relative to the paper's (smaller compute per page
    #: moved), which would otherwise overweight communication.
    cycles_per_byte: float = 3.0

    # ------------------------------------------------------------------ #
    # DSM protocol costs.
    # ------------------------------------------------------------------ #
    #: Handling a page fault (signal + protocol bookkeeping), excl. message.
    page_fault: float = 3_500.0
    #: Write fault on a locally-valid page (protection upgrade only).
    soft_fault: float = 600.0
    #: Creating a twin (multi-writer protocol), per page word.
    twin_per_word: float = 1.0
    #: Diff creation/application, per page word examined.
    diff_per_word: float = 1.5
    #: Per-interval record keeping at acquire/release (unmodified CVM).
    interval_bookkeeping: float = 400.0

    # ------------------------------------------------------------------ #
    # Race-detection costs (the paper's modifications).
    # ------------------------------------------------------------------ #
    #: Setting up per-interval detection structures (bitmap registration,
    #: read-notice lists) at interval creation.  Charged to CVM_MODS.
    detect_interval_setup: float = 900.0
    #: Per read-notice byte appended to synchronization messages; the
    #: bandwidth cost itself is charged via cycles_per_byte to CVM_MODS.
    #: Version-vector comparison of one interval pair (two integer
    #: compares + loop overhead).  Charged to INTERVALS.
    interval_compare: float = 2.0
    #: Page-list overlap check per page pair examined.  Charged to INTERVALS.
    page_overlap_check: float = 0.5
    #: Comparing one pair of word bitmaps (constant in page size; charged
    #: per word for generality).  Charged to BITMAPS.
    bitmap_compare_per_word: float = 0.5

    # ------------------------------------------------------------------ #
    # Crash tolerance costs (all charged to RECOVERY; zero traffic on the
    # default configuration — crashes and checkpointing disabled).
    # ------------------------------------------------------------------ #
    #: Serializing one checkpoint byte to local stable storage at a
    #: barrier departure.
    checkpoint_write_per_byte: float = 0.5
    #: Reading one checkpoint byte back during recovery.
    checkpoint_restore_per_byte: float = 0.5
    #: Fixed restart cost of a crashed node (process relaunch, DSM rejoin
    #: handshake), excluding restore and re-execution.
    crash_restart: float = 30_000.0

    # ------------------------------------------------------------------ #
    # Record-mode costs (all charged to RECORD; zero on the default
    # configuration — two-phase mode disabled).
    # ------------------------------------------------------------------ #
    #: Appending one synchronization-order entry (a lock grant, a barrier
    #: arrival, or a delivered sync message) to the in-memory record log:
    #: a buffered append, far cheaper than any detection work.
    record_entry: float = 12.0
    #: Serializing one byte of the hash-framed trace file at the end of a
    #: record run (same storage model as checkpoint writes).
    record_flush_per_byte: float = 0.5

    # ------------------------------------------------------------------ #
    # Two-level filter costs (all charged to COARSE_FILTER; zero with the
    # filter disabled).  Digest *carriage* on synchronization messages is
    # priced via cycles_per_byte against the digest wire size.
    # ------------------------------------------------------------------ #
    #: One granule pre-check of a check-list combination: two 64-bit mask
    #: ANDs (granule mask, then Bloom on a granule collision) plus the
    #: digest table lookups.  Folds in the amortized per-digest finalize
    #: (a handful of shifts over the incrementally-maintained mask).
    granule_check: float = 4.0

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to virtual seconds."""
        return cycles / self.clock_hz

    def message_cycles(self, nbytes: int) -> float:
        """Total cycles to move ``nbytes`` across the simulated network."""
        return self.msg_latency + self.cycles_per_byte * nbytes


@dataclass
class CostLedger:
    """Per-process accumulator of charges, keyed by :class:`CostCategory`."""

    totals: Dict[CostCategory, float] = field(
        default_factory=lambda: {cat: 0.0 for cat in CostCategory}
    )

    def charge(self, category: CostCategory, cycles: float) -> None:
        if cycles < 0:
            raise ValueError(f"negative charge: {cycles}")
        self.totals[category] += cycles

    @property
    def base(self) -> float:
        return self.totals[CostCategory.BASE]

    @property
    def overhead(self) -> float:
        return sum(self.totals[cat] for cat in OVERHEAD_CATEGORIES)

    @property
    def total(self) -> float:
        return self.base + self.overhead

    def merge(self, other: "CostLedger") -> None:
        """Add another ledger's charges into this one (used for system-wide
        aggregation by the harness)."""
        for cat, cycles in other.totals.items():
            self.totals[cat] += cycles

    def breakdown(self) -> Dict[str, float]:
        """Overhead per category as a fraction of *base* time.

        This is exactly the quantity plotted in the paper's Figure 3
        ("overhead added ... relative to the running time of the unaltered
        binary").
        """
        base = self.base
        if base <= 0:
            return {cat.value: 0.0 for cat in OVERHEAD_CATEGORIES}
        return {cat.value: self.totals[cat] / base for cat in OVERHEAD_CATEGORIES}
