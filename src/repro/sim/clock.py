"""Per-process virtual clocks.

Each simulated process carries a :class:`VirtualClock` measured in cycles.
Only one Python thread executes at a time, but clocks advance independently,
so the simulation models genuinely parallel execution: two processes that
each burn 1M cycles between barriers cost 1M cycles of *parallel* time, not
2M.  Synchronization points reconcile clocks (a lock grant carries the
releaser's time forward to the acquirer; a barrier advances everyone to the
maximum arrival time).
"""

from __future__ import annotations

from repro.sim.costmodel import CostCategory, CostLedger


class VirtualClock:
    """Cycle-count clock plus a per-category cost ledger.

    The ledger records *where* the cycles went (base work vs. each
    race-detection overhead category) so that the harness can reconstruct
    the paper's Figure 3 without running a separate uninstrumented baseline:
    within the model, base time is exactly total time minus tagged overhead.
    """

    __slots__ = ("now", "ledger")

    def __init__(self) -> None:
        #: Current virtual time in cycles.
        self.now: float = 0.0
        self.ledger = CostLedger()

    def advance(self, cycles: float, category: CostCategory = CostCategory.BASE) -> float:
        """Advance the clock by ``cycles``, attributing them to ``category``.

        Returns the new time.  Negative advances are illegal.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance clock by negative cycles ({cycles})")
        self.now += cycles
        self.ledger.charge(category, cycles)
        return self.now

    def advance_split(self, total: float, parts) -> float:
        """Advance the clock by a pre-summed ``total`` in one step while
        attributing the charge per category via ``parts`` — an iterable of
        ``(category, cycles)`` pairs whose cycles sum to ``total``.

        This is the fused-charge entry point of the access fast path: a
        detected shared access makes one ``advance_split`` call instead of
        three ``advance`` calls.  Because every cost-model constant is a
        dyadic rational far below 2**52, float addition over them is exact
        and associative here, so ``now`` and every per-category ledger
        total come out bit-identical to the sequential-advance chain.
        """
        if total < 0:
            raise ValueError(f"cannot advance clock by negative cycles ({total})")
        self.now += total
        charge = self.ledger.charge
        for category, cycles in parts:
            charge(category, cycles)
        return self.now

    def wait_until(self, t: float) -> float:
        """Move the clock forward to absolute time ``t`` if ``t`` is later.

        Idle waiting (e.g. blocked on a lock) is *not* attributed to any
        overhead category: the paper's overhead decomposition charges only
        work, and idle time shows up implicitly through the final clock
        value.  Returns the new time.
        """
        if t > self.now:
            self.now = t
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self.now:.0f})"
