"""Scheduling policies.

The scheduler asks its policy which of the currently-ready processes to run
next.  Policies are deterministic: :class:`RoundRobinPolicy` cycles in pid
order; :class:`RandomPolicy` draws from a seeded :class:`random.Random`.
Different seeds explore different legal interleavings — useful for shaking
out scheduling-sensitive detector behaviour in tests.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


class SchedulingPolicy:
    """Interface: pick the next pid to run from a non-empty ready list."""

    def pick(self, ready: Sequence[int], last: Optional[int]) -> int:
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Run the lowest pid strictly greater than the last one (wrapping)."""

    def pick(self, ready: Sequence[int], last: Optional[int]) -> int:
        if not ready:
            raise ValueError("ready list is empty")
        ordered: List[int] = sorted(ready)
        if last is None:
            return ordered[0]
        for pid in ordered:
            if pid > last:
                return pid
        return ordered[0]


class RandomPolicy(SchedulingPolicy):
    """Uniform random choice with a private seeded generator."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def pick(self, ready: Sequence[int], last: Optional[int]) -> int:
        if not ready:
            raise ValueError("ready list is empty")
        return self._rng.choice(sorted(ready))


def make_policy(spec: str, seed: int = 0) -> SchedulingPolicy:
    """Build a policy from a string spec: ``"round_robin"`` or ``"random"``."""
    if spec == "round_robin":
        return RoundRobinPolicy()
    if spec == "random":
        return RandomPolicy(seed)
    raise ValueError(f"unknown scheduling policy {spec!r}")
