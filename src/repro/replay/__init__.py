"""Synchronization record/replay and racy-access attribution (§6.1, §7).

The paper's reference-identification story: the online system reports the
*address* of a racy variable plus the interval indexes; mapping that back to
the *instructions* involved would require retaining a program counter per
access — prohibitive.  Instead (§6.1), a second run re-executes the program
and collects PC information only for accesses to the conflicted address.
Because the racy programs have nondeterministic synchronization order
(general races), the second run must enforce the first run's
synchronization order — the ROLT idea (§7): record minimal ordering
information (the sequence in which each lock is granted), then force the
same grant order on replay.

* :class:`~repro.replay.record.LockOrderRecorder` — first run: log grants.
* :class:`~repro.replay.replay.LockOrderEnforcer` — second run: force them.
* :func:`~repro.replay.attribute.attribute_races` — the full two-run
  pipeline: detect races, then replay with a watch on the racy addresses
  and return the access sites (our PC analogue) that produced them.

The two-phase pipeline (``--mode record`` / ``--mode detect-offline``)
extends the same machinery to the production-traffic use case: a record
run logs the *complete* synchronization order (lock grants, barrier
arrival order, sync-message delivery order) to a hash-framed trace file
with detection off, and a replay run re-executes steered by the trace
with the full detector on — see :mod:`repro.replay.trace`.
"""

from repro.replay.attribute import AttributionReport, attribute_races
from repro.replay.record import LockOrderRecorder, SyncOrderLog
from repro.replay.replay import LockOrderEnforcer
from repro.replay.trace import (
    SYNC_TAGS,
    SyncTrace,
    SyncTraceEnforcer,
    SyncTraceRecorder,
    execution_digest,
    load_trace,
    write_trace,
)

__all__ = [
    "AttributionReport",
    "LockOrderEnforcer",
    "LockOrderRecorder",
    "SYNC_TAGS",
    "SyncOrderLog",
    "SyncTrace",
    "SyncTraceEnforcer",
    "SyncTraceRecorder",
    "attribute_races",
    "execution_digest",
    "load_trace",
    "write_trace",
]
