"""Synchronization record/replay and racy-access attribution (§6.1, §7).

The paper's reference-identification story: the online system reports the
*address* of a racy variable plus the interval indexes; mapping that back to
the *instructions* involved would require retaining a program counter per
access — prohibitive.  Instead (§6.1), a second run re-executes the program
and collects PC information only for accesses to the conflicted address.
Because the racy programs have nondeterministic synchronization order
(general races), the second run must enforce the first run's
synchronization order — the ROLT idea (§7): record minimal ordering
information (the sequence in which each lock is granted), then force the
same grant order on replay.

* :class:`~repro.replay.record.LockOrderRecorder` — first run: log grants.
* :class:`~repro.replay.replay.LockOrderEnforcer` — second run: force them.
* :func:`~repro.replay.attribute.attribute_races` — the full two-run
  pipeline: detect races, then replay with a watch on the racy addresses
  and return the access sites (our PC analogue) that produced them.
"""

from repro.replay.attribute import AttributionReport, attribute_races
from repro.replay.record import LockOrderRecorder, SyncOrderLog
from repro.replay.replay import LockOrderEnforcer

__all__ = [
    "AttributionReport",
    "LockOrderEnforcer",
    "LockOrderRecorder",
    "SyncOrderLog",
    "attribute_races",
]
