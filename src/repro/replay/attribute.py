"""Two-run racy-access attribution (§6.1).

Run 1: detect races on a recording system.  Run 2: re-execute under the
recorded synchronization order with a *watch* on the racy addresses; every
access to a watched word reports its source *site* (the program-counter
analogue our Env API carries via the optional ``site=`` argument).  Because
the replay enforces the recorded grant order, the races recur exactly, and
the watch gathers sites only for the conflicted words — the paper's point
about keeping both runtime overhead and storage negligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Set, Tuple

from repro.core.report import RaceReport
from repro.dsm.config import DsmConfig
from repro.dsm.cvm import CVM
from repro.replay.record import LockOrderRecorder
from repro.replay.replay import LockOrderEnforcer


@dataclass
class SiteHit:
    """One watched access observed during the replay run."""

    pid: int
    interval_index: int
    site: str
    is_write: bool


@dataclass
class AttributionReport:
    """Races plus, per racy address, the access sites that touched it."""

    races: List[RaceReport]
    #: addr -> hits collected in the replay run.
    sites: Dict[int, List[SiteHit]]
    symbol_of: Dict[int, str]
    replay_grants: int
    log_bytes: int

    def sites_for_symbol(self, symbol: str) -> Set[str]:
        """All source sites that touched any address resolving to
        ``symbol`` (or an offset into it)."""
        out: Set[str] = set()
        for addr, hits in self.sites.items():
            name = self.symbol_of.get(addr, "")
            if name == symbol or name.startswith(symbol + "+"):
                out.update(h.site for h in hits)
        return out


def attribute_races(app: Callable[..., Any], params: Any,
                    config: DsmConfig,
                    replay_config: DsmConfig = None) -> AttributionReport:
    """Run the two-phase §6.1 pipeline and return the attribution report.

    ``replay_config`` defaults to ``config``; pass a variant (e.g. a
    different scheduling seed) to demonstrate that order enforcement — not
    scheduler determinism — is what makes the races recur.
    """
    # First run: detect and record.
    recorder = LockOrderRecorder()
    system1 = CVM(config)
    system1.lock_order = recorder
    result1 = system1.run(app, params)

    racy_addrs = sorted({r.addr for r in result1.races})
    symbol_of = {addr: system1.segment.symbol_for(addr)
                 for addr in racy_addrs}

    # Second run: enforce the order, watch only the racy words.
    enforcer = LockOrderEnforcer(recorder.log)
    system2 = CVM(replay_config or config)
    system2.lock_order = enforcer
    watch: Dict[int, List[Tuple]] = {addr: [] for addr in racy_addrs}
    system2.pc_watch = watch
    system2.run(app, params)

    sites = {addr: [SiteHit(pid, idx, site, is_write)
                    for (pid, idx, site, is_write) in hits]
             for addr, hits in watch.items()}
    return AttributionReport(
        races=result1.races,
        sites=sites,
        symbol_of=symbol_of,
        replay_grants=enforcer.grants_replayed,
        log_bytes=recorder.log.log_bytes(),
    )
