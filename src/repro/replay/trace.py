"""Canonical, hash-framed synchronization-order traces (two-phase mode).

The online detector pays its full cost on the live run.  The two-phase
pipeline (``--mode record`` / ``--mode detect-offline``) splits that cost
the way Ronsse & De Bosschere's non-intrusive record/replay scheme does
(PAPERS.md): the *record* run executes with detection off and logs only
the synchronization order — the per-lock grant sequence, the per-generation
barrier arrival order, and the delivery order of the synchronization-level
messages — while the *replay* run re-executes the application steered by
the trace with the full detector enabled, producing reports byte-identical
to a monolithic online run of the same seed and configuration.

Why logging only synchronization order suffices: the simulation's
scheduler is deterministic and driven by yield counts, not virtual time,
so with the same seed and policy the interleaving is a function of the
program's synchronization structure alone.  Detection changes *virtual
time* (clock charges, extra bitmap traffic) but never the interleaving —
which is exactly the property the equivalence suite asserts.  The trace
therefore both *steers* the replay (the lock-grant gate in
``CVM.lock_acquire``) and *verifies* it (arrival and delivery streams
raise :class:`~repro.errors.ReplayError` on the first divergence).

File format (PR 6's journal idiom): the canonical-JSON body followed by a
newline and a BLAKE2b content hash of the body.  Truncation or corruption
anywhere — including mid-hash — breaks the frame detectably, so a torn
record-side write surfaces as a loud :class:`~repro.errors.TraceError` at
replay instead of silently steering the run somewhere else.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.dsm.checkpoint import _canon, _hash_text
from repro.errors import ReplayError, TraceError
from repro.replay.record import SyncOrderLog
from repro.replay.replay import LockOrderEnforcer

#: Bump when the trace schema changes incompatibly.
TRACE_FORMAT_VERSION = 1

#: Message tags whose send sequence is identical with detection on and
#: off: the base DSM synchronization and paging protocol.  Detection-side
#: traffic (bitmap rounds, shard scatter/reduce) and robustness traffic
#: (recovery, election, acks, retransmitted fragments) are excluded — the
#: replay run legitimately adds or lacks those, so recording them would
#: make the delivery streams incomparable.
SYNC_TAGS = frozenset({
    "lock_request", "lock_forward", "lock_grant", "event_set",
    "barrier_arrival", "barrier_release",
    "page_request", "page_forward", "page_reply",
})


def execution_digest(config, app_name: str) -> str:
    """Digest of every configuration field that shapes the *execution* —
    the interleaving and the message sequence — but none that only shape
    detection or accounting.

    A record run (detection off) and its replay (detection on) must
    produce the same digest, so detection-side fields
    (``first_races_only``, ``detector_fast_path``, sharding, ...) are
    deliberately excluded; crash fields are absent because the config
    layer refuses to compose crash injection with either mode.
    """
    plan = config.effective_fault_plan()
    plan_desc: Optional[Dict[str, Any]] = None
    if config.fault_plan is not None and plan is not None:
        plan_desc = {
            "default": dataclasses.asdict(plan.default),
            "by_tag": {tag: dataclasses.asdict(rates)
                       for tag, rates in sorted(plan.by_tag.items())},
            "seed": plan.seed,
            "reorder_delay_cycles": plan.reorder_delay_cycles,
        }
    fields = {
        "version": TRACE_FORMAT_VERSION,
        "app": app_name,
        "nprocs": config.nprocs,
        "protocol": config.protocol,
        "policy": config.policy,
        "seed": config.seed,
        "page_size_words": config.page_size_words,
        "segment_words": config.segment_words,
        "max_datagram": config.max_datagram,
        "fragmentable_messages": config.fragmentable_messages,
        "loss_rate": config.loss_rate,
        "duplicate_rate": config.duplicate_rate,
        "reorder_rate": config.reorder_rate,
        "fault_seed": config.fault_seed,
        "retry_budget": config.retry_budget,
        "retransmit_timeout": config.retransmit_timeout,
        "fault_plan": plan_desc,
        "consolidation_interval": config.consolidation_interval,
    }
    return _hash_text(_canon(fields))


@dataclass
class SyncTrace:
    """One record run's complete synchronization order, plus the header
    that pins it to an execution (app, nprocs, seed..., config digest)."""

    app: str = ""
    nprocs: int = 0
    seed: int = 0
    policy: str = "round_robin"
    fault_seed: int = 0
    digest: str = ""
    #: Grant order per lock id (the ROLT log).
    lock_grants: Dict[int, List[int]] = field(default_factory=dict)
    #: Arrival order per barrier generation.
    barrier_arrivals: List[List[int]] = field(default_factory=list)
    #: Delivery order of :data:`SYNC_TAGS` messages, post-retransmit —
    #: one ``(tag, src, dst)`` per *logical* message, appended when the
    #: reliable channel has delivered every fragment.
    deliveries: List[Tuple[str, int, int]] = field(default_factory=list)

    # ---------------------------------------------------------------- #
    # Sizes and counts.
    # ---------------------------------------------------------------- #
    @property
    def total_grants(self) -> int:
        return sum(len(seq) for seq in self.lock_grants.values())

    @property
    def total_arrivals(self) -> int:
        return sum(len(gen) for gen in self.barrier_arrivals)

    @property
    def entry_count(self) -> int:
        return (self.total_grants + self.total_arrivals
                + len(self.deliveries))

    def sync_order_log(self) -> SyncOrderLog:
        """The lock-grant portion as the ROLT log the existing enforcer
        machinery consumes."""
        return SyncOrderLog(grants={lid: list(seq)
                                    for lid, seq in self.lock_grants.items()})

    # ---------------------------------------------------------------- #
    # Canonical serialization with the PR 6 journal framing.
    # ---------------------------------------------------------------- #
    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": TRACE_FORMAT_VERSION,
            "app": self.app,
            "nprocs": self.nprocs,
            "seed": self.seed,
            "policy": self.policy,
            "fault_seed": self.fault_seed,
            "digest": self.digest,
            "lock_grants": [[lid, list(seq)]
                            for lid, seq in sorted(self.lock_grants.items())],
            "barrier_arrivals": [list(gen) for gen in self.barrier_arrivals],
            "deliveries": [[tag, src, dst]
                           for tag, src, dst in self.deliveries],
        }

    def to_framed(self) -> str:
        """Canonical body + newline + content hash: a torn write breaks
        the frame detectably (same idiom as the coordinator journal)."""
        body = _canon(self.to_payload())
        return body + "\n" + _hash_text(body)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SyncTrace":
        if not isinstance(payload, dict):
            raise TraceError("trace body is not a JSON object")
        version = payload.get("version")
        if version != TRACE_FORMAT_VERSION:
            raise TraceError(
                f"trace format version {version!r} is not the supported "
                f"version {TRACE_FORMAT_VERSION}")
        required = ("app", "nprocs", "seed", "policy", "fault_seed",
                    "digest", "lock_grants", "barrier_arrivals",
                    "deliveries")
        missing = [key for key in required if key not in payload]
        if missing:
            raise TraceError(f"trace body missing fields: {missing}")
        return cls(
            app=payload["app"], nprocs=payload["nprocs"],
            seed=payload["seed"], policy=payload["policy"],
            fault_seed=payload["fault_seed"], digest=payload["digest"],
            lock_grants={int(lid): [int(p) for p in seq]
                         for lid, seq in payload["lock_grants"]},
            barrier_arrivals=[[int(p) for p in gen]
                              for gen in payload["barrier_arrivals"]],
            deliveries=[(str(tag), int(src), int(dst))
                        for tag, src, dst in payload["deliveries"]])

    @classmethod
    def parse_framed(cls, framed: str) -> "SyncTrace":
        """Validate the frame and decode the trace; raises
        :class:`TraceError` on a torn or corrupt file so replay fails
        loudly instead of silently steering a different execution."""
        body, sep, digest = framed.rpartition("\n")
        if not sep or _hash_text(body) != digest:
            raise TraceError(
                "trace file tail torn or corrupt (content hash mismatch); "
                "re-run the record phase")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise TraceError(f"trace body unparseable: {exc}")
        return cls.from_payload(payload)


def load_trace(path: str) -> SyncTrace:
    """Read and validate a trace file written by a record run."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            framed = fh.read()
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path!r}: {exc}")
    return SyncTrace.parse_framed(framed)


def write_trace(trace: SyncTrace, path: str) -> int:
    """Persist a trace file; returns the byte count (the record run's
    flush cost input).  The frame makes torn writes detectable at replay;
    the write itself is plain (a record run that dies mid-flush simply
    yields an invalid trace, which replay rejects)."""
    framed = trace.to_framed()
    data = framed.encode("utf-8")
    try:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(framed)
    except OSError as exc:
        raise TraceError(f"cannot write trace file {path!r}: {exc}")
    return len(data)


class SyncTraceRecorder:
    """Attach to a record run (``--mode record``): passively logs the
    synchronization order.

    Implements the ``CVM.lock_order`` controller protocol (grants are
    never gated while recording) plus the barrier-arrival and
    message-delivery hooks.  The CVM charges ``CostModel.record_entry``
    under ``CostCategory.RECORD`` at each capture site and the per-byte
    flush cost when the trace file is written at the end of the run.
    """

    def __init__(self) -> None:
        self.trace = SyncTrace()
        #: Entries captured (the record run's per-entry cost multiplier).
        self.entries_recorded = 0

    # -- lock controller protocol ------------------------------------- #
    def may_acquire(self, lid: int, pid: int) -> bool:
        return True

    def expected_next(self, lid: int):
        return None  # no constraint while recording

    def record_grant(self, lid: int, pid: int) -> None:
        self.trace.lock_grants.setdefault(lid, []).append(pid)
        self.entries_recorded += 1

    # -- barrier-arrival hook ------------------------------------------ #
    def on_barrier_arrival(self, generation: int, pid: int) -> None:
        while len(self.trace.barrier_arrivals) <= generation:
            self.trace.barrier_arrivals.append([])
        self.trace.barrier_arrivals[generation].append(pid)
        self.entries_recorded += 1

    # -- delivery hook (post-retransmit, one per logical message) ------ #
    def on_delivery(self, tag: str, src: int, dst: int) -> None:
        if tag not in SYNC_TAGS:
            return
        self.trace.deliveries.append((tag, src, dst))
        self.entries_recorded += 1

    def build(self, app: str, config, digest: str) -> SyncTrace:
        """Finalize the trace with its execution header."""
        t = self.trace
        t.app = app
        t.nprocs = config.nprocs
        t.seed = config.seed
        t.policy = config.policy
        t.fault_seed = config.fault_seed
        t.digest = digest
        return t


class SyncTraceEnforcer:
    """Attach to a replay run (``--mode detect-offline``): steers the
    lock-grant order through the recorded sequence (the existing ROLT
    enforcer) and *verifies* the barrier-arrival and message-delivery
    streams position by position, raising
    :class:`~repro.errors.ReplayError` on the first divergence."""

    def __init__(self, trace: SyncTrace):
        self.trace = trace
        self._locks = LockOrderEnforcer(trace.sync_order_log())
        #: Next unconsumed position per barrier generation.
        self._arrival_pos: Dict[int, int] = {}
        self._delivery_pos = 0
        self.arrivals_verified = 0
        self.deliveries_verified = 0

    @property
    def grants_replayed(self) -> int:
        return self._locks.grants_replayed

    # -- lock controller protocol (delegated) -------------------------- #
    def may_acquire(self, lid: int, pid: int) -> bool:
        return self._locks.may_acquire(lid, pid)

    def expected_next(self, lid: int):
        return self._locks.expected_next(lid)

    def record_grant(self, lid: int, pid: int) -> None:
        self._locks.record_grant(lid, pid)

    # -- barrier-arrival verification ---------------------------------- #
    def on_barrier_arrival(self, generation: int, pid: int) -> None:
        gens = self.trace.barrier_arrivals
        if generation >= len(gens):
            raise ReplayError(
                f"replay diverged: barrier generation {generation} was "
                f"never recorded (trace ends at generation {len(gens) - 1})")
        pos = self._arrival_pos.get(generation, 0)
        recorded = gens[generation]
        if pos >= len(recorded):
            raise ReplayError(
                f"replay diverged: extra arrival of P{pid} at barrier "
                f"generation {generation} (trace recorded "
                f"{len(recorded)} arrivals)")
        if recorded[pos] != pid:
            raise ReplayError(
                f"replay diverged: arrival #{pos} at barrier generation "
                f"{generation} was P{pid}, recorded P{recorded[pos]}")
        self._arrival_pos[generation] = pos + 1
        self.arrivals_verified += 1

    # -- delivery-stream verification ---------------------------------- #
    def on_delivery(self, tag: str, src: int, dst: int) -> None:
        if tag not in SYNC_TAGS:
            return
        stream = self.trace.deliveries
        pos = self._delivery_pos
        if pos >= len(stream):
            raise ReplayError(
                f"replay diverged: delivery #{pos} "
                f"({tag!r} P{src}->P{dst}) past the end of the recorded "
                f"stream ({len(stream)} deliveries)")
        want = stream[pos]
        if want != (tag, src, dst):
            raise ReplayError(
                f"replay diverged at delivery #{pos}: got {tag!r} "
                f"P{src}->P{dst}, recorded {want[0]!r} "
                f"P{want[1]}->P{want[2]}")
        self._delivery_pos = pos + 1
        self.deliveries_verified += 1

    def fully_consumed(self) -> bool:
        """True when every recorded entry was replayed and verified."""
        if not self._locks.fully_consumed():
            return False
        for gen, recorded in enumerate(self.trace.barrier_arrivals):
            if self._arrival_pos.get(gen, 0) < len(recorded):
                return False
        return self._delivery_pos >= len(self.trace.deliveries)

    def check_fully_consumed(self) -> None:
        if not self.fully_consumed():
            remaining_grants = (self.trace.total_grants
                                - self.grants_replayed)
            remaining_arrivals = (self.trace.total_arrivals
                                  - self.arrivals_verified)
            remaining_deliveries = (len(self.trace.deliveries)
                                    - self._delivery_pos)
            raise ReplayError(
                "replay ended before consuming the recorded trace: "
                f"{remaining_grants} grant(s), {remaining_arrivals} "
                f"arrival(s) and {remaining_deliveries} deliver(ies) "
                "were never replayed")
