"""Recording synchronization order (the ROLT-style first run).

The only nondeterminism in a properly-labeled DSM program is the order in
which contended synchronization is granted; logging one pid sequence per
lock therefore suffices to reproduce the execution (barriers are symmetric
and need no log).  The log is tiny — this is exactly why ROLT's first-run
overhead is minimal (§7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SyncOrderLog:
    """Grant order per lock id."""

    grants: Dict[int, List[int]] = field(default_factory=dict)

    def append(self, lid: int, pid: int) -> None:
        self.grants.setdefault(lid, []).append(pid)

    def total_grants(self) -> int:
        return sum(len(seq) for seq in self.grants.values())

    def log_bytes(self) -> int:
        """Encoded size: one 32-bit pid per grant plus one id+length per
        lock — the ordering information a ROLT first run persists."""
        return 4 * self.total_grants() + 8 * len(self.grants)


class LockOrderRecorder:
    """Attach to ``CVM.lock_order`` during the first run.

    Implements the controller protocol the DSM consults:
    :meth:`may_acquire` never blocks (recording is passive) and
    :meth:`record_grant` appends to the log.
    """

    def __init__(self) -> None:
        self.log = SyncOrderLog()

    # -- controller protocol ------------------------------------------- #
    def may_acquire(self, lid: int, pid: int) -> bool:
        return True

    def expected_next(self, lid: int):
        return None  # no constraint while recording

    def record_grant(self, lid: int, pid: int) -> None:
        self.log.append(lid, pid)
