"""Enforcing a recorded synchronization order (the second run).

The enforcer gates lock acquisition so grants happen in exactly the
recorded per-lock sequence, regardless of the second run's scheduling
policy or seed.  Divergence — a process asking for a grant the log never
gave it, or the log running dry — raises
:class:`~repro.errors.ReplayError` rather than silently producing a
different execution.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ReplayError
from repro.replay.record import SyncOrderLog


class LockOrderEnforcer:
    """Attach to ``CVM.lock_order`` during a replay run."""

    def __init__(self, log: SyncOrderLog):
        self.log = log
        self._pos: Dict[int, int] = {lid: 0 for lid in log.grants}
        self.grants_replayed = 0

    # -- controller protocol ------------------------------------------- #
    def expected_next(self, lid: int) -> Optional[int]:
        """Pid that must receive the next grant of ``lid`` (None when the
        lock has no recorded constraint left)."""
        seq = self.log.grants.get(lid)
        if seq is None:
            return None
        pos = self._pos.get(lid, 0)
        if pos >= len(seq):
            return None
        return seq[pos]

    def may_acquire(self, lid: int, pid: int) -> bool:
        expected = self.expected_next(lid)
        return expected is None or expected == pid

    def record_grant(self, lid: int, pid: int) -> None:
        expected = self.expected_next(lid)
        if expected is not None and expected != pid:
            raise ReplayError(
                f"replay diverged on lock {lid}: grant #{self._pos[lid]} "
                f"went to P{pid}, recorded P{expected}")
        if lid in self._pos:
            self._pos[lid] = self._pos.get(lid, 0) + 1
        self.grants_replayed += 1

    def fully_consumed(self) -> bool:
        """True if every recorded grant was replayed."""
        return all(self._pos.get(lid, 0) >= len(seq)
                   for lid, seq in self.log.grants.items())
