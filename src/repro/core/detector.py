"""The barrier-time race-detection algorithm (paper §4, steps 1–5).

The detector runs on the barrier master.  Inputs: every interval of the
closing epoch (their notices arrived on barrier-arrival messages; their
word bitmaps stayed with their creators).  It

1. finds concurrent interval pairs by constant-time vector-timestamp
   comparison,
2. winnows them to pairs with page-level overlap of notices — the *check
   list*,
3. retrieves, in an extra message round, exactly the word bitmaps the check
   list names,
4. intersects those bitmaps: page overlap with disjoint words is false
   sharing; any common word with at least one write is a data race, and
5. reports the race with the affected shared-segment address (resolved to a
   symbol), the interval indexes, and the epoch.

Every step's work is charged to the master's virtual clock under the
``INTERVALS`` or ``BITMAPS`` category so that Figure 3's overhead
decomposition falls out of the ledger.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.bitmap import Bitmap, digests_disjoint
from repro.core.checklist import (CheckEntry, OverlapPage, bitmaps_needed,
                                  build_check_list, build_check_list_fast,
                                  index_meetings, overlap_work, page_overlaps)
from repro.core.concurrency import (PairSearchStats, _first_after,
                                    _first_not_before, find_concurrent_pairs,
                                    group_by_pid, iter_window_pairs,
                                    model_comparison_count, scan_windows)
from repro.core.report import (IntervalRef, RaceKind, RaceReport,
                               decode_report_key, encode_report_key)
from repro.dsm.interval import Interval
from repro.errors import RetryExhaustedError
from repro.net.message import WireSizer
from repro.net.transport import Transport
from repro.sim.clock import VirtualClock
from repro.sim.costmodel import CostCategory, CostModel


#: Relative cost of one inverted-index (pair, page) meeting vs one
#: reference notice-merge probe, for the fast path's per-epoch strategy
#: choice.  Calibrated on the TSP (lock-dense) / Water (barrier) captures
#: in ``benchmarks/bench_wallclock.py``.
INDEX_MEETING_COST = 3

#: Below this many modeled comparisons an epoch is too small for the
#: window scan to pay for its own setup; the fast path just runs the
#: reference pipeline (identical verdicts and charges by construction).
SMALL_EPOCH_COMPARISONS = 4096


@dataclass
class EpochSummary:
    """One epoch's detection work, retained for diagnostics."""

    epoch: int
    intervals: int
    comparisons: int
    concurrent_pairs: int
    check_list_entries: int
    bitmaps_fetched: int
    races: int
    #: Check entries that could not be resolved because a crash destroyed
    #: one side's word bitmaps (reported, never dropped).
    unverifiable: int = 0


@dataclass
class DetectorStats:
    """Aggregate counters across all epochs of one run (Table 3 inputs)."""

    epochs_checked: int = 0
    intervals_total: int = 0
    intervals_used: int = 0          # intervals in >=1 overlapping concurrent pair
    interval_comparisons: int = 0
    concurrent_pairs: int = 0
    overlapping_pairs: int = 0       # check-list entries
    bitmaps_created: int = 0
    bitmaps_fetched: int = 0
    bitmap_comparisons: int = 0
    races_found: int = 0
    races_suppressed_not_first: int = 0
    #: Bitmap-round exchanges abandoned after the reliable channel's retry
    #: budget ran out (lossy network only; see docs/robustness.md).
    bitmap_rounds_failed: int = 0
    #: Conservative page-granularity reports emitted in place of word
    #: reports whose bitmaps could not be retrieved.
    page_granularity_reports: int = 0
    #: Concurrent overlapping pairs whose race check could not be run
    #: because a node crash (recovered without a checkpoint) destroyed the
    #: word bitmaps of at least one side.  Each such pair is surfaced as
    #: explicit ``verdict="unverifiable"`` report entries — the degraded
    #: detector stays sound by never silently dropping a check.
    unverifiable_pairs: int = 0
    #: Individual unverifiable report entries emitted (>= pair count: one
    #: per access-kind combination per overlapping page).
    unverifiable_reports: int = 0
    #: Two-level filter (``--coarse-filter``): digest pre-checks performed
    #: on check-list access-kind combinations.
    granule_checks: int = 0
    #: Combinations whose digests collided — the word bitmaps must still
    #: be fetched and intersected.
    granule_hits: int = 0
    #: Combinations the digests proved empty: their bitmap fetches and
    #: comparisons were skipped outright (the filter's win).
    pairs_filtered: int = 0
    #: Per-epoch history, in check order (includes consolidation passes).
    epoch_history: List["EpochSummary"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; ``from_dict`` round-trips it exactly
        (coordinator-state migration on master failover)."""
        data = {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)
                if f.name != "epoch_history"}
        # The filter counters only exist on filter-on runs; omitting them
        # when zero keeps filter-off journal/checkpoint bytes (and their
        # priced sizes) byte-identical to pre-filter builds.
        if not (self.granule_checks or self.granule_hits
                or self.pairs_filtered):
            for name in ("granule_checks", "granule_hits", "pairs_filtered"):
                del data[name]
        data["epoch_history"] = [dataclasses.asdict(s)
                                 for s in self.epoch_history]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DetectorStats":
        history = [EpochSummary(**entry) for entry in data["epoch_history"]]
        scalars = {k: v for k, v in data.items() if k != "epoch_history"}
        return cls(epoch_history=history, **scalars)

    @property
    def intervals_used_fraction(self) -> float:
        """Table 3 "Intervals Used": share of intervals involved in at
        least one concurrent pair with page overlap."""
        if self.intervals_total == 0:
            return 0.0
        return self.intervals_used / self.intervals_total

    @property
    def bitmaps_used_fraction(self) -> float:
        """Table 3 "Bitmaps Used": share of created bitmaps that had to be
        retrieved to separate false from true sharing."""
        if self.bitmaps_created == 0:
            return 0.0
        return self.bitmaps_fetched / self.bitmaps_created


# ---------------------------------------------------------------------- #
# Sharded execution (``--sharded-detection``): the epoch's cross-process
# pair blocks are partitioned over owner pids, each owner runs the pruned
# pair search + bitmap comparison for its blocks on its own clock, and the
# dedup-free candidate reports tree-reduce back to the coordinator, which
# commits them through the *same* cross-epoch dedup state ``run_epoch``
# uses — the emitted reports are byte-identical by construction.  The
# orchestration (scatter, fetches, reduce, crash fallback) lives in
# :mod:`repro.dsm.cvm`; everything here is pure detection logic.
# ---------------------------------------------------------------------- #
@dataclass
class DetectShard:
    """One owner's slice of an epoch: a set of process-pair blocks."""

    owner: int
    #: Assigned (p, q) blocks, p < q, in canonical block order.
    blocks: List[Tuple[int, int]] = field(default_factory=list)
    #: Naive comparison count of the assigned blocks (sum of
    #: ``|I_p| * |I_q|``) — the shard's INTERVALS charge and the
    #: load-balancing weight.
    model_comparisons: int = 0


@dataclass
class ShardPlan:
    """Partition of one epoch's pair search over shard owners.

    Blocks partition the cross-process pairs exactly, so per-shard
    aggregates (model comparisons, concurrent pairs, probe work, check
    entries, bitmap comparisons) sum to the centralized figures, and the
    per-shard candidate streams merge — by canonical entry key — into the
    centralized processing order.
    """

    #: Owner pids, coordinator first (the reduce root).
    owners: List[int]
    by_pid: Dict[int, List[Interval]]
    shards: Dict[int, DetectShard]
    intervals: List[Interval]
    #: Sum of all block weights == ``model_comparison_count(intervals)``.
    model_comparisons: int
    lost_present: bool


@dataclass
class ShardItem:
    """One check entry's dedup-free candidate reports.

    ``key`` is the canonical check-entry key ``(a.pid, b.pid, a.index,
    b.index)`` — unique across shards (an entry belongs to exactly one
    block) — so a plain sorted merge of per-shard item lists reproduces
    the centralized check-list order, and the commit step can replay the
    cross-epoch dedup exactly as ``run_epoch`` would have.
    """

    key: Tuple[int, int, int, int]
    #: "race" or "unverifiable" (crash-lost side).
    kind: str
    #: Candidate reports in centralized generation order, *not* deduped —
    #: dedup against ``_seen_keys`` is the coordinator's commit step.
    reports: List[RaceReport]
    #: Unverifiable-pair dedup key (``kind == "unverifiable"`` only).
    pair_key: Optional[Tuple] = None


@dataclass
class ShardResult:
    """One shard's computation: candidate items plus additive counters."""

    owner: int
    #: Modeled (naive) comparisons of the assigned blocks.
    comparisons: int = 0
    #: Bisection probes the pruned search actually performed.
    probes: int = 0
    concurrent_pairs: int = 0
    check_entries: int = 0
    bitmap_comparisons: int = 0
    #: (pid, index) of intervals in >= 1 overlapping pair of this shard.
    used: Set[Tuple[int, int]] = field(default_factory=set)
    #: Bitmaps the shard's check entries name (global-set union at commit).
    needed: Set[Tuple[int, int, int, str]] = field(default_factory=set)
    #: Message/byte counts of the shard-local bitmap fetches.
    fetch_messages: int = 0
    fetch_bytes: int = 0
    #: Two-level filter counters for this shard's combinations.
    granule_checks: int = 0
    granule_hits: int = 0
    pairs_filtered: int = 0
    #: Candidate items in canonical entry-key order.
    items: List[ShardItem] = field(default_factory=list)


class RaceDetector:
    """On-the-fly detector; one instance per CVM system."""

    def __init__(self, page_size_words: int, cost_model: CostModel,
                 sizer: WireSizer, transport: Transport,
                 symbol_for, master_pid: int = 0,
                 first_races_only: bool = False,
                 fast_path: bool = True,
                 coarse_filter: bool = False):
        self.page_size_words = page_size_words
        self.cost_model = cost_model
        self.sizer = sizer
        self.transport = transport
        #: Callable addr -> str, normally SharedSegment.symbol_for.
        self.symbol_for = symbol_for
        self.master_pid = master_pid
        self.first_races_only = first_races_only
        #: Execution engine selector.  True (default): pruned pair search +
        #: inverted-index check list, with the naive algorithm's work
        #: charged to virtual time analytically.  False: the paper's
        #: literal O(i^2 p^2) reference algorithm.  Verdicts, stats and
        #: ledgers are identical either way (the equivalence tests assert
        #: this); only Python wall-clock differs.
        self.fast_path = fast_path
        #: Two-level filter: pre-check every check-list combination
        #: against the coarse digests piggy-backed on the interval
        #: records, fetching and intersecting word bitmaps only on
        #: granule hits.  The filter only skips comparisons it can prove
        #: empty, so reports are byte-identical with it off — only the
        #: fetch round shrinks.  (DsmConfig defaults this on for
        #: detection runs; the bare constructor defaults off so direct
        #: detector use reproduces the paper's unfiltered pipeline.)
        self.coarse_filter = coarse_filter
        #: Vector-clock probes the fast path actually performed (pruned
        #: search), for diagnostics/benchmarks.  Deliberately *not* part of
        #: DetectorStats: the model figure there stays the naive count.
        self.actual_comparisons = 0
        self.stats = DetectorStats()
        self.races: List[RaceReport] = []
        #: ``verdict="unverifiable"`` entries (crash-lost metadata), kept
        #: apart from confirmed races so race artifacts stay comparable
        #: across runs while the degradation is still fully reported.
        self.unverifiable: List[RaceReport] = []
        self._seen_keys: Set[Tuple] = set()
        self._unverifiable_pair_keys: Set[Tuple] = set()
        self._first_race_epoch: Optional[int] = None
        self._empty = Bitmap(page_size_words)

    # ------------------------------------------------------------------ #
    # Entry point: one epoch's analysis, run on the barrier master.
    # ------------------------------------------------------------------ #
    def run_epoch(self, intervals: List[Interval], epoch: int,
                  master_clock: VirtualClock) -> List[RaceReport]:
        """Analyze a closed epoch; returns the new race reports."""
        self.stats.epochs_checked += 1
        for rec in intervals:
            self.stats.bitmaps_created += (len(rec.read_bitmaps)
                                           + len(rec.write_bitmaps))

        # Steps 2+3: concurrent pairs (constant-time VC comparisons), then
        # page-overlap winnowing into the check list.
        #
        # The fast path (default) never materializes the concurrent-pair
        # set: the pair count and the overlap probe work are computed as
        # window aggregates of the pruned O(i log i) search, and the check
        # list comes straight from an inverted page->notices index, so the
        # Python work is O(i log i + notices + output).  Virtual time is
        # *decoupled* from that execution: the master clock is charged for
        # the naive algorithm's comparison count (computed analytically)
        # and the reference probe work, exactly as the reference engine
        # charges them — ledgers, stats, and verdicts are bit-identical
        # either way.
        search = PairSearchStats()
        model = model_comparison_count(intervals)
        if self.fast_path and model > SMALL_EPOCH_COMPARISONS:
            _pair_count, probe_work, windows = scan_windows(intervals, search)
            self.actual_comparisons += search.comparisons
            search.comparisons = model
            # Adaptive check-list strategy (both produce identical
            # entries): the inverted index wins when pages are shared by
            # few intervals (barrier workloads); enumerating the scanned
            # windows wins when many *ordered* intervals pile onto the
            # same pages (lock workloads), where page overlap is a weak
            # filter.  Meetings are costlier than merge probes (dict ops
            # plus a concurrency test per candidate), hence the factor.
            if INDEX_MEETING_COST * index_meetings(intervals) <= probe_work:
                check_list = build_check_list_fast(intervals)
            else:
                check_list = build_check_list(iter_window_pairs(windows))
        else:
            pairs = list(find_concurrent_pairs(intervals, search))
            self.actual_comparisons += search.comparisons
            probe_work = sum(overlap_work(a, b) for a, b in pairs)
            check_list = build_check_list(pairs)
        self.stats.intervals_total += search.intervals
        self.stats.interval_comparisons += search.comparisons
        self.stats.concurrent_pairs += search.concurrent_pairs
        master_clock.advance(
            self.cost_model.interval_compare * max(1, search.comparisons),
            CostCategory.INTERVALS)
        master_clock.advance(
            self.cost_model.page_overlap_check * probe_work,
            CostCategory.INTERVALS)
        self.stats.overlapping_pairs += len(check_list)
        used: Set[Tuple[int, int]] = set()
        for entry in check_list:
            used.add((entry.a.pid, entry.a.index))
            used.add((entry.b.pid, entry.b.index))
        self.stats.intervals_used += len(used)

        # Crash degradation: an interval marked *lost* kept its page-level
        # notices (they travelled on synchronization messages before the
        # crash) but its word bitmaps died with the node, so it still
        # participates in the concurrency search and the check list — its
        # entries just cannot be bitmap-resolved.  They are split off here
        # and reported as explicit ``unverifiable`` entries in step 5.
        lost_present = any(rec.lost for rec in intervals)
        if lost_present:
            resolvable = [e for e in check_list
                          if not (e.a.lost or e.b.lost)]
        else:
            resolvable = check_list

        # Two-level filter (first level): pre-check every combination of
        # the resolvable entries against the coarse digests that arrived
        # piggy-backed on the interval records.  Digest-disjoint
        # combinations are provably race-free — they leave the fetch set
        # *and* the comparison loop; only granule hits go on.
        plan: Dict[int, Optional[List[OverlapPage]]] = {}
        if self.coarse_filter:
            effective: List[CheckEntry] = []
            checks = hits = 0
            for entry in resolvable:
                pages, entry_checks, entry_hits = self._filter_pages(entry)
                checks += entry_checks
                hits += entry_hits
                plan[id(entry)] = pages
                if pages:
                    effective.append(CheckEntry(entry.a, entry.b, pages))
            self.stats.granule_checks += checks
            self.stats.granule_hits += hits
            self.stats.pairs_filtered += checks - hits
            master_clock.advance(
                self.cost_model.granule_check * checks,
                CostCategory.COARSE_FILTER)
            needed = bitmaps_needed(effective)
        else:
            needed = bitmaps_needed(resolvable)

        # Step 4: the extra barrier round retrieving exactly the bitmaps
        # the check list names.  On a lossy network an owner's exchange can
        # exhaust its retry budget; those owners' bitmaps stay unavailable
        # and the affected check entries degrade to page granularity below.
        failed_owners = self._charge_bitmap_round(needed, master_clock)
        if failed_owners:
            fetched = sum(1 for pid, _idx, _page, _kind in needed
                          if pid not in failed_owners)
        else:
            fetched = len(needed)
        self.stats.bitmaps_fetched += fetched

        # Step 5: bitmap comparison -> race reports.  Entries touching a
        # lost interval go to the unverifiable side channel instead.
        new_races: List[RaceReport] = []
        new_unverifiable: List[RaceReport] = []
        for entry in check_list:
            if lost_present and (entry.a.lost or entry.b.lost):
                new_unverifiable.extend(
                    self._report_unverifiable(entry, epoch))
                continue
            new_races.extend(self._compare_entry(
                entry, epoch, master_clock, failed_owners,
                pages=plan.get(id(entry)) if self.coarse_filter else None))
        self.unverifiable.extend(new_unverifiable)

        self.stats.epoch_history.append(EpochSummary(
            epoch=epoch, intervals=search.intervals,
            comparisons=search.comparisons,
            concurrent_pairs=search.concurrent_pairs,
            check_list_entries=len(check_list),
            bitmaps_fetched=fetched, races=len(new_races),
            unverifiable=len(new_unverifiable)))

        if self.first_races_only and new_races:
            if self._first_race_epoch is None:
                self._first_race_epoch = epoch
            elif epoch > self._first_race_epoch:
                # Races in a later epoch are necessarily affected by the
                # earlier ones (a barrier orders the epochs), hence not
                # "first" races (§6.4).
                self.stats.races_suppressed_not_first += len(new_races)
                return []
        self.races.extend(new_races)
        self.stats.races_found += len(new_races)
        return new_races

    # ------------------------------------------------------------------ #
    # State migration (master failover).
    #
    # Everything a replacement coordinator needs to continue detection
    # with identical verdicts *and* identical artifacts: the accumulated
    # reports, the aggregate statistics, and — critically — the cross-epoch
    # deduplication state.  ``RaceReport.key()`` deliberately excludes the
    # epoch, so dropping ``_seen_keys`` on migration would re-report or
    # mis-deduplicate races found before the crash.
    # ------------------------------------------------------------------ #
    def serialize_state(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of all mutable detector state.

        ``restore_state`` on a freshly constructed detector (same
        configuration, possibly a different ``master_pid``) reproduces the
        original byte for byte — the coordinator journals this dict at
        every barrier and replays it into the elected successor."""
        return {
            "stats": self.stats.to_dict(),
            "races": [r.to_dict() for r in self.races],
            "unverifiable": [r.to_dict() for r in self.unverifiable],
            "seen_keys": sorted(
                (encode_report_key(k) for k in self._seen_keys),
                key=json.dumps),
            "unverifiable_pair_keys": sorted(
                [list(a), list(b)]
                for a, b in self._unverifiable_pair_keys),
            "first_race_epoch": self._first_race_epoch,
            "actual_comparisons": self.actual_comparisons,
        }

    def restore_state(self, data: Dict[str, Any]) -> None:
        """Install a ``serialize_state`` snapshot, replacing all mutable
        state.  Constructor-time configuration (cost model, sizer,
        ``master_pid``, engine selection) is deliberately untouched: the
        role's *owner* changed, not the algorithm."""
        self.stats = DetectorStats.from_dict(data["stats"])
        self.races = [RaceReport.from_dict(d) for d in data["races"]]
        self.unverifiable = [RaceReport.from_dict(d)
                             for d in data["unverifiable"]]
        self._seen_keys = {decode_report_key(k) for k in data["seen_keys"]}
        self._unverifiable_pair_keys = {
            (tuple(a), tuple(b))
            for a, b in data["unverifiable_pair_keys"]}
        self._first_race_epoch = data["first_race_epoch"]
        self.actual_comparisons = data["actual_comparisons"]

    # ------------------------------------------------------------------ #
    # Sharded execution primitives (see the module-level note above the
    # shard dataclasses).  ``plan_shards`` -> per-owner ``compute_shard``
    # -> pairwise ``merge_shard_items`` -> ``commit_sharded`` on the
    # coordinator reproduces ``run_epoch``'s reports and statistics
    # byte-identically; the cvm layer drives the phases and prices the
    # distribution traffic.
    # ------------------------------------------------------------------ #
    def plan_shards(self, intervals: List[Interval],
                    owners: List[int]) -> Optional[ShardPlan]:
        """Partition the epoch's pair blocks over ``owners`` (coordinator
        first).  Returns None when sharding cannot help — fewer than two
        owners, or no cross-process blocks — in which case the caller runs
        the centralized engine for this epoch.

        Assignment is greedy weight-balanced over the block weights
        ``|I_p| * |I_q|``, restricted to owners that are an endpoint of
        the block (they already hold half the records locally); blocks
        with no live endpoint owner land on the coordinator, which holds
        every record.  Deterministic: blocks are visited in canonical
        order and ties break by owner rank.
        """
        if len(owners) < 2:
            return None
        by_pid = group_by_pid(intervals)
        pids = sorted(by_pid)
        if len(pids) < 2:
            return None
        owner_rank = {pid: rank for rank, pid in enumerate(owners)}
        load: Dict[int, int] = {pid: 0 for pid in owners}
        shards = {pid: DetectShard(owner=pid) for pid in owners}
        total = 0
        for i, p in enumerate(pids):
            for q in pids[i + 1:]:
                weight = len(by_pid[p]) * len(by_pid[q])
                total += weight
                candidates = [x for x in (p, q) if x in owner_rank]
                if candidates:
                    owner = min(candidates,
                                key=lambda x: (load[x], owner_rank[x]))
                else:
                    owner = owners[0]
                shards[owner].blocks.append((p, q))
                shards[owner].model_comparisons += weight
                load[owner] += weight
        return ShardPlan(owners=list(owners), by_pid=by_pid, shards=shards,
                         intervals=list(intervals), model_comparisons=total,
                         lost_present=any(rec.lost for rec in intervals))

    def compute_shard(self, shard: DetectShard, plan: ShardPlan,
                      epoch: int, clock: VirtualClock) -> ShardResult:
        """Run the pruned pair search + bitmap comparison for one shard's
        blocks on the owner's ``clock``.

        Charges mirror the centralized engine exactly — the naive
        comparison model under INTERVALS, overlap probes under INTERVALS,
        one BITMAPS charge per bitmap comparison — they just land on the
        owner's ledger.  Bitmaps the shard names but the owner does not
        hold are fetched with the same byte formulas as the centralized
        bitmap round, priced under SHARDED_DETECT;
        :class:`repro.errors.RetryExhaustedError` propagates so the
        caller can fall back to centralized detection for the epoch.

        Mutates **no** detector state: every counter lives in the
        returned :class:`ShardResult`, so an abandoned sharded pass (crash
        or network fallback) leaves the detector exactly as it was.
        """
        res = ShardResult(owner=shard.owner,
                          comparisons=shard.model_comparisons)
        if not shard.blocks:
            return res
        search = PairSearchStats()
        windows = []
        probe_work = 0
        for p, q in shard.blocks:
            qs = plan.by_pid[q]
            pre = [0]
            for rec in qs:
                pre.append(pre[-1] + len(rec.write_pages)
                           + len(rec.read_pages))
            for a in plan.by_pid[p]:
                lo = _first_not_before(a, qs, search)
                hi = _first_after(a, qs, search)
                if hi > lo:
                    width = hi - lo
                    res.concurrent_pairs += width
                    probe_work += (width * (len(a.write_pages)
                                            + len(a.read_pages))
                                   + pre[hi] - pre[lo])
                    windows.append((a, qs, lo, hi))
        res.probes = search.comparisons
        clock.advance(
            self.cost_model.interval_compare * shard.model_comparisons,
            CostCategory.INTERVALS)
        clock.advance(self.cost_model.page_overlap_check * probe_work,
                      CostCategory.INTERVALS)
        check_list = build_check_list(iter_window_pairs(windows))
        res.check_entries = len(check_list)
        for entry in check_list:
            res.used.add((entry.a.pid, entry.a.index))
            res.used.add((entry.b.pid, entry.b.index))
        if plan.lost_present:
            resolvable = [e for e in check_list
                          if not (e.a.lost or e.b.lost)]
        else:
            resolvable = check_list
        # Two-level filter, shard-side: identical digest pre-checks on the
        # owner's clock.  Blocks partition the centralized entries exactly,
        # so the per-shard counters sum to the centralized figures and the
        # committed stats stay engine-independent.
        fplan: Dict[int, Optional[List[OverlapPage]]] = {}
        if self.coarse_filter:
            effective: List[CheckEntry] = []
            for entry in resolvable:
                pages, entry_checks, entry_hits = self._filter_pages(entry)
                res.granule_checks += entry_checks
                res.granule_hits += entry_hits
                res.pairs_filtered += entry_checks - entry_hits
                fplan[id(entry)] = pages
                if pages:
                    effective.append(CheckEntry(entry.a, entry.b, pages))
            clock.advance(self.cost_model.granule_check * res.granule_checks,
                          CostCategory.COARSE_FILTER)
            res.needed = bitmaps_needed(effective)
        else:
            res.needed = bitmaps_needed(resolvable)
        res.fetch_messages, res.fetch_bytes = self._charge_shard_bitmap_round(
            shard.owner, res.needed, clock)
        for entry in check_list:
            if plan.lost_present and (entry.a.lost or entry.b.lost):
                res.items.append(self._shard_unverifiable_item(entry, epoch))
            else:
                item = self._shard_race_item(
                    entry, epoch, clock, res,
                    pages=fplan.get(id(entry)) if self.coarse_filter
                    else None)
                if item is not None:
                    res.items.append(item)
        return res

    @staticmethod
    def merge_shard_items(left: List[ShardItem],
                          right: List[ShardItem]) -> List[ShardItem]:
        """One tree-reduce step: merge two key-sorted item lists.  Keys
        are unique across shards, so this is a plain sorted merge."""
        merged: List[ShardItem] = []
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i].key <= right[j].key:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged

    def shard_reduce_bytes(self, items: List[ShardItem]) -> int:
        """Encoded size of one reduce payload: a per-item entry header
        plus a fixed record per candidate report (kind, page, offset,
        epoch, two interval refs, verdict flags)."""
        total = self.sizer.ints(1)
        for item in items:
            total += self.sizer.ints(6)
            total += len(item.reports) * self.sizer.ints(10)
        return total

    def commit_sharded(self, plan: ShardPlan, results: List[ShardResult],
                       items: List[ShardItem], epoch: int,
                       master_clock: VirtualClock) -> List[RaceReport]:
        """Coordinator-side commit of a sharded epoch: fold the reduced
        candidate stream through the cross-epoch dedup state and update
        every statistic exactly as ``run_epoch`` would have.

        ``items`` is the fully merged, key-sorted candidate list — the
        centralized check-list order — so first-occurrence dedup against
        ``_seen_keys`` keeps precisely the reports the centralized engine
        keeps, in the same order.
        """
        self.stats.epochs_checked += 1
        for rec in plan.intervals:
            self.stats.bitmaps_created += (len(rec.read_bitmaps)
                                           + len(rec.write_bitmaps))
        self.stats.intervals_total += len(plan.intervals)
        self.stats.interval_comparisons += plan.model_comparisons
        self.stats.concurrent_pairs += sum(r.concurrent_pairs
                                           for r in results)
        self.actual_comparisons += sum(r.probes for r in results)
        self.stats.overlapping_pairs += sum(r.check_entries for r in results)
        used: Set[Tuple[int, int]] = set()
        needed: Set[Tuple[int, int, int, str]] = set()
        for r in results:
            used |= r.used
            needed |= r.needed
        self.stats.intervals_used += len(used)
        fetched = len(needed)
        self.stats.bitmaps_fetched += fetched
        self.stats.bitmap_comparisons += sum(r.bitmap_comparisons
                                             for r in results)
        self.stats.granule_checks += sum(r.granule_checks for r in results)
        self.stats.granule_hits += sum(r.granule_hits for r in results)
        self.stats.pairs_filtered += sum(r.pairs_filtered for r in results)

        new_races: List[RaceReport] = []
        new_unverifiable: List[RaceReport] = []
        for item in items:
            if item.kind == "unverifiable":
                if item.pair_key not in self._unverifiable_pair_keys:
                    self._unverifiable_pair_keys.add(item.pair_key)
                    self.stats.unverifiable_pairs += 1
                for report in item.reports:
                    key = report.key()
                    if key not in self._seen_keys:
                        self._seen_keys.add(key)
                        self.stats.unverifiable_reports += 1
                        new_unverifiable.append(report)
            else:
                for report in item.reports:
                    key = report.key()
                    if key not in self._seen_keys:
                        self._seen_keys.add(key)
                        new_races.append(report)
        self.unverifiable.extend(new_unverifiable)

        self.stats.epoch_history.append(EpochSummary(
            epoch=epoch, intervals=len(plan.intervals),
            comparisons=plan.model_comparisons,
            concurrent_pairs=sum(r.concurrent_pairs for r in results),
            check_list_entries=sum(r.check_entries for r in results),
            bitmaps_fetched=fetched, races=len(new_races),
            unverifiable=len(new_unverifiable)))

        if self.first_races_only and new_races:
            if self._first_race_epoch is None:
                self._first_race_epoch = epoch
            elif epoch > self._first_race_epoch:
                self.stats.races_suppressed_not_first += len(new_races)
                return []
        self.races.extend(new_races)
        self.stats.races_found += len(new_races)
        return new_races

    def _charge_shard_bitmap_round(
            self, owner: int, needed: Set[Tuple[int, int, int, str]],
            clock: VirtualClock) -> Tuple[int, int]:
        """Shard-local bitmap retrieval: same byte formulas as the
        centralized round, on the owner's clock, priced under
        SHARDED_DETECT (the round exists only because of sharding — the
        per-shard fetches may overlap across owners, which the separate
        category keeps honest).  Returns ``(messages, bytes)``;
        RetryExhaustedError propagates to trigger the centralized
        fallback."""
        nmsgs = nbytes = 0
        if not needed:
            return nmsgs, nbytes
        by_owner: Dict[int, int] = {}
        for pid, _idx, _page, _kind in needed:
            by_owner[pid] = by_owner.get(pid, 0) + 1
        for pid in sorted(by_owner):
            if pid == owner:
                continue  # the shard owner's own bitmaps are local
            count = by_owner[pid]
            req_bytes = self.sizer.ints(1 + 4 * count)
            reply_bytes = self.sizer.ints(1) + count * (
                self.sizer.ints(4) + self.sizer.bitmap())
            msg = self.transport.send(
                "shard_bitmap_request", owner, pid, None, req_bytes,
                clock, category=CostCategory.SHARDED_DETECT)
            nmsgs += 1
            nbytes += msg.nbytes
            msg = self.transport.send(
                "shard_bitmap_reply", pid, owner, None, reply_bytes,
                clock, category=CostCategory.SHARDED_DETECT,
                fragmentable=True)
            nmsgs += 1
            nbytes += msg.nbytes
        return nmsgs, nbytes

    def _shard_race_item(self, entry: CheckEntry, epoch: int,
                         clock: VirtualClock, res: ShardResult,
                         pages: Optional[List[OverlapPage]] = None
                         ) -> Optional[ShardItem]:
        """Dedup-free mirror of ``_compare_entry``: same page/combination
        order, same BITMAPS charge per comparison, but every intersection
        bit becomes a candidate — first-occurrence dedup is the
        coordinator's commit step, where the global order is known."""
        a, b = entry.a, entry.b
        reports: List[RaceReport] = []
        for ov in (entry.pages if pages is None else pages):
            if ov.write_write:
                reports.extend(self._shard_intersect(
                    a, "write", a.write_bitmaps.get(ov.page),
                    b, "write", b.write_bitmaps.get(ov.page),
                    ov.page, RaceKind.WRITE_WRITE, epoch, clock, res))
            if ov.a_read_b_write:
                reports.extend(self._shard_intersect(
                    a, "read", a.read_bitmaps.get(ov.page),
                    b, "write", b.write_bitmaps.get(ov.page),
                    ov.page, RaceKind.READ_WRITE, epoch, clock, res))
            if ov.a_write_b_read:
                reports.extend(self._shard_intersect(
                    a, "write", a.write_bitmaps.get(ov.page),
                    b, "read", b.read_bitmaps.get(ov.page),
                    ov.page, RaceKind.READ_WRITE, epoch, clock, res))
        if not reports:
            return None
        return ShardItem(key=(a.pid, b.pid, a.index, b.index),
                         kind="race", reports=reports)

    def _shard_intersect(self, a: Interval, a_access: str,
                         bm_a: Optional[Bitmap], b: Interval, b_access: str,
                         bm_b: Optional[Bitmap], page: int, kind: RaceKind,
                         epoch: int, clock: VirtualClock,
                         res: ShardResult) -> List[RaceReport]:
        res.bitmap_comparisons += 1
        clock.advance(
            self.cost_model.bitmap_compare_per_word * self.page_size_words,
            CostCategory.BITMAPS)
        bm_a = bm_a or self._empty
        bm_b = bm_b or self._empty
        reports: List[RaceReport] = []
        for bit in bm_a.intersection_bits(bm_b):
            addr = page * self.page_size_words + bit
            reports.append(RaceReport(
                kind=kind, addr=addr, symbol=self.symbol_for(addr),
                page=page, offset=bit, epoch=epoch,
                a=IntervalRef(a.pid, a.index, a_access, a.sync_label),
                b=IntervalRef(b.pid, b.index, b_access, b.sync_label)))
        return reports

    def _shard_unverifiable_item(self, entry: CheckEntry,
                                 epoch: int) -> ShardItem:
        """Dedup-free mirror of ``_report_unverifiable``; the pair key and
        every candidate entry travel with the item because the pair count
        and the report dedup both belong to the coordinator's commit."""
        a, b = entry.a, entry.b
        pair_key = tuple(sorted([(a.pid, a.index), (b.pid, b.index)]))
        lost = tuple(f"P{rec.pid}:{rec.index}"
                     for rec in sorted((a, b), key=lambda r: (r.pid, r.index))
                     if rec.lost)
        reports: List[RaceReport] = []
        for ov in entry.pages:
            combos = []
            if ov.write_write:
                combos.append(("write", "write", RaceKind.WRITE_WRITE))
            if ov.a_read_b_write:
                combos.append(("read", "write", RaceKind.READ_WRITE))
            if ov.a_write_b_read:
                combos.append(("write", "read", RaceKind.READ_WRITE))
            addr = ov.page * self.page_size_words
            for a_access, b_access, kind in combos:
                reports.append(RaceReport(
                    kind=kind, addr=addr, symbol=self.symbol_for(addr),
                    page=ov.page, offset=0, epoch=epoch,
                    a=IntervalRef(a.pid, a.index, a_access, a.sync_label),
                    b=IntervalRef(b.pid, b.index, b_access, b.sync_label),
                    granularity="page", verdict="unverifiable",
                    lost_intervals=lost))
        return ShardItem(key=(a.pid, b.pid, a.index, b.index),
                         kind="unverifiable", reports=reports,
                         pair_key=pair_key)

    # ------------------------------------------------------------------ #
    # Internals.
    # ------------------------------------------------------------------ #
    def _charge_bitmap_round(self, needed: Set[Tuple[int, int, int, str]],
                             master_clock: VirtualClock) -> Set[int]:
        """Message accounting for the bitmap retrieval round: one request
        and one reply per process that owns needed bitmaps.

        Returns the pids whose exchange exhausted the reliable channel's
        retry budget (always empty on a fault-free network); their bitmaps
        are unavailable and the caller degrades those check entries to
        page-granularity reports instead of silently dropping them.
        """
        failed: Set[int] = set()
        if not needed:
            return failed
        by_owner: Dict[int, int] = {}
        for pid, _idx, _page, _kind in needed:
            by_owner[pid] = by_owner.get(pid, 0) + 1
        for pid in sorted(by_owner):
            count = by_owner[pid]
            req_bytes = self.sizer.ints(1 + 4 * count)
            reply_bytes = self.sizer.ints(1) + count * (
                self.sizer.ints(4) + self.sizer.bitmap())
            if pid == self.master_pid:
                continue  # master's own bitmaps are local
            try:
                msg = self.transport.send(
                    "bitmap_request", self.master_pid, pid, None, req_bytes,
                    master_clock, category=CostCategory.BITMAPS)
                self.transport.stats.add_bitmap_round_bytes(msg.nbytes)
                msg = self.transport.send(
                    "bitmap_reply", pid, self.master_pid, None, reply_bytes,
                    master_clock, category=CostCategory.BITMAPS,
                    fragmentable=True)
                self.transport.stats.add_bitmap_round_bytes(msg.nbytes)
            except RetryExhaustedError:
                failed.add(pid)
                self.stats.bitmap_rounds_failed += 1
        return failed

    def _filter_pages(self, entry: CheckEntry
                      ) -> Tuple[List[OverlapPage], int, int]:
        """Granule pre-check of one check entry: returns the surviving
        overlap pages (combination flags cleared where the digests prove
        the word bitmaps disjoint, pages with no surviving flag dropped)
        plus the (checks, hits) counts for stats and cycle charging."""
        a, b = entry.a, entry.b
        out: List[OverlapPage] = []
        checks = hits = 0
        for ov in entry.pages:
            ww = arbw = awbr = False
            if ov.write_write:
                checks += 1
                if not digests_disjoint(a.digest(ov.page, "write"),
                                        b.digest(ov.page, "write")):
                    ww = True
                    hits += 1
            if ov.a_read_b_write:
                checks += 1
                if not digests_disjoint(a.digest(ov.page, "read"),
                                        b.digest(ov.page, "write")):
                    arbw = True
                    hits += 1
            if ov.a_write_b_read:
                checks += 1
                if not digests_disjoint(a.digest(ov.page, "write"),
                                        b.digest(ov.page, "read")):
                    awbr = True
                    hits += 1
            if ww or arbw or awbr:
                out.append(OverlapPage(page=ov.page, write_write=ww,
                                       a_read_b_write=arbw,
                                       a_write_b_read=awbr))
        return out, checks, hits

    def _compare_entry(self, entry: CheckEntry, epoch: int,
                       master_clock: VirtualClock,
                       failed_owners: Set[int] = frozenset(),
                       pages: Optional[List[OverlapPage]] = None
                       ) -> List[RaceReport]:
        races: List[RaceReport] = []
        a, b = entry.a, entry.b
        if failed_owners and (a.pid in failed_owners
                              or b.pid in failed_owners):
            # Word bitmaps for one side never arrived: degrade this entry
            # to explicit page-granularity reports rather than dropping it.
            # Deliberately over the *unfiltered* pages: with the exchange
            # failed, the conservative page-granularity report matches
            # what the filter-off detector would emit.
            for ov in entry.pages:
                races.extend(self._report_page_granularity(
                    entry, ov, epoch))
            return races
        for ov in (entry.pages if pages is None else pages):
            if ov.write_write:
                races.extend(self._intersect(
                    a, "write", a.write_bitmaps.get(ov.page),
                    b, "write", b.write_bitmaps.get(ov.page),
                    ov.page, RaceKind.WRITE_WRITE, epoch, master_clock))
            if ov.a_read_b_write:
                races.extend(self._intersect(
                    a, "read", a.read_bitmaps.get(ov.page),
                    b, "write", b.write_bitmaps.get(ov.page),
                    ov.page, RaceKind.READ_WRITE, epoch, master_clock))
            if ov.a_write_b_read:
                races.extend(self._intersect(
                    a, "write", a.write_bitmaps.get(ov.page),
                    b, "read", b.read_bitmaps.get(ov.page),
                    ov.page, RaceKind.READ_WRITE, epoch, master_clock))
        return races

    def _report_page_granularity(self, entry: CheckEntry, ov,
                                 epoch: int) -> List[RaceReport]:
        """Conservative fallback for a check-list page whose word bitmaps
        could not be retrieved: report the *whole page* as potentially
        racy, explicitly flagged ``granularity="page"`` — the affected
        range is never silently dropped (ROADMAP robustness goal; compare
        Butelle & Coti's requirement that detection metadata survive an
        unreliable substrate)."""
        a, b = entry.a, entry.b
        combos = []
        if ov.write_write:
            combos.append(("write", "write", RaceKind.WRITE_WRITE))
        if ov.a_read_b_write:
            combos.append(("read", "write", RaceKind.READ_WRITE))
        if ov.a_write_b_read:
            combos.append(("write", "read", RaceKind.READ_WRITE))
        races: List[RaceReport] = []
        addr = ov.page * self.page_size_words
        for a_access, b_access, kind in combos:
            report = RaceReport(
                kind=kind, addr=addr, symbol=self.symbol_for(addr),
                page=ov.page, offset=0, epoch=epoch,
                a=IntervalRef(a.pid, a.index, a_access, a.sync_label),
                b=IntervalRef(b.pid, b.index, b_access, b.sync_label),
                granularity="page")
            key = report.key()
            if key not in self._seen_keys:
                self._seen_keys.add(key)
                self.stats.page_granularity_reports += 1
                races.append(report)
        return races

    def _report_unverifiable(self, entry: CheckEntry,
                             epoch: int) -> List[RaceReport]:
        """Degraded-mode reporting for a check entry touching a crash-lost
        interval: the pair is concurrent and its notices overlap, but the
        word bitmaps of the lost side died with the node, so the race can
        be neither confirmed nor refuted.  Every such pair is surfaced as
        explicit ``verdict="unverifiable"`` page-granularity entries naming
        the lost interval(s) — soundness of the degraded detector means
        never dropping a check silently."""
        a, b = entry.a, entry.b
        pair_key = tuple(sorted([(a.pid, a.index), (b.pid, b.index)]))
        if pair_key not in self._unverifiable_pair_keys:
            self._unverifiable_pair_keys.add(pair_key)
            self.stats.unverifiable_pairs += 1
        lost = tuple(f"P{rec.pid}:{rec.index}"
                     for rec in sorted((a, b), key=lambda r: (r.pid, r.index))
                     if rec.lost)
        combos = []
        races: List[RaceReport] = []
        for ov in entry.pages:
            combos.clear()
            if ov.write_write:
                combos.append(("write", "write", RaceKind.WRITE_WRITE))
            if ov.a_read_b_write:
                combos.append(("read", "write", RaceKind.READ_WRITE))
            if ov.a_write_b_read:
                combos.append(("write", "read", RaceKind.READ_WRITE))
            addr = ov.page * self.page_size_words
            for a_access, b_access, kind in combos:
                report = RaceReport(
                    kind=kind, addr=addr, symbol=self.symbol_for(addr),
                    page=ov.page, offset=0, epoch=epoch,
                    a=IntervalRef(a.pid, a.index, a_access, a.sync_label),
                    b=IntervalRef(b.pid, b.index, b_access, b.sync_label),
                    granularity="page", verdict="unverifiable",
                    lost_intervals=lost)
                key = report.key()
                if key not in self._seen_keys:
                    self._seen_keys.add(key)
                    self.stats.unverifiable_reports += 1
                    races.append(report)
        return races

    def _intersect(self, a: Interval, a_access: str, bm_a: Optional[Bitmap],
                   b: Interval, b_access: str, bm_b: Optional[Bitmap],
                   page: int, kind: RaceKind, epoch: int,
                   master_clock: VirtualClock) -> List[RaceReport]:
        """One bitmap comparison; absent bitmaps are empty (this is where
        §6.5's diff-derived write detection silently loses same-value
        overwrites: the diff produced no bits)."""
        self.stats.bitmap_comparisons += 1
        master_clock.advance(
            self.cost_model.bitmap_compare_per_word * self.page_size_words,
            CostCategory.BITMAPS)
        bm_a = bm_a or self._empty
        bm_b = bm_b or self._empty
        races: List[RaceReport] = []
        for bit in bm_a.intersection_bits(bm_b):
            addr = page * self.page_size_words + bit
            report = RaceReport(
                kind=kind, addr=addr, symbol=self.symbol_for(addr),
                page=page, offset=bit, epoch=epoch,
                a=IntervalRef(a.pid, a.index, a_access, a.sync_label),
                b=IntervalRef(b.pid, b.index, b_access, b.sync_label))
            key = report.key()
            if key not in self._seen_keys:
                self._seen_keys.add(key)
                races.append(report)
        return races
