"""Word-granularity access bitmaps.

The instrumentation sets one bit per page word accessed (paper §4: "sets a
bit in a per-page bitmap").  Bitmap comparison — the operation that
distinguishes false sharing from a true data race — is a constant-time
bitwise AND over the page's bits.  We store bits in a ``bytearray`` and use
Python's arbitrary-precision integers for whole-bitmap intersection, which
is both fast and exact.
"""

from __future__ import annotations

from typing import Iterator, List

#: Python >= 3.10 has int.bit_count (a single popcount); resolved once at
#: import so Bitmap.count() pays no per-call hasattr probe.
_HAS_BIT_COUNT = hasattr(int, "bit_count")


class Bitmap:
    """Fixed-width bitset, one bit per word of a page."""

    __slots__ = ("nbits", "_bytes")

    def __init__(self, nbits: int):
        if nbits <= 0 or nbits % 8 != 0:
            raise ValueError("nbits must be a positive multiple of 8")
        self.nbits = nbits
        self._bytes = bytearray(nbits // 8)

    # ------------------------------------------------------------------ #
    # Mutation.
    # ------------------------------------------------------------------ #
    def set(self, i: int) -> None:
        """Set bit ``i`` (word ``i`` of the page was accessed)."""
        if not 0 <= i < self.nbits:
            raise IndexError(f"bit {i} out of range [0, {self.nbits})")
        self._bytes[i >> 3] |= 1 << (i & 7)

    def set_range(self, start: int, count: int) -> None:
        """Set ``count`` consecutive bits starting at ``start``.

        Used by the range-access fast path: the whole bitmap is OR-ed
        with a shifted all-ones mask as one arbitrary-precision integer
        operation (word-at-a-time in the int representation), so tracking
        a long vector access costs O(bytes) with no per-bit loop — the
        partial leading/trailing bytes included.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        end = start + count  # exclusive
        if not (0 <= start and end <= self.nbits):
            raise IndexError(f"range [{start}, {end}) out of [0, {self.nbits})")
        if count == 1:
            self._bytes[start >> 3] |= 1 << (start & 7)
            return
        merged = (int.from_bytes(self._bytes, "little")
                  | (((1 << count) - 1) << start))
        self._bytes[:] = merged.to_bytes(len(self._bytes), "little")

    def clear(self) -> None:
        self._bytes[:] = bytes(len(self._bytes))

    # ------------------------------------------------------------------ #
    # Queries.
    # ------------------------------------------------------------------ #
    def test(self, i: int) -> bool:
        if not 0 <= i < self.nbits:
            raise IndexError(f"bit {i} out of range [0, {self.nbits})")
        return bool(self._bytes[i >> 3] & (1 << (i & 7)))

    def any(self) -> bool:
        return any(self._bytes)

    def count(self) -> int:
        """Population count."""
        return int.from_bytes(self._bytes, "little").bit_count() \
            if _HAS_BIT_COUNT else bin(
                int.from_bytes(self._bytes, "little")).count("1")

    def overlaps(self, other: "Bitmap") -> bool:
        """True if any bit is set in both bitmaps (constant-time in page
        size, as the paper's bitmap comparison)."""
        self._check_width(other)
        return bool(int.from_bytes(self._bytes, "little")
                    & int.from_bytes(other._bytes, "little"))

    def intersection_bits(self, other: "Bitmap") -> List[int]:
        """Indices of bits set in both bitmaps — the racy word offsets."""
        self._check_width(other)
        inter = (int.from_bytes(self._bytes, "little")
                 & int.from_bytes(other._bytes, "little"))
        bits: List[int] = []
        while inter:
            low = inter & -inter
            bits.append(low.bit_length() - 1)
            inter ^= low
        return bits

    def iter_set_bits(self) -> Iterator[int]:
        value = int.from_bytes(self._bytes, "little")
        while value:
            low = value & -value
            yield low.bit_length() - 1
            value ^= low

    # ------------------------------------------------------------------ #
    # Encoding / misc.
    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        """Wire size: one bit per word."""
        return len(self._bytes)

    def to_bytes(self) -> bytes:
        return bytes(self._bytes)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Bitmap":
        bm = cls(len(data) * 8)
        bm._bytes[:] = data
        return bm

    def copy(self) -> "Bitmap":
        return Bitmap.from_bytes(self._bytes)

    def union_update(self, other: "Bitmap") -> None:
        """In-place OR (used when merging diff-derived write sets): one
        big-int OR over the whole page instead of a per-byte loop."""
        self._check_width(other)
        merged = (int.from_bytes(self._bytes, "little")
                  | int.from_bytes(other._bytes, "little"))
        self._bytes[:] = merged.to_bytes(len(self._bytes), "little")

    def _check_width(self, other: "Bitmap") -> None:
        if other.nbits != self.nbits:
            raise ValueError(
                f"bitmap width mismatch: {self.nbits} vs {other.nbits}")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bitmap) and self._bytes == other._bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bitmap(nbits={self.nbits}, set={self.count()})"
