"""Word-granularity access bitmaps and their coarse granule digests.

The instrumentation sets one bit per page word accessed (paper §4: "sets a
bit in a per-page bitmap").  Bitmap comparison — the operation that
distinguishes false sharing from a true data race — is a constant-time
bitwise AND over the page's bits.  We store bits in a ``bytearray`` and use
Python's arbitrary-precision integers for whole-bitmap intersection, which
is both fast and exact.

Each bitmap also maintains, incrementally on every mutation, a **coarse
granule mask**: one bit per :data:`GRANULE_WORDS`-word granule, set when
any word in the granule is.  The two-level detection filter ships a small
digest derived from this mask (plus a Bloom filter of the word offsets for
sparse access sets) piggy-backed on interval records, so the detector can
prove most page-overlapping interval pairs race-free without fetching the
word bitmaps at all.  The digest is conservative by construction:
``digests_disjoint(a, b)`` implies the underlying word bitmaps do not
intersect — never the other way round — so filtering on it can only skip
comparisons whose verdict is already "no race".
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

#: Python >= 3.10 has int.bit_count (a single popcount); resolved once at
#: import so Bitmap.count() pays no per-call hasattr probe.
_HAS_BIT_COUNT = hasattr(int, "bit_count")

#: Words per coarse granule (the "16-word granule" of the two-level
#: filter).  Fixed: the incremental mask update in ``set``/``set_range``
#: is a shift by 4.
GRANULE_WORDS = 16
#: A shipped digest's granule mask is folded (adjacent granules OR-ed
#: pairwise) until it fits this many bits, so digest wire size is bounded
#: regardless of page size.  At the default 1024-word page this is
#: exactly one bit per 16-word granule.
DIGEST_MAX_BITS = 64
#: Width of the Bloom-style fallback digest for sparse access sets.
BLOOM_BITS = 64
#: Access sets with at most this many words also carry a Bloom digest of
#: the exact offsets.  Sparse strided accesses (one word per granule —
#: the granule mask's worst case) stay filterable through it.
BLOOM_SPARSE_MAX = 8

_BLOOM_MULT = 0x9E3779B1  # Knuth multiplicative hash constant.

#: A finalized per-(page, kind) digest: ``(granule_mask, bloom)`` where
#: ``bloom`` is None for dense access sets (granule mask only).
Digest = Tuple[int, Optional[int]]


def _coarse_of(data: bytes) -> int:
    """Recompute a coarse granule mask from raw bitmap bytes (checkpoint
    restore / ``from_bytes``).  A saturating OR-fold confines each 16-bit
    group's bits to its lowest position, then every other byte's low bit
    is the granule's occupancy."""
    v = int.from_bytes(data, "little")
    v |= v >> 8
    v |= v >> 4
    v |= v >> 2
    v |= v >> 1
    folded = v.to_bytes(len(data), "little")
    mask = 0
    for g in range((len(data) + 1) // 2):
        if folded[2 * g] & 1:
            mask |= 1 << g
    return mask


def bloom_word_mask(offset: int) -> int:
    """The two Bloom bits word ``offset`` sets (deterministic, so equal
    offsets on two sides always collide — the soundness requirement)."""
    h = (offset * _BLOOM_MULT) & 0xFFFFFFFF
    return (1 << (h >> 26)) | (1 << ((h >> 20) & 63))


def digest_width_bits(nbits: int) -> int:
    """Granule-mask width of a shipped digest for an ``nbits``-word page."""
    ngran = (nbits + GRANULE_WORDS - 1) // GRANULE_WORDS
    while ngran > DIGEST_MAX_BITS:
        ngran = (ngran + 1) // 2
    return ngran


def _fold_pairs(mask: int, ngran: int) -> int:
    """OR adjacent granule bits pairwise (halving the mask width)."""
    out = 0
    for i in range((ngran + 1) // 2):
        if mask & (3 << (2 * i)):
            out |= 1 << i
    return out


def coarse_digest(bm: Optional["Bitmap"], nbits: int) -> Digest:
    """Finalize the digest shipped for one (page, kind) access set.

    An absent bitmap is an empty access set (the detector's comparison
    convention) and digests to ``(0, 0)`` — disjoint from everything.
    """
    if bm is None:
        return (0, 0)
    gmask = bm.coarse_mask
    ngran = (nbits + GRANULE_WORDS - 1) // GRANULE_WORDS
    while ngran > DIGEST_MAX_BITS:
        gmask = _fold_pairs(gmask, ngran)
        ngran = (ngran + 1) // 2
    if bm.count() <= BLOOM_SPARSE_MAX:
        bloom = 0
        for off in bm.iter_set_bits():
            bloom |= bloom_word_mask(off)
        return (gmask, bloom)
    return (gmask, None)


def digests_disjoint(a: Digest, b: Digest) -> bool:
    """True when the digests *prove* the word bitmaps cannot intersect.

    Granule masks disjoint ⇒ no common granule ⇒ no common word.  On a
    granule collision, two sparse sets can still be separated by their
    Bloom digests: a shared word would set the same two Bloom bits on
    both sides, so disjoint Blooms also prove disjoint words.
    """
    if not (a[0] & b[0]):
        return True
    ba, bb = a[1], b[1]
    return ba is not None and bb is not None and not (ba & bb)


class Bitmap:
    """Fixed-width bitset, one bit per word of a page."""

    __slots__ = ("nbits", "_bytes", "_coarse")

    def __init__(self, nbits: int):
        if nbits <= 0 or nbits % 8 != 0:
            raise ValueError("nbits must be a positive multiple of 8")
        self.nbits = nbits
        self._bytes = bytearray(nbits // 8)
        self._coarse = 0

    # ------------------------------------------------------------------ #
    # Mutation.
    # ------------------------------------------------------------------ #
    def set(self, i: int) -> None:
        """Set bit ``i`` (word ``i`` of the page was accessed)."""
        if not 0 <= i < self.nbits:
            raise IndexError(f"bit {i} out of range [0, {self.nbits})")
        self._bytes[i >> 3] |= 1 << (i & 7)
        self._coarse |= 1 << (i >> 4)

    def set_range(self, start: int, count: int) -> None:
        """Set ``count`` consecutive bits starting at ``start``.

        Used by the range-access fast path: the whole bitmap is OR-ed
        with a shifted all-ones mask as one arbitrary-precision integer
        operation (word-at-a-time in the int representation), so tracking
        a long vector access costs O(bytes) with no per-bit loop — the
        partial leading/trailing bytes included.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        end = start + count  # exclusive
        if not (0 <= start and end <= self.nbits):
            raise IndexError(f"range [{start}, {end}) out of [0, {self.nbits})")
        glo = start >> 4
        self._coarse |= ((1 << (((end - 1) >> 4) - glo + 1)) - 1) << glo
        if count == 1:
            self._bytes[start >> 3] |= 1 << (start & 7)
            return
        merged = (int.from_bytes(self._bytes, "little")
                  | (((1 << count) - 1) << start))
        self._bytes[:] = merged.to_bytes(len(self._bytes), "little")

    def clear(self) -> None:
        self._bytes[:] = bytes(len(self._bytes))
        self._coarse = 0

    # ------------------------------------------------------------------ #
    # Queries.
    # ------------------------------------------------------------------ #
    def test(self, i: int) -> bool:
        if not 0 <= i < self.nbits:
            raise IndexError(f"bit {i} out of range [0, {self.nbits})")
        return bool(self._bytes[i >> 3] & (1 << (i & 7)))

    def any(self) -> bool:
        return any(self._bytes)

    def count(self) -> int:
        """Population count."""
        return int.from_bytes(self._bytes, "little").bit_count() \
            if _HAS_BIT_COUNT else bin(
                int.from_bytes(self._bytes, "little")).count("1")

    def overlaps(self, other: "Bitmap") -> bool:
        """True if any bit is set in both bitmaps (constant-time in page
        size, as the paper's bitmap comparison)."""
        self._check_width(other)
        return bool(int.from_bytes(self._bytes, "little")
                    & int.from_bytes(other._bytes, "little"))

    def intersection_bits(self, other: "Bitmap") -> List[int]:
        """Indices of bits set in both bitmaps — the racy word offsets."""
        self._check_width(other)
        inter = (int.from_bytes(self._bytes, "little")
                 & int.from_bytes(other._bytes, "little"))
        bits: List[int] = []
        while inter:
            low = inter & -inter
            bits.append(low.bit_length() - 1)
            inter ^= low
        return bits

    def iter_set_bits(self) -> Iterator[int]:
        value = int.from_bytes(self._bytes, "little")
        while value:
            low = value & -value
            yield low.bit_length() - 1
            value ^= low

    # ------------------------------------------------------------------ #
    # Encoding / misc.
    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        """Wire size: one bit per word."""
        return len(self._bytes)

    def to_bytes(self) -> bytes:
        return bytes(self._bytes)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Bitmap":
        bm = cls(len(data) * 8)
        bm._bytes[:] = data
        bm._coarse = _coarse_of(data)
        return bm

    def copy(self) -> "Bitmap":
        return Bitmap.from_bytes(self._bytes)

    def union_update(self, other: "Bitmap") -> None:
        """In-place OR (used when merging diff-derived write sets): one
        big-int OR over the whole page instead of a per-byte loop."""
        self._check_width(other)
        merged = (int.from_bytes(self._bytes, "little")
                  | int.from_bytes(other._bytes, "little"))
        self._bytes[:] = merged.to_bytes(len(self._bytes), "little")
        self._coarse |= other._coarse

    @property
    def coarse_mask(self) -> int:
        """One bit per :data:`GRANULE_WORDS`-word granule with any word
        set — maintained incrementally by ``set``/``set_range``."""
        return self._coarse

    def _check_width(self, other: "Bitmap") -> None:
        if other.nbits != self.nbits:
            raise ValueError(
                f"bitmap width mismatch: {self.nbits} vs {other.nbits}")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bitmap) and self._bytes == other._bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bitmap(nbits={self.nbits}, set={self.count()})"
