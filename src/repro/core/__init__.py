"""The paper's contribution: on-the-fly data-race detection.

Modules:

* :mod:`repro.core.bitmap` — word-granularity access bitmaps (one bit per
  word of a page).
* :mod:`repro.core.tracker` — per-interval read/write tracking: page sets
  (notices) plus bitmaps, fed by the instrumentation runtime.
* :mod:`repro.core.concurrency` — the concurrent-interval search over
  vector timestamps.
* :mod:`repro.core.checklist` — page-overlap winnowing and the *check
  list* exchanged in the extra barrier round.
* :mod:`repro.core.detector` — the barrier-time algorithm (paper §4,
  steps 1–5) and its statistics.
* :mod:`repro.core.report` — race reports with shared-segment addresses,
  symbol resolution and interval indices.
* :mod:`repro.core.first_race` — §6.4's first-race filtering.
* :mod:`repro.core.baseline` — oracle detectors used for validation: an
  exact per-access happens-before detector and an Adve-style post-mortem
  trace analyzer.
"""

from repro.core.bitmap import Bitmap
from repro.core.detector import DetectorStats, RaceDetector
from repro.core.report import RaceReport

__all__ = ["Bitmap", "DetectorStats", "RaceDetector", "RaceReport"]
