"""Shared-access trace events.

With ``DsmConfig.track_access_trace`` enabled, the access layer appends one
:class:`TraceEvent` per shared access (range accesses produce one event with
``count > 1``).  This is exactly the information Adve et al.'s post-mortem
scheme logs to disk — the paper's point is that the online system does *not*
need to keep it; we keep it only to validate the online system against
oracles and to quantify the log-size savings (an ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Wire/log footprint of one encoded trace event: pid + interval + addr +
#: count + rw flag, 4 bytes each (what a post-mortem log would store).
TRACE_EVENT_BYTES = 20


@dataclass(frozen=True)
class TraceEvent:
    """One shared memory access (or contiguous run of accesses)."""

    pid: int
    #: Index of the interval the access executed in (its vector clock is
    #: retrievable from the interval store / replay log).
    interval_index: int
    addr: int
    count: int
    is_write: bool

    def words(self) -> Iterator[int]:
        """Word addresses touched."""
        return iter(range(self.addr, self.addr + self.count))

    @property
    def log_bytes(self) -> int:
        return TRACE_EVENT_BYTES
