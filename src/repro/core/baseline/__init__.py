"""Oracle detectors used to validate the LRC-leveraging detector.

The paper's claim is that the coherence metadata of an LRC DSM suffices to
find *all actual data races* of an execution (Definition 2).  We check that
claim mechanically: with access tracing enabled, a run yields a full shared
access trace, and

* :mod:`repro.core.baseline.hb_detector` runs an exact happens-before
  detector over the trace (per-word read/write vector-clock sets — the
  classical approach of Dinning/Schonberg and FastTrack-style tools), and
* :mod:`repro.core.baseline.postmortem` reimplements Adve et al.'s
  post-mortem trace analysis, which the paper cites as its closest
  relative (§7): computation-event logs analyzed offline.

Tests assert that the online detector's racy (address, interval-pair) sets
match the oracles exactly.
"""

from repro.core.baseline.hb_detector import HappensBeforeDetector
from repro.core.baseline.postmortem import PostMortemAnalyzer
from repro.core.baseline.trace import TraceEvent

__all__ = ["HappensBeforeDetector", "PostMortemAnalyzer", "TraceEvent"]
