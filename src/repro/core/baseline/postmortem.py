"""Adve-style post-mortem trace analysis (the paper's closest relative, §7).

Adve, Hill, Miller and Netzer proposed (but did not implement) detecting
races on weak memory systems from per-process trace logs: *computation
events* delimited by synchronization, each carrying READ/WRITE attribute
sets, ordered by logged synchronization information, analyzed offline.

This module reimplements that scheme faithfully on top of our trace: it
reconstructs computation events (== CVM intervals) with their read/write
word sets, then finds unordered event pairs with overlapping attributes.
Unlike :mod:`repro.core.baseline.hb_detector` it mirrors the *structure* of
the paper's online algorithm (interval-granularity pairs, then word
overlap), but runs entirely post-mortem from a log — so comparing the two
quantifies exactly what the paper claims to save: the log that never needs
to be written (``log_bytes``) and the analysis deferred to after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.baseline.hb_detector import RaceKey, make_race_key
from repro.core.baseline.trace import TraceEvent
from repro.dsm.vector_clock import VectorClock, concurrent


@dataclass
class ComputationEvent:
    """One computation event: an interval plus its access attributes."""

    pid: int
    index: int
    vc: VectorClock
    reads: Set[int] = field(default_factory=set)
    writes: Set[int] = field(default_factory=set)

    @property
    def empty(self) -> bool:
        return not self.reads and not self.writes


class PostMortemAnalyzer:
    """Offline analysis of a complete access trace."""

    def __init__(self, vc_log: Dict[Tuple[int, int], VectorClock]):
        self.vc_log = vc_log

    def build_events(self, trace: Iterable[TraceEvent]
                     ) -> List[ComputationEvent]:
        """Reconstruct computation events from the flat access log."""
        events: Dict[Tuple[int, int], ComputationEvent] = {}
        for ev in trace:
            key = (ev.pid, ev.interval_index)
            ce = events.get(key)
            if ce is None:
                vc = self.vc_log.get(key)
                if vc is None:
                    raise KeyError(
                        f"no ordering information logged for P{ev.pid} "
                        f"interval {ev.interval_index}")
                ce = events[key] = ComputationEvent(ev.pid,
                                                    ev.interval_index, vc)
            target = ce.writes if ev.is_write else ce.reads
            target.update(ev.words())
        return [events[k] for k in sorted(events)]

    def races(self, trace: Iterable[TraceEvent]) -> Set[RaceKey]:
        """Racy (kind, word, interval-pair) triples, post-mortem."""
        events = self.build_events(trace)
        out: Set[RaceKey] = set()
        for i, a in enumerate(events):
            for b in events[i + 1:]:
                if a.pid == b.pid:
                    continue
                if not concurrent(a.pid, a.index, a.vc,
                                  b.pid, b.index, b.vc):
                    continue
                for word in a.writes & b.writes:
                    out.add(make_race_key("write-write", word,
                                          (a.pid, a.index, "write"),
                                          (b.pid, b.index, "write")))
                for word in a.writes & b.reads:
                    out.add(make_race_key("read-write", word,
                                          (a.pid, a.index, "write"),
                                          (b.pid, b.index, "read")))
                for word in a.reads & b.writes:
                    out.add(make_race_key("read-write", word,
                                          (a.pid, a.index, "read"),
                                          (b.pid, b.index, "write")))
        return out

    @staticmethod
    def log_bytes(trace: Iterable[TraceEvent]) -> int:
        """Size of the trace log a post-mortem system would have written —
        the storage the paper's online approach avoids entirely."""
        return sum(ev.log_bytes for ev in trace)
