"""Exact per-access happens-before oracle.

Given the full shared-access trace of a run and the vector clock of every
interval, this detector applies Definition 2 of the paper directly: two
accesses race iff they touch the same word, at least one writes, and their
intervals are unordered by happens-before-1.  It makes *no* use of pages,
notices, check lists or epochs — making it a fully independent oracle for
validating the online detector (the online system must report exactly the
racy (word, interval-pair) set this one computes).

Complexity is O(accesses per word squared); it is meant for test-scale
inputs, which is precisely why the paper's online pruning matters.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.core.baseline.trace import TraceEvent
from repro.dsm.vector_clock import VectorClock, concurrent

#: A canonical race key: (kind, word address, ((pid, idx, access) sorted)).
RaceKey = Tuple[str, int, Tuple[Tuple[int, int, str], ...]]


def make_race_key(kind: str, addr: int,
                  a: Tuple[int, int, str], b: Tuple[int, int, str]) -> RaceKey:
    return (kind, addr, tuple(sorted((a, b))))


class HappensBeforeDetector:
    """Brute-force happens-before race detection over a trace."""

    def __init__(self, vc_log: Dict[Tuple[int, int], VectorClock]):
        #: (pid, interval index) -> vector clock at interval start.
        self.vc_log = vc_log

    def _vc(self, pid: int, index: int) -> VectorClock:
        try:
            return self.vc_log[(pid, index)]
        except KeyError:
            raise KeyError(
                f"no vector clock logged for P{pid} interval {index}; "
                "was track_access_trace enabled?") from None

    def _concurrent(self, a_pid: int, a_idx: int,
                    b_pid: int, b_idx: int) -> bool:
        return concurrent(a_pid, a_idx, self._vc(a_pid, a_idx),
                          b_pid, b_idx, self._vc(b_pid, b_idx))

    def races(self, trace: Iterable[TraceEvent]) -> Set[RaceKey]:
        """All racy (kind, word, interval-pair) triples in the trace."""
        # Group accesses by word: (pid, interval, is_write), deduplicated —
        # repeated identical accesses add nothing.
        by_word: Dict[int, Set[Tuple[int, int, bool]]] = {}
        for ev in trace:
            for word in ev.words():
                by_word.setdefault(word, set()).add(
                    (ev.pid, ev.interval_index, ev.is_write))
        out: Set[RaceKey] = set()
        for word, accesses in by_word.items():
            acc = sorted(accesses)
            for i, (p1, i1, w1) in enumerate(acc):
                for p2, i2, w2 in acc[i + 1:]:
                    if not (w1 or w2):
                        continue
                    if p1 == p2:
                        continue
                    if self._concurrent(p1, i1, p2, i2):
                        kind = "write-write" if (w1 and w2) else "read-write"
                        out.add(make_race_key(
                            kind, word,
                            (p1, i1, "write" if w1 else "read"),
                            (p2, i2, "write" if w2 else "read")))
        return out

    def racy_words(self, trace: Iterable[TraceEvent]) -> Set[int]:
        """Just the racy word addresses (the coarsest comparison level)."""
        return {addr for _kind, addr, _sides in self.races(trace)}
