"""First-race filtering (paper §6.4).

A race is *first* if it is not affected by any prior race.  Because a
barrier is semantically a release by every arriving process to the master
followed by a release from the master to everyone, any race in an earlier
barrier epoch happens-before (and hence affects) every race in later
epochs; therefore all first races live in the earliest epoch that has any.
The online variant of this filter is built into
:class:`repro.core.detector.RaceDetector` via ``first_races_only``; this
module provides the equivalent post-hoc filter for report lists.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.report import RaceReport


def first_epoch_with_races(reports: Iterable[RaceReport]) -> int:
    """Earliest epoch represented among the reports.

    Raises ``ValueError`` on an empty report list.
    """
    epochs = [r.epoch for r in reports]
    if not epochs:
        raise ValueError("no races reported")
    return min(epochs)


def filter_first_races(reports: Iterable[RaceReport]) -> List[RaceReport]:
    """Keep only races from the earliest racy epoch.

    Within a single epoch no barrier separates the races, so none of them
    can be shown to affect another by synchronization order alone — the
    paper keeps all of them.
    """
    reports = list(reports)
    if not reports:
        return []
    first = first_epoch_with_races(reports)
    return [r for r in reports if r.epoch == first]
