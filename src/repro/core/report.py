"""Race reports.

The paper's system "prints the address of the affected variable" together
with the interval indexes (§4 step 5, §6.1); combined with the symbol table
this identifies the variable and synchronization context.  A
:class:`RaceReport` carries all of that, plus the epoch, so first-race
filtering and replay-based PC attribution can consume it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class RaceKind(enum.Enum):
    WRITE_WRITE = "write-write"
    READ_WRITE = "read-write"


@dataclass(frozen=True)
class IntervalRef:
    """Identifies one side of a race: which interval touched the word, and
    how (read or write)."""

    pid: int
    index: int
    access: str  # "read" | "write"
    sync_label: str = ""

    def __str__(self) -> str:
        return f"P{self.pid} interval {self.index} ({self.access})"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (detector-state migration)."""
        return {"pid": self.pid, "index": self.index,
                "access": self.access, "sync_label": self.sync_label}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "IntervalRef":
        return cls(pid=data["pid"], index=data["index"],
                   access=data["access"], sync_label=data["sync_label"])


@dataclass(frozen=True)
class RaceReport:
    """One detected data race on one shared word.

    Attributes:
        kind: write-write or read-write.
        addr: Shared-segment word address of the affected variable.
        symbol: ``name[+offset]`` resolved through the allocator's symbol
            table (§6.1 reference identification).
        page: Page containing the address.
        offset: Word offset within the page.
        epoch: Barrier epoch in which both intervals live.
        a, b: The two unordered accesses (pid, interval index, kind).
        granularity: ``"word"`` for the exact bitmap-intersected report;
            ``"page"`` when the bitmap fetch exhausted its retries on a
            lossy network and the detector conservatively reported the
            whole overlapping page instead of silently dropping the check
            entry (``addr``/``offset`` then point at the page base).
        verdict: ``"race"`` for an actual detected race; ``"unverifiable"``
            when a node crash destroyed the word bitmaps of one of the
            intervals before the check could run (recovery without a
            checkpoint), so the concurrent overlapping pair can neither be
            confirmed nor refuted.  Unverifiable entries are always
            page-granularity and never silently dropped — soundness of the
            degraded detector depends on surfacing them.
        lost_intervals: For unverifiable entries, the ``P<pid>:<index>``
            ids of the crash-lost intervals involved.
    """

    kind: RaceKind
    addr: int
    symbol: str
    page: int
    offset: int
    epoch: int
    a: IntervalRef
    b: IntervalRef
    granularity: str = "word"
    verdict: str = "race"
    lost_intervals: Tuple[str, ...] = ()

    def key(self) -> Tuple:
        """Deduplication key: the same word/interval pair reported once,
        regardless of comparison order."""
        sides = tuple(sorted([(self.a.pid, self.a.index, self.a.access),
                              (self.b.pid, self.b.index, self.b.access)]))
        return (self.kind, self.granularity, self.verdict, self.addr) + sides

    def format(self) -> str:
        if self.verdict == "unverifiable":
            lost = ", ".join(self.lost_intervals)
            return (f"UNVERIFIABLE (crash-lost metadata, "
                    f"{self.kind.value}) on {self.symbol} "
                    f"(page={self.page}) epoch {self.epoch}: "
                    f"{self.a} vs {self.b} [lost: {lost}]")
        if self.granularity == "page":
            return (f"POSSIBLE DATA RACE (page-granularity, "
                    f"{self.kind.value}) on {self.symbol} "
                    f"(page={self.page}) epoch {self.epoch}: "
                    f"{self.a} vs {self.b} "
                    f"[word bitmaps unavailable: retry budget exhausted]")
        return (f"DATA RACE ({self.kind.value}) on {self.symbol} "
                f"(addr={self.addr}, page={self.page}+{self.offset}) "
                f"epoch {self.epoch}: {self.a} vs {self.b}")

    def __str__(self) -> str:
        return self.format()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; ``from_dict`` round-trips it exactly
        (used by the coordinator to migrate detection state on failover)."""
        return {
            "kind": self.kind.value,
            "addr": self.addr,
            "symbol": self.symbol,
            "page": self.page,
            "offset": self.offset,
            "epoch": self.epoch,
            "a": self.a.to_dict(),
            "b": self.b.to_dict(),
            "granularity": self.granularity,
            "verdict": self.verdict,
            "lost_intervals": list(self.lost_intervals),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RaceReport":
        return cls(
            kind=RaceKind(data["kind"]),
            addr=data["addr"],
            symbol=data["symbol"],
            page=data["page"],
            offset=data["offset"],
            epoch=data["epoch"],
            a=IntervalRef.from_dict(data["a"]),
            b=IntervalRef.from_dict(data["b"]),
            granularity=data["granularity"],
            verdict=data["verdict"],
            lost_intervals=tuple(data["lost_intervals"]),
        )


def encode_report_key(key: Tuple) -> list:
    """JSON-encodable form of a :meth:`RaceReport.key` tuple (the
    cross-epoch deduplication state a migrating detector must carry)."""
    kind, granularity, verdict, addr, side_a, side_b = key
    return [kind.value, granularity, verdict, addr,
            list(side_a), list(side_b)]


def decode_report_key(data: list) -> Tuple:
    kind, granularity, verdict, addr, side_a, side_b = data
    return (RaceKind(kind), granularity, verdict, addr,
            tuple(side_a), tuple(side_b))


def involves_symbol(report: RaceReport, name: str) -> bool:
    """True if the report's resolved symbol is ``name`` or an offset into
    it — convenient in tests and examples."""
    return report.symbol == name or report.symbol.startswith(name + "+")
