"""Concurrent-interval search (paper §4, step 2).

At a barrier the master holds every interval of the closing epoch.  Any two
intervals of *different* processes whose vector timestamps do not order them
are concurrent and must be screened for overlapping pages.  The paper uses
"a very simple interval comparison algorithm" with worst case
:math:`O(i^2 p^2)` pairwise constant-time checks, noting that intervals
from previous epochs need not be examined (the barrier orders them); we
implement the same, plus the cheap program-order refinement that intervals
of the same process are never compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.dsm.interval import Interval
from repro.dsm.vector_clock import precedes


@dataclass
class PairSearchStats:
    """Counters from one epoch's pair search."""

    intervals: int = 0
    comparisons: int = 0
    concurrent_pairs: int = 0

    def merge(self, other: "PairSearchStats") -> None:
        self.intervals += other.intervals
        self.comparisons += other.comparisons
        self.concurrent_pairs += other.concurrent_pairs


def group_by_pid(intervals: List[Interval]) -> Dict[int, List[Interval]]:
    """Split an epoch's intervals per process, index-ordered."""
    by_pid: Dict[int, List[Interval]] = {}
    for rec in intervals:
        by_pid.setdefault(rec.pid, []).append(rec)
    for recs in by_pid.values():
        recs.sort(key=lambda r: r.index)
    return by_pid


def find_concurrent_pairs(
        intervals: List[Interval],
        stats: PairSearchStats) -> Iterator[Tuple[Interval, Interval]]:
    """Yield every concurrent pair of intervals from different processes.

    Pairs are yielded in a deterministic order: processes ascending, then
    interval indices ascending.  Each vector-clock comparison is counted in
    ``stats`` (the harness charges the master's virtual clock per
    comparison, reproducing the paper's "Intervals" overhead component).
    """
    by_pid = group_by_pid(intervals)
    stats.intervals += len(intervals)
    pids = sorted(by_pid)
    for i, p in enumerate(pids):
        for q in pids[i + 1:]:
            for a in by_pid[p]:
                for b in by_pid[q]:
                    stats.comparisons += 1
                    if a.concurrent_with(b):
                        stats.concurrent_pairs += 1
                        yield (a, b)


#: A concurrency window: interval ``a`` of process p is concurrent with
#: exactly ``qs[lo:hi]`` of process q.
Window = Tuple[Interval, List[Interval], int, int]


def scan_windows(intervals: List[Interval],
                 stats: PairSearchStats) -> Tuple[int, int, List[Window]]:
    """Pair-search aggregates *without materializing the pairs*.

    Returns ``(concurrent_pairs, probe_work, windows)`` where
    ``probe_work`` is the sum of
    :func:`repro.core.checklist.overlap_work` over every concurrent pair
    — the quantity the detector charges for the page-overlap winnowing
    step.  Because the concurrent partners of an interval within one
    process form a contiguous window (same argument as
    :func:`find_concurrent_pairs_pruned`), both aggregates collapse to
    window arithmetic: the pair count is the window width and the probe
    work is ``size(a) * width + prefix-sum of partner sizes``, so the
    cost is O(i log i) bisection probes with *zero* per-pair Python
    work.  The non-empty windows are returned so a caller that does
    decide to enumerate (see :func:`iter_window_pairs`) pays no second
    bisection pass.

    ``stats`` receives the interval count, the actual bisection probes in
    ``comparisons``, and the concurrent-pair count.
    """
    by_pid = group_by_pid(intervals)
    stats.intervals += len(intervals)
    pids = sorted(by_pid)
    # Per-process prefix sums of notice-list sizes, for O(1) range sums.
    prefix: Dict[int, List[int]] = {}
    for pid in pids:
        acc = [0]
        for rec in by_pid[pid]:
            acc.append(acc[-1] + len(rec.write_pages) + len(rec.read_pages))
        prefix[pid] = acc
    total_pairs = 0
    probe_work = 0
    windows: List[Window] = []
    for i, p in enumerate(pids):
        for q in pids[i + 1:]:
            qs = by_pid[q]
            pre = prefix[q]
            for a in by_pid[p]:
                lo = _first_not_before(a, qs, stats)
                hi = _first_after(a, qs, stats)
                if hi > lo:
                    width = hi - lo
                    total_pairs += width
                    probe_work += (width * (len(a.write_pages)
                                            + len(a.read_pages))
                                   + pre[hi] - pre[lo])
                    windows.append((a, qs, lo, hi))
    stats.concurrent_pairs += total_pairs
    return total_pairs, probe_work, windows


def iter_window_pairs(windows: List[Window]) -> Iterator[Tuple[Interval, Interval]]:
    """Expand scanned windows into concurrent pairs.

    Yields exactly the pairs of :func:`find_concurrent_pairs`, in the
    same order (windows are collected process-pair-major, interval-index
    ascending — the naive enumeration order).
    """
    for a, qs, lo, hi in windows:
        for b in qs[lo:hi]:
            yield (a, b)


def model_comparison_count(intervals: List[Interval]) -> int:
    """Comparisons the naive search *would* perform, computed analytically.

    :func:`find_concurrent_pairs` checks every cross-process interval pair
    exactly once, so its comparison count is a pure function of the
    per-process interval counts: the sum over unordered process pairs
    (p, q) of ``|I_p| * |I_q|``.  The fast-path detector runs the pruned
    search for real but charges *this* figure to the master's virtual
    clock, keeping the paper's cost model (Figure 3 "Intervals", Table 3)
    bit-identical while the Python wall-clock drops.
    """
    sizes: Dict[int, int] = {}
    for rec in intervals:
        sizes[rec.pid] = sizes.get(rec.pid, 0) + 1
    total = len(intervals)
    return (total * total - sum(n * n for n in sizes.values())) // 2


def find_concurrent_pairs_pruned(
        intervals: List[Interval],
        stats: PairSearchStats) -> Iterator[Tuple[Interval, Interval]]:
    """Pair search with the ordering-based bypass the paper alludes to
    ("synchronization and program order allow many of the comparisons to
    be bypassed", §4 step 2).

    For a fixed interval ``a`` of process p, process q's intervals are
    totally ordered, so the set concurrent with ``a`` is a *contiguous
    window*: everything before it happened-before ``a`` (transitively,
    because q's later intervals dominate its earlier ones) and everything
    after it happened-after.  Both window edges are found by binary
    search, so the comparison count per process pair drops from
    O(i^2) to O(i log i) — the yielded pairs are identical to
    :func:`find_concurrent_pairs` (a property the tests verify).
    """
    by_pid = group_by_pid(intervals)
    stats.intervals += len(intervals)
    pids = sorted(by_pid)
    for i, p in enumerate(pids):
        for q in pids[i + 1:]:
            qs = by_pid[q]
            for a in by_pid[p]:
                lo = _first_not_before(a, qs, stats)
                hi = _first_after(a, qs, stats)
                for b in qs[lo:hi]:
                    stats.concurrent_pairs += 1
                    yield (a, b)


def _first_not_before(a: Interval, qs: List[Interval],
                      stats: PairSearchStats) -> int:
    """Index of the first interval of q that did NOT happen-before a.

    b_k happened-before a  iff  a.vc[q] >= b_k.index; since indices are
    increasing, this predicate is monotone (true then false) -> bisect.
    """
    lo, hi = 0, len(qs)
    while lo < hi:
        mid = (lo + hi) // 2
        stats.comparisons += 1
        if precedes(qs[mid].pid, qs[mid].index, a.vc):
            lo = mid + 1
        else:
            hi = mid
    return lo


def _first_after(a: Interval, qs: List[Interval],
                 stats: PairSearchStats) -> int:
    """Index of the first interval of q that a happened-before.

    a happened-before b_k  iff  b_k.vc[p] >= a.index; vector-clock entries
    are non-decreasing along q's program order, so this predicate is
    monotone (false then true) -> bisect.
    """
    lo, hi = 0, len(qs)
    while lo < hi:
        mid = (lo + hi) // 2
        stats.comparisons += 1
        if precedes(a.pid, a.index, qs[mid].vc):
            hi = mid
        else:
            lo = mid + 1
    return lo
