"""Text-mode interval timelines — a debugging aid for race reports.

A race report names two intervals; understanding *why* they were concurrent
(which synchronization edges exist, and which are missing) is the usual
next question.  This module renders an execution's intervals as one lane
per process, annotated with their shared accesses, plus the
happens-before-1 edges implied by the vector clocks — the picture the
paper draws by hand in its Figure 2.

Built from a traced run (``track_access_trace=True``), which retains the
per-interval vector clocks that normal runs garbage-collect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.baseline.postmortem import ComputationEvent, PostMortemAnalyzer
from repro.dsm.vector_clock import VectorClock, concurrent


@dataclass
class HbEdge:
    """A direct happens-before edge: the latest interval of ``src_pid``
    that ``dst`` had seen when it began."""

    src_pid: int
    src_index: int
    dst_pid: int
    dst_index: int

    def __str__(self) -> str:
        return (f"P{self.src_pid}:{self.src_index} -> "
                f"P{self.dst_pid}:{self.dst_index}")


def direct_edges(events: Sequence[ComputationEvent]) -> List[HbEdge]:
    """For every interval, one edge from the latest interval it had seen
    of each *other* process (0 means 'nothing seen': no edge).  These are
    the release->acquire edges the synchronization actually created,
    minus redundant older ones."""
    edges: List[HbEdge] = []
    index = {(ev.pid, ev.index) for ev in events}
    for ev in events:
        for pid in range(len(ev.vc)):
            if pid == ev.pid:
                continue
            seen = ev.vc[pid]
            if seen > 0 and (pid, seen) in index:
                edges.append(HbEdge(pid, seen, ev.pid, ev.index))
    return edges


def _collapse_redundant(edges: List[HbEdge]) -> List[HbEdge]:
    """Keep, per (src_pid, dst interval), only the newest source index."""
    best: Dict[Tuple[int, int, int], HbEdge] = {}
    for e in edges:
        key = (e.src_pid, e.dst_pid, e.dst_index)
        if key not in best or e.src_index > best[key].src_index:
            best[key] = e
    return sorted(best.values(),
                  key=lambda e: (e.dst_pid, e.dst_index, e.src_pid))


def _access_note(ev: ComputationEvent, max_words: int = 3) -> str:
    parts = []
    if ev.writes:
        ws = sorted(ev.writes)[:max_words]
        more = "…" if len(ev.writes) > max_words else ""
        parts.append("w:" + ",".join(map(str, ws)) + more)
    if ev.reads:
        rs = sorted(ev.reads)[:max_words]
        more = "…" if len(ev.reads) > max_words else ""
        parts.append("r:" + ",".join(map(str, rs)) + more)
    return " ".join(parts)


def render_timeline(events: Sequence[ComputationEvent],
                    nprocs: Optional[int] = None,
                    racy_words: Optional[set] = None) -> str:
    """Render lanes plus the direct happens-before edges.

    ``racy_words`` (word addresses) get a ``!`` marker on every interval
    touching them, so a race report can be located at a glance.
    """
    if not events:
        return "(no intervals)"
    nprocs = nprocs or (max(ev.pid for ev in events) + 1)
    racy_words = racy_words or set()
    lanes: List[str] = []
    for pid in range(nprocs):
        own = sorted((ev for ev in events if ev.pid == pid),
                     key=lambda ev: ev.index)
        cells = []
        for ev in own:
            mark = "!" if (ev.reads | ev.writes) & racy_words else ""
            note = _access_note(ev)
            body = f"{ev.index}{mark}"
            if note:
                body += f" {note}"
            cells.append(f"[{body}]")
        lanes.append(f"P{pid} | " + "--".join(cells))
    lines = lanes
    edges = _collapse_redundant(direct_edges(events))
    if edges:
        lines.append("")
        lines.append("happens-before edges (release -> acquire):")
        for e in edges:
            lines.append(f"  {e}")
    # Concurrent pairs involving racy words, if any.
    if racy_words:
        racy_pairs = []
        evs = list(events)
        for i, a in enumerate(evs):
            for b in evs[i + 1:]:
                if a.pid == b.pid:
                    continue
                if not concurrent(a.pid, a.index, a.vc, b.pid, b.index, b.vc):
                    continue
                overlap = ((a.writes & (b.writes | b.reads))
                           | (a.reads & b.writes)) & racy_words
                if overlap:
                    racy_pairs.append(
                        f"  P{a.pid}:{a.index} || P{b.pid}:{b.index} "
                        f"on words {sorted(overlap)}")
        if racy_pairs:
            lines.append("")
            lines.append("concurrent racy pairs:")
            lines.extend(racy_pairs)
    return "\n".join(lines)


def timeline_from_run(system, result, racy_only: bool = True) -> str:
    """Build and render the timeline of a traced run.

    Args:
        system: The :class:`~repro.dsm.cvm.CVM` instance (holds the vector
            clock log).
        result: Its :class:`~repro.dsm.cvm.RunResult`.
        racy_only: Mark only the words that actually raced.
    """
    if not result.access_trace:
        raise ValueError("timeline needs a run with track_access_trace=True")
    pm = PostMortemAnalyzer(system.store.vc_log)
    events = pm.build_events(result.access_trace)
    racy = {r.addr for r in result.races} if racy_only else set()
    return render_timeline(events, nprocs=system.config.nprocs,
                           racy_words=racy)
