"""Page-overlap winnowing and the check list (paper §4, step 3).

For each concurrent interval pair, the read and write notice lists are
intersected.  A data race can only exist on a page *written* in one of the
intervals and *accessed* in the other; such pairs, together with the
overlapping pages, go on the *check list* that the barrier release message
carries to all processes (step 4) so that word bitmaps can be returned for
exactly those pages and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.dsm.interval import Interval


@dataclass
class OverlapPage:
    """One page shared unsynchronized by a concurrent interval pair, with
    the access kinds that overlapped at page granularity."""

    page: int
    #: True if both intervals wrote the page.
    write_write: bool
    #: True if interval ``a`` read and ``b`` wrote.
    a_read_b_write: bool
    #: True if interval ``a`` wrote and ``b`` read.
    a_write_b_read: bool


@dataclass
class CheckEntry:
    """Check-list entry: a concurrent interval pair plus its overlap pages."""

    a: Interval
    b: Interval
    pages: List[OverlapPage]


def page_overlaps(a: Interval, b: Interval) -> List[OverlapPage]:
    """Page-granularity overlap between two intervals' notice lists.

    Returns one entry per page that could carry a race; pages only read by
    both sides are skipped (reads never race with reads).
    """
    out: List[OverlapPage] = []
    candidates = (a.write_pages & (b.write_pages | b.read_pages)) | \
                 (a.read_pages & b.write_pages)
    for page in sorted(candidates):
        out.append(OverlapPage(
            page=page,
            write_write=page in a.write_pages and page in b.write_pages,
            a_read_b_write=page in a.read_pages and page in b.write_pages,
            a_write_b_read=page in a.write_pages and page in b.read_pages,
        ))
    return out


def overlap_work(a: Interval, b: Interval) -> int:
    """Number of elementary probes the overlap check performs — used for
    virtual-time charging.  Notice lists are kept sorted, so the check is
    a linear merge over both lists.  (The paper's prototype did an O(n^2)
    nested scan and noted lists were "usually very small", §6.2; the merge
    is the obvious constant-factor fix and keeps the master's serialized
    work proportional, which matters at our scaled-down epoch lengths.)"""
    return (len(a.write_pages) + len(a.read_pages)
            + len(b.write_pages) + len(b.read_pages))


def build_check_list(
        pairs: Iterable[Tuple[Interval, Interval]]) -> List[CheckEntry]:
    """Winnow concurrent pairs to those with page overlap (the check list)."""
    entries: List[CheckEntry] = []
    for a, b in pairs:
        pages = page_overlaps(a, b)
        if pages:
            entries.append(CheckEntry(a, b, pages))
    return entries


def index_meetings(intervals: List[Interval]) -> int:
    """Upper bound on the (pair, page) meetings the inverted-index build
    (:func:`build_check_list_fast`) will generate, in O(total notices).

    Per page with W writers and R readers the index visits at most
    ``W*(W-1)/2`` writer/writer and ``W*R`` writer/reader combinations.
    The detector compares this against the reference probe work to pick
    the cheaper check-list strategy for the epoch at hand: lock-heavy
    workloads share pages between *ordered* intervals (page overlap is a
    weak filter, pair enumeration is cheap), barrier workloads are the
    reverse.
    """
    wcount: Dict[int, int] = {}
    rcount: Dict[int, int] = {}
    for rec in intervals:
        for page in rec.write_pages:
            wcount[page] = wcount.get(page, 0) + 1
        for page in rec.read_pages:
            rcount[page] = rcount.get(page, 0) + 1
    return sum(w * (w - 1) // 2 + w * rcount.get(page, 0)
               for page, w in wcount.items())


def build_check_list_fast(intervals: List[Interval]) -> List[CheckEntry]:
    """Check-list construction through an inverted page index.

    The reference pipeline enumerates every concurrent pair and
    intersects its notice lists — O(pairs x notice-list length) even
    though the vast majority of pairs share no page at all.  This variant
    never materializes the pair set: it inverts the notices first —
    page -> (intervals that wrote it, intervals that read it) — so only
    (writer, accessor) combinations that actually met on a page are ever
    touched, and the concurrency test runs on those few candidates alone.
    Cost: O(total notices + candidate meetings) ~ O(notices + output).

    The returned entries are identical to running
    :func:`~repro.core.concurrency.find_concurrent_pairs` followed by
    :func:`build_check_list`: same pairs, same order (process-pair rank,
    then interval indices — the naive enumeration order), same sorted
    pages, same access-kind flags.  The equivalence tests assert this.
    """
    writers: Dict[int, List[Interval]] = {}
    readers: Dict[int, List[Interval]] = {}
    for rec in intervals:
        for page in rec.write_pages:
            writers.setdefault(page, []).append(rec)
        for page in rec.read_pages:
            readers.setdefault(page, []).append(rec)

    #: (id(a), id(b)) -> [a, b, candidate pages]; a.pid < b.pid as in the
    #: naive enumeration.  Each (pair, page) meeting is generated exactly
    #: once — writer/writer combinations by position (i < j), and
    #: writer/reader combinations with pure readers only — so the page
    #: accumulator is a plain list append, no set hashing.
    candidates: Dict[Tuple[int, int], List] = {}
    get = candidates.get
    for page, ws in writers.items():
        rs = readers.get(page)
        pure_readers = (None if rs is None else
                        [r for r in rs if page not in r.write_pages])
        if len(ws) == 1 and not pure_readers:
            continue
        for i, w in enumerate(ws):
            w_pid = w.pid
            for x in ws[i + 1:]:
                if x.pid == w_pid:
                    continue
                a, b = (w, x) if w_pid < x.pid else (x, w)
                key = (id(a), id(b))
                entry = get(key)
                if entry is None:
                    entry = candidates[key] = [a, b, []]
                entry[2].append(page)
            if pure_readers:
                for x in pure_readers:
                    if x.pid == w_pid:
                        continue
                    a, b = (w, x) if w_pid < x.pid else (x, w)
                    key = (id(a), id(b))
                    entry = get(key)
                    if entry is None:
                        entry = candidates[key] = [a, b, []]
                    entry[2].append(page)

    entries: List[CheckEntry] = []
    for a, b, pages in candidates.values():
        if not a.concurrent_with(b):
            continue
        entries.append(CheckEntry(a, b, [OverlapPage(
            page=page,
            write_write=page in a.write_pages and page in b.write_pages,
            a_read_b_write=page in a.read_pages and page in b.write_pages,
            a_write_b_read=page in a.write_pages and page in b.read_pages,
        ) for page in sorted(pages)]))
    entries.sort(key=lambda e: (e.a.pid, e.b.pid, e.a.index, e.b.index))
    return entries


def bitmaps_needed(entries: List[CheckEntry]) -> Set[Tuple[int, int, int, str]]:
    """The set of bitmaps the master must retrieve: (pid, interval index,
    page, kind) where kind is ``"read"`` or ``"write"``.

    This is what the extra barrier round requests (§4 step 4); its size
    relative to all bitmaps created is Table 3's "Bitmaps Used" column.
    """
    needed: Set[Tuple[int, int, int, str]] = set()
    for entry in entries:
        for ov in entry.pages:
            a, b = entry.a, entry.b
            if ov.write_write:
                needed.add((a.pid, a.index, ov.page, "write"))
                needed.add((b.pid, b.index, ov.page, "write"))
            if ov.a_read_b_write:
                needed.add((a.pid, a.index, ov.page, "read"))
                needed.add((b.pid, b.index, ov.page, "write"))
            if ov.a_write_b_read:
                needed.add((a.pid, a.index, ov.page, "write"))
                needed.add((b.pid, b.index, ov.page, "read"))
    return needed
