"""Page-overlap winnowing and the check list (paper §4, step 3).

For each concurrent interval pair, the read and write notice lists are
intersected.  A data race can only exist on a page *written* in one of the
intervals and *accessed* in the other; such pairs, together with the
overlapping pages, go on the *check list* that the barrier release message
carries to all processes (step 4) so that word bitmaps can be returned for
exactly those pages and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Set, Tuple

from repro.dsm.interval import Interval


@dataclass
class OverlapPage:
    """One page shared unsynchronized by a concurrent interval pair, with
    the access kinds that overlapped at page granularity."""

    page: int
    #: True if both intervals wrote the page.
    write_write: bool
    #: True if interval ``a`` read and ``b`` wrote.
    a_read_b_write: bool
    #: True if interval ``a`` wrote and ``b`` read.
    a_write_b_read: bool


@dataclass
class CheckEntry:
    """Check-list entry: a concurrent interval pair plus its overlap pages."""

    a: Interval
    b: Interval
    pages: List[OverlapPage]


def page_overlaps(a: Interval, b: Interval) -> List[OverlapPage]:
    """Page-granularity overlap between two intervals' notice lists.

    Returns one entry per page that could carry a race; pages only read by
    both sides are skipped (reads never race with reads).
    """
    out: List[OverlapPage] = []
    candidates = (a.write_pages & (b.write_pages | b.read_pages)) | \
                 (a.read_pages & b.write_pages)
    for page in sorted(candidates):
        out.append(OverlapPage(
            page=page,
            write_write=page in a.write_pages and page in b.write_pages,
            a_read_b_write=page in a.read_pages and page in b.write_pages,
            a_write_b_read=page in a.write_pages and page in b.read_pages,
        ))
    return out


def overlap_work(a: Interval, b: Interval) -> int:
    """Number of elementary probes the overlap check performs — used for
    virtual-time charging.  Notice lists are kept sorted, so the check is
    a linear merge over both lists.  (The paper's prototype did an O(n^2)
    nested scan and noted lists were "usually very small", §6.2; the merge
    is the obvious constant-factor fix and keeps the master's serialized
    work proportional, which matters at our scaled-down epoch lengths.)"""
    return (len(a.write_pages) + len(a.read_pages)
            + len(b.write_pages) + len(b.read_pages))


def build_check_list(pairs: List[Tuple[Interval, Interval]]) -> List[CheckEntry]:
    """Winnow concurrent pairs to those with page overlap (the check list)."""
    entries: List[CheckEntry] = []
    for a, b in pairs:
        pages = page_overlaps(a, b)
        if pages:
            entries.append(CheckEntry(a, b, pages))
    return entries


def bitmaps_needed(entries: List[CheckEntry]) -> Set[Tuple[int, int, int, str]]:
    """The set of bitmaps the master must retrieve: (pid, interval index,
    page, kind) where kind is ``"read"`` or ``"write"``.

    This is what the extra barrier round requests (§4 step 4); its size
    relative to all bitmaps created is Table 3's "Bitmaps Used" column.
    """
    needed: Set[Tuple[int, int, int, str]] = set()
    for entry in entries:
        for ov in entry.pages:
            a, b = entry.a, entry.b
            if ov.write_write:
                needed.add((a.pid, a.index, ov.page, "write"))
                needed.add((b.pid, b.index, ov.page, "write"))
            if ov.a_read_b_write:
                needed.add((a.pid, a.index, ov.page, "read"))
                needed.add((b.pid, b.index, ov.page, "write"))
            if ov.a_write_b_read:
                needed.add((a.pid, a.index, ov.page, "write"))
                needed.add((b.pid, b.index, ov.page, "read"))
    return needed
