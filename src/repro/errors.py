"""Exception hierarchy for the repro package.

All errors raised by the simulator, the DSM substrate, the instrumentation
toolchain and the race detector derive from :class:`ReproError` so that
callers can catch everything from this package with a single clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The deterministic execution engine reached an illegal state."""


class DeadlockError(SimulationError):
    """Every live simulated process is blocked and no message is in flight.

    ``crashed`` lists processes that died fail-stop (``NodeCrashed`` with
    recovery disabled) before the deadlock — the usual culprits when the
    blocked processes are waiting at a barrier the dead node will never
    reach.
    """

    def __init__(self, blocked: dict, crashed=()):
        self.blocked = dict(blocked)
        self.crashed = tuple(sorted(crashed))
        detail = ", ".join(f"P{pid}: {why}" for pid, why in sorted(blocked.items()))
        msg = f"deadlock: all live processes blocked ({detail})"
        if self.crashed:
            dead = ", ".join(f"P{pid}" for pid in self.crashed)
            msg += f" after unrecovered crash of {dead}"
        super().__init__(msg)


class ProcessFailure(SimulationError):
    """A simulated process raised an uncaught exception.

    The original exception is preserved as ``__cause__`` and in
    :attr:`original`.
    """

    def __init__(self, pid: int, original: BaseException):
        self.pid = pid
        self.original = original
        super().__init__(f"process P{pid} failed: {original!r}")


class NetworkError(ReproError):
    """Illegal use of the simulated transport."""


class MessageTooLargeError(NetworkError):
    """A message exceeded the transport's maximum datagram size.

    The paper (§5.3) notes that read notices pushed CVM messages up against
    system maximums; we model the same limit explicitly.
    """

    def __init__(self, size: int, limit: int, tag: str):
        self.size = size
        self.limit = limit
        self.tag = tag
        super().__init__(
            f"message {tag!r} of {size} bytes exceeds transport limit of {limit} bytes"
        )


class RetryExhaustedError(NetworkError):
    """The reliable channel gave up on a fragment after its retry budget.

    Carries enough context for callers to degrade gracefully — the race
    detector turns an exhausted bitmap-round fetch into an explicit
    page-granularity report instead of silently dropping the check entry.
    """

    def __init__(self, tag: str, src: int, dst: int, seqno: int,
                 fragment: int, attempts: int):
        self.tag = tag
        self.src = src
        self.dst = dst
        self.seqno = seqno
        self.fragment = fragment
        self.attempts = attempts
        super().__init__(
            f"message {tag!r} P{src}->P{dst} seq {seqno} fragment {fragment}: "
            f"gave up after {attempts} attempts")


class NodeCrashed(ReproError):
    """A simulated node died at an injected crash point.

    With crash *recovery* enabled (the default when crashes are configured)
    this exception is never raised: the crash is absorbed by the
    checkpoint/recovery protocol and only costs virtual time (and, without
    checkpoints, detection metadata).  With ``crash_recovery=False`` the
    crash is fail-stop: the exception unwinds the simulated process, the
    scheduler parks it in ``ProcState.CRASHED``, and processes that later
    wait on it deadlock — reproducing the fragility that motivated the
    crash-tolerance layer.
    """

    def __init__(self, pid: int, kind: str, at_cycles: float):
        self.pid = pid
        self.kind = kind
        self.at_cycles = at_cycles
        super().__init__(
            f"node P{pid} crashed at {kind} (virtual cycle {at_cycles:.0f})")


class DsmError(ReproError):
    """Illegal use of the DSM substrate (bad address, protocol violation...)."""


class SegmentationFault(DsmError):
    """An application accessed an address outside any allocated block."""

    def __init__(self, pid: int, addr: int, why: str = "unmapped address"):
        self.pid = pid
        self.addr = addr
        super().__init__(f"P{pid}: segmentation fault at word address {addr} ({why})")


class SynchronizationError(DsmError):
    """Misuse of locks or barriers (e.g. releasing a lock not held)."""


class AllocationError(DsmError):
    """The shared segment has no room for a requested allocation."""


class CheckpointError(DsmError):
    """A node checkpoint could not be written, read, or restored."""


class InstrumentationError(ReproError):
    """The mini-ISA toolchain rejected its input."""


class CompileError(InstrumentationError):
    """The kernel DSL compiler rejected a source program."""


class LinkError(InstrumentationError):
    """The linker could not resolve an object file or symbol."""


class DetectorError(ReproError):
    """The race detector reached an inconsistent state."""


class ReplayError(ReproError):
    """Replay diverged from the recorded synchronization order."""


class ConfigError(DsmError, ValueError):
    """A configuration combination the system cannot honor.

    Subclasses :class:`ValueError` so that callers validating
    :class:`~repro.dsm.config.DsmConfig` fields with a broad
    ``except ValueError`` keep working; new rejection paths (the
    two-phase record/detect-offline mode) raise this so the message can
    name the offending flags explicitly.
    """


class TraceError(ReproError):
    """A synchronization-order trace file could not be written, parsed,
    or validated (torn frame, hash mismatch, schema drift).  Distinct
    from :class:`ReplayError`, which signals a *divergence* during an
    otherwise well-formed replay."""


class DeadlineExceeded(ReproError):
    """A run blew through its wall-clock deadline (``--deadline``).

    Raised by the scheduler's dispatcher loop, so the simulation unwinds
    cleanly instead of hanging forever; the CLI maps it to exit code 4 and
    the fleet supervisor classifies it as a retryable timeout.  Purely a
    wall-clock guard: a run that finishes under its deadline is
    byte-identical to one with no deadline at all.
    """

    def __init__(self, deadline_seconds: float, elapsed_seconds: float,
                 switches: int):
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds
        self.switches = switches
        super().__init__(
            f"wall-clock deadline of {deadline_seconds:g}s exceeded "
            f"({elapsed_seconds:.2f}s elapsed, {switches} context "
            f"switches); the run was aborted")


class FleetError(ReproError):
    """Illegal use of the fleet service layer (spool state conflicts,
    malformed job specs, journal misuse)."""


class AdmissionError(FleetError):
    """The fleet refused a job submission — the bounded queue is full.

    This is the backpressure signal: callers should retry later or drain
    completed work first, not treat it as a crash.
    """

    def __init__(self, job_id: str, limit: int):
        self.job_id = job_id
        self.limit = limit
        super().__init__(
            f"job {job_id!r} rejected: the fleet queue is at its "
            f"admission limit of {limit} queued job(s); retry after the "
            f"backlog drains (backpressure, not a failure)")
