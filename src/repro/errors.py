"""Exception hierarchy for the repro package.

All errors raised by the simulator, the DSM substrate, the instrumentation
toolchain and the race detector derive from :class:`ReproError` so that
callers can catch everything from this package with a single clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The deterministic execution engine reached an illegal state."""


class DeadlockError(SimulationError):
    """Every live simulated process is blocked and no message is in flight."""

    def __init__(self, blocked: dict):
        self.blocked = dict(blocked)
        detail = ", ".join(f"P{pid}: {why}" for pid, why in sorted(blocked.items()))
        super().__init__(f"deadlock: all live processes blocked ({detail})")


class ProcessFailure(SimulationError):
    """A simulated process raised an uncaught exception.

    The original exception is preserved as ``__cause__`` and in
    :attr:`original`.
    """

    def __init__(self, pid: int, original: BaseException):
        self.pid = pid
        self.original = original
        super().__init__(f"process P{pid} failed: {original!r}")


class NetworkError(ReproError):
    """Illegal use of the simulated transport."""


class MessageTooLargeError(NetworkError):
    """A message exceeded the transport's maximum datagram size.

    The paper (§5.3) notes that read notices pushed CVM messages up against
    system maximums; we model the same limit explicitly.
    """

    def __init__(self, size: int, limit: int, tag: str):
        self.size = size
        self.limit = limit
        self.tag = tag
        super().__init__(
            f"message {tag!r} of {size} bytes exceeds transport limit of {limit} bytes"
        )


class RetryExhaustedError(NetworkError):
    """The reliable channel gave up on a fragment after its retry budget.

    Carries enough context for callers to degrade gracefully — the race
    detector turns an exhausted bitmap-round fetch into an explicit
    page-granularity report instead of silently dropping the check entry.
    """

    def __init__(self, tag: str, src: int, dst: int, seqno: int,
                 fragment: int, attempts: int):
        self.tag = tag
        self.src = src
        self.dst = dst
        self.seqno = seqno
        self.fragment = fragment
        self.attempts = attempts
        super().__init__(
            f"message {tag!r} P{src}->P{dst} seq {seqno} fragment {fragment}: "
            f"gave up after {attempts} attempts")


class DsmError(ReproError):
    """Illegal use of the DSM substrate (bad address, protocol violation...)."""


class SegmentationFault(DsmError):
    """An application accessed an address outside any allocated block."""

    def __init__(self, pid: int, addr: int, why: str = "unmapped address"):
        self.pid = pid
        self.addr = addr
        super().__init__(f"P{pid}: segmentation fault at word address {addr} ({why})")


class SynchronizationError(DsmError):
    """Misuse of locks or barriers (e.g. releasing a lock not held)."""


class AllocationError(DsmError):
    """The shared segment has no room for a requested allocation."""


class InstrumentationError(ReproError):
    """The mini-ISA toolchain rejected its input."""


class CompileError(InstrumentationError):
    """The kernel DSL compiler rejected a source program."""


class LinkError(InstrumentationError):
    """The linker could not resolve an object file or symbol."""


class DetectorError(ReproError):
    """The race detector reached an inconsistent state."""


class ReplayError(ReproError):
    """Replay diverged from the recorded synchronization order."""
