"""Shared, memoized application runs for the harness.

Table 1, Table 3, Figure 3 and Figure 4 all consume the same paired runs
(detection off/on, various processor counts); the context executes each
pair at most once.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.apps.base import AppResult, measure
from repro.apps.registry import APPLICATIONS

#: Processor counts used by Figure 4 (and the default count elsewhere).
PROC_SWEEP = (2, 4, 8)
DEFAULT_PROCS = 8


class ExperimentContext:
    """Lazily runs and caches (app, nprocs) measurement pairs."""

    def __init__(self, apps: Iterable[str] = tuple(APPLICATIONS)):
        self.app_names = tuple(apps)
        self._cache: Dict[Tuple[str, int], AppResult] = {}

    def result(self, app: str, nprocs: int = DEFAULT_PROCS) -> AppResult:
        key = (app, nprocs)
        if key not in self._cache:
            # The paper artifacts model the unfiltered pipeline: the
            # two-level filter (on by default for ad-hoc runs) would
            # shift the BITMAPS charges and bitmap-round traffic that
            # Tables 1-3 and Figures 3-4 report, so it is pinned off.
            self._cache[key] = measure(APPLICATIONS[app], nprocs=nprocs,
                                       coarse_filter=False)
        return self._cache[key]

    def warm(self, nprocs_list: Iterable[int] = (DEFAULT_PROCS,)) -> None:
        """Run everything up front (e.g. before timing-sensitive output)."""
        for app in self.app_names:
            for nprocs in nprocs_list:
                self.result(app, nprocs)
