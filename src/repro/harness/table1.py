"""Table 1 — Application Characteristics.

Columns: input set, synchronization, shared-memory size (kbytes), interval
structures created per process per barrier epoch, and the runtime slowdown
of the race-detecting system versus unmodified CVM at 8 processors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.registry import APPLICATIONS
from repro.harness.context import DEFAULT_PROCS, ExperimentContext
from repro.harness.format import render_table
from repro.harness.paper_values import PAPER_TABLE1


@dataclass
class Table1Row:
    app: str
    input_set: str
    synchronization: str
    memory_kbytes: float
    intervals_per_barrier: float
    slowdown: float


def compute_table1(ctx: ExperimentContext,
                   nprocs: int = DEFAULT_PROCS) -> List[Table1Row]:
    rows: List[Table1Row] = []
    for app in ctx.app_names:
        spec = APPLICATIONS[app]
        m = ctx.result(app, nprocs)
        rows.append(Table1Row(
            app=app,
            input_set=spec.input_description,
            synchronization=spec.synchronization,
            memory_kbytes=m.detected.memory_kbytes,
            intervals_per_barrier=m.detected.intervals_per_barrier,
            slowdown=m.slowdown,
        ))
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    return render_table(
        "Table 1. Application Characteristics (measured | paper)",
        ["App", "Input Set", "Synchronization", "Memory (KB)",
         "Intervals/Barrier", "Slowdown (8p)", "Paper Slowdown"],
        [[r.app.upper(), r.input_set, r.synchronization,
          r.memory_kbytes, r.intervals_per_barrier, r.slowdown,
          PAPER_TABLE1[r.app]["slowdown_8proc"]] for r in rows])
