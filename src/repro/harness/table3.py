"""Table 3 — Dynamic Metrics.

Per application, from detection-on runs:

* **Intervals Used** — share of the epoch intervals involved in at least
  one concurrent pair with page overlap (unsynchronized sharing, true or
  false);
* **Bitmaps Used** — share of created word bitmaps the master had to
  retrieve to separate false from true sharing;
* **Msg Overhead** — share of all network bytes added by the detector
  (read notices + the bitmap round);
* **Shared / Private accesses per second** — runtime calls to the analysis
  routine, classified, per virtual second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.harness.context import DEFAULT_PROCS, ExperimentContext
from repro.harness.format import pct, render_table
from repro.harness.paper_values import PAPER_TABLE3


@dataclass
class Table3Row:
    app: str
    intervals_used: float
    bitmaps_used: float
    msg_overhead: float
    shared_per_sec: float
    private_per_sec: float


def compute_table3(ctx: ExperimentContext,
                   nprocs: int = DEFAULT_PROCS) -> List[Table3Row]:
    rows: List[Table3Row] = []
    for app in ctx.app_names:
        res = ctx.result(app, nprocs).detected
        stats = res.detector_stats
        rows.append(Table3Row(
            app=app,
            intervals_used=stats.intervals_used_fraction,
            bitmaps_used=stats.bitmaps_used_fraction,
            msg_overhead=res.traffic.message_overhead_fraction(),
            shared_per_sec=res.shared_access_rate(),
            private_per_sec=res.private_access_rate(),
        ))
    return rows


def render_table3(rows: List[Table3Row]) -> str:
    return render_table(
        "Table 3. Dynamic Metrics (measured; paper values in parentheses)",
        ["App", "Intervals Used", "Bitmaps Used", "Msg Ohead",
         "Shared/s", "Private/s"],
        [[r.app.upper(),
          f"{pct(r.intervals_used)} ({pct(PAPER_TABLE3[r.app]['intervals_used'])})",
          f"{pct(r.bitmaps_used)} ({pct(PAPER_TABLE3[r.app]['bitmaps_used'])})",
          f"{100 * r.msg_overhead:.1f}% "
          f"({100 * PAPER_TABLE3[r.app]['msg_overhead']:.1f}%)",
          f"{r.shared_per_sec:,.0f}",
          f"{r.private_per_sec:,.0f}"] for r in rows])
