"""Machine-readable export of every experiment artifact.

``export_json`` emits one self-describing document with the measured and
paper values for Tables 1–3 and Figures 3–4 plus the race findings;
``export_csv`` writes one CSV per artifact into a directory.  These are
the files a plotting pipeline (or a regression dashboard tracking the
reproduction over time) consumes.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, List

from repro.harness.experiments import ExperimentResults
from repro.harness.paper_values import (PAPER_TABLE1, PAPER_TABLE2,
                                        PAPER_TABLE3)
from repro.sim.costmodel import OVERHEAD_CATEGORIES


def results_to_dict(results: ExperimentResults) -> Dict:
    """The full experiment payload as plain data."""
    return {
        "table1": [
            {"app": r.app, "input": r.input_set,
             "synchronization": r.synchronization,
             "memory_kbytes": r.memory_kbytes,
             "intervals_per_barrier": r.intervals_per_barrier,
             "slowdown": r.slowdown,
             "paper": PAPER_TABLE1[r.app]}
            for r in results.table1],
        "table2": [
            {"app": r.app, "stack": r.stack, "static": r.static,
             "library": r.library, "cvm": r.cvm,
             "instrumented": r.instrumented,
             "eliminated_fraction": r.eliminated_fraction,
             "paper": PAPER_TABLE2[r.app]}
            for r in results.table2],
        "table3": [
            {"app": r.app, "intervals_used": r.intervals_used,
             "bitmaps_used": r.bitmaps_used,
             "msg_overhead": r.msg_overhead,
             "shared_per_sec": r.shared_per_sec,
             "private_per_sec": r.private_per_sec,
             "paper": PAPER_TABLE3[r.app]}
            for r in results.table3],
        "figure3": [
            {"app": r.app, **r.fractions,
             "total_overhead": r.total_overhead,
             "instrumentation_share": r.instrumentation_share}
            for r in results.figure3],
        "figure4": [
            {"app": r.app,
             "slowdowns": {str(k): v for k, v in r.slowdowns.items()},
             "decreasing": r.decreasing_overall()}
            for r in results.figure4],
        "races": {
            app: [{"kind": race.kind.value, "symbol": race.symbol,
                   "addr": race.addr, "epoch": race.epoch,
                   "a": {"pid": race.a.pid, "interval": race.a.index,
                         "access": race.a.access},
                   "b": {"pid": race.b.pid, "interval": race.b.index,
                         "access": race.b.access}}
                  for race in races]
            for app, races in results.races.items()},
        "avg_slowdown": results.avg_slowdown,
    }


def export_json(results: ExperimentResults, path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as f:
        json.dump(results_to_dict(results), f, indent=2, sort_keys=True)


def export_csv(results: ExperimentResults, directory: str) -> List[str]:
    """Write table1..figure4 CSVs; returns the paths written."""
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []

    def write(name: str, headers: List[str], rows: List[List]) -> None:
        path = os.path.join(directory, f"{name}.csv")
        with open(path, "w", newline="") as f:
            w = csv.writer(f)
            w.writerow(headers)
            w.writerows(rows)
        written.append(path)

    write("table1",
          ["app", "input", "synchronization", "memory_kbytes",
           "intervals_per_barrier", "slowdown", "paper_slowdown"],
          [[r.app, r.input_set, r.synchronization, r.memory_kbytes,
            r.intervals_per_barrier, r.slowdown,
            PAPER_TABLE1[r.app]["slowdown_8proc"]] for r in results.table1])
    write("table2",
          ["app", "stack", "static", "library", "cvm", "instrumented",
           "eliminated_fraction", "paper_instrumented"],
          [[r.app, r.stack, r.static, r.library, r.cvm, r.instrumented,
            r.eliminated_fraction, PAPER_TABLE2[r.app]["instrumented"]]
           for r in results.table2])
    write("table3",
          ["app", "intervals_used", "bitmaps_used", "msg_overhead",
           "shared_per_sec", "private_per_sec",
           "paper_intervals_used", "paper_bitmaps_used"],
          [[r.app, r.intervals_used, r.bitmaps_used, r.msg_overhead,
            r.shared_per_sec, r.private_per_sec,
            PAPER_TABLE3[r.app]["intervals_used"],
            PAPER_TABLE3[r.app]["bitmaps_used"]] for r in results.table3])
    write("figure3",
          ["app"] + [c.value for c in OVERHEAD_CATEGORIES]
          + ["total_overhead", "instrumentation_share"],
          [[r.app] + [r.fractions[c.value] for c in OVERHEAD_CATEGORIES]
           + [r.total_overhead, r.instrumentation_share]
           for r in results.figure3])
    if results.figure4:
        procs = sorted(results.figure4[0].slowdowns)
        write("figure4",
              ["app"] + [f"slowdown_{p}p" for p in procs] + ["decreasing"],
              [[r.app] + [r.slowdowns[p] for p in procs]
               + [r.decreasing_overall()] for r in results.figure4])
    return written
