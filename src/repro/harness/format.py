"""Plain-text table rendering for harness output."""

from __future__ import annotations

from typing import Any, List, Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Monospace table with a title line, aligned columns, and a rule."""
    cells: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def pct(fraction: float) -> str:
    """Render a fraction as a whole percentage, like the paper's tables."""
    return f"{100 * fraction:.0f}%"


def markdown_table(headers: Sequence[str],
                   rows: Sequence[Sequence[Any]]) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    return "\n".join(out)


def race_report_lines(result) -> List[str]:
    """Canonical race-report lines for a finished run: one line per
    :class:`~repro.core.report.RaceReport`, sorted.

    This is the comparison format everywhere reports are diffed — the CLI
    ``--report`` file, the CI smoke jobs, and the equivalence suites
    (record/replay, sharded-vs-centralized, crash-vs-crash-free) — so a
    byte-identical claim always means the same bytes."""
    return sorted(str(race) for race in result.races)
