"""Figure 4 — Slowdown versus number of processors.

The paper's (initially surprising) observation: slowdown *decreases* as
processors are added, because (i) interval/bitmap comparison is serialized
at the master, so its observable cost stays constant while the rest of the
system scales, and (ii) instrumentation overhead runs in parallel with the
shared accesses, so per-process overhead shrinks with per-process work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.harness.context import PROC_SWEEP, ExperimentContext
from repro.harness.format import render_table


@dataclass
class Figure4Row:
    app: str
    #: nprocs -> slowdown.
    slowdowns: Dict[int, float]

    def decreasing_overall(self) -> bool:
        """The paper's qualitative claim: the largest configuration is no
        slower (relatively) than the smallest."""
        procs = sorted(self.slowdowns)
        return self.slowdowns[procs[-1]] <= self.slowdowns[procs[0]]


def compute_figure4(ctx: ExperimentContext,
                    proc_counts: Sequence[int] = PROC_SWEEP
                    ) -> List[Figure4Row]:
    rows: List[Figure4Row] = []
    for app in ctx.app_names:
        slowdowns = {np_: ctx.result(app, np_).slowdown
                     for np_ in proc_counts}
        rows.append(Figure4Row(app=app, slowdowns=slowdowns))
    return rows


def render_figure4(rows: List[Figure4Row]) -> str:
    if not rows:
        return "Figure 4. (no data)"
    proc_counts = sorted(rows[0].slowdowns)
    return render_table(
        "Figure 4. Slowdown Factor versus Number of Processors",
        ["App"] + [f"{np_} procs" for np_ in proc_counts] + ["Decreasing?"],
        [[r.app.upper()] + [r.slowdowns[np_] for np_ in proc_counts]
         + ["yes" if r.decreasing_overall() else "NO"] for r in rows])
