"""Experiment harness: regenerates every table and figure of the paper.

One module per artifact:

* :mod:`repro.harness.table1` — application characteristics & slowdown,
* :mod:`repro.harness.table2` — static instrumentation statistics,
* :mod:`repro.harness.table3` — dynamic metrics,
* :mod:`repro.harness.figure3` — overhead breakdown,
* :mod:`repro.harness.figure4` — slowdown vs. processor count,

plus :mod:`repro.harness.experiments`, which runs them all off a shared
:class:`~repro.harness.context.ExperimentContext` (paired detection-off /
detection-on runs are executed once and reused across artifacts) and can
render an EXPERIMENTS.md-style report with paper-vs-measured values.
"""

from repro.harness.context import ExperimentContext
from repro.harness.experiments import run_all_experiments

__all__ = ["ExperimentContext", "run_all_experiments"]
