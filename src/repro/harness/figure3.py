"""Figure 3 — Overhead Breakdown.

Per application, the race-detection overhead relative to the unaltered
binary's running time, split into the paper's five categories: CVM Mods,
Proc Call, Access Check, Intervals, Bitmaps.  The reproducible claims:
instrumentation (Proc Call + Access Check) accounts for roughly two thirds
of total overhead on average; the comparison algorithm ("Intervals") and
bitmap work are at most the 3rd/4th largest components; TSP has the largest
access-check overhead (its high analysis-call rate) and Water the largest
interval-comparison overhead (its fine-grained synchronization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.harness.context import DEFAULT_PROCS, ExperimentContext
from repro.harness.format import render_table
from repro.sim.costmodel import OVERHEAD_CATEGORIES


@dataclass
class Figure3Row:
    app: str
    #: category value -> overhead as a fraction of base runtime.
    fractions: Dict[str, float]

    @property
    def total_overhead(self) -> float:
        return sum(self.fractions.values())

    @property
    def instrumentation_share(self) -> float:
        """(Proc Call + Access Check) / total overhead."""
        total = self.total_overhead
        if total <= 0:
            return 0.0
        return (self.fractions["proc_call"]
                + self.fractions["access_check"]) / total

    def category_rank(self, category: str) -> int:
        """1-based rank of a category among the five (1 = largest)."""
        ordered = sorted(self.fractions.values(), reverse=True)
        return 1 + ordered.index(self.fractions[category])


def compute_figure3(ctx: ExperimentContext,
                    nprocs: int = DEFAULT_PROCS) -> List[Figure3Row]:
    rows: List[Figure3Row] = []
    for app in ctx.app_names:
        res = ctx.result(app, nprocs).detected
        rows.append(Figure3Row(app=app, fractions=res.overhead_breakdown()))
    return rows


def render_figure3(rows: List[Figure3Row]) -> str:
    headers = ["App"] + [c.value for c in OVERHEAD_CATEGORIES] + \
        ["Total", "Instr share"]
    table_rows = []
    for r in rows:
        table_rows.append(
            [r.app.upper()]
            + [f"{100 * r.fractions[c.value]:.1f}%"
               for c in OVERHEAD_CATEGORIES]
            + [f"{100 * r.total_overhead:.0f}%",
               f"{100 * r.instrumentation_share:.0f}%"])
    text = render_table(
        "Figure 3. Overhead Breakdown (% of unaltered runtime)",
        headers, table_rows)
    return text + "\n" + _ascii_bars(rows)


def _ascii_bars(rows: List[Figure3Row], width: int = 50) -> str:
    """Stacked ASCII bars, one per app, mirroring the paper's figure."""
    glyphs = {"cvm_mods": "M", "proc_call": "P", "access_check": "A",
              "intervals": "I", "bitmaps": "B"}
    peak = max((r.total_overhead for r in rows), default=1.0) or 1.0
    lines = ["", "  (M=CVM Mods  P=Proc Call  A=Access Check  "
                 "I=Intervals  B=Bitmaps)"]
    for r in rows:
        bar = ""
        for cat in OVERHEAD_CATEGORIES:
            n = round(r.fractions[cat.value] / peak * width)
            bar += glyphs[cat.value] * n
        lines.append(f"  {r.app.upper():6s} |{bar}")
    return "\n".join(lines)
