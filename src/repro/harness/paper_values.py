"""The paper's published numbers, for paper-vs-measured comparisons.

Transcribed from Perković & Keleher, OSDI 1996 (Tables 1–3; Figure 3 and
Figure 4 values are approximate bar readings where exact numbers are not
printed in the text).
"""

from __future__ import annotations

#: Table 1 — Application Characteristics.
PAPER_TABLE1 = {
    "fft": {"input": "64 x 64 x 16", "sync": "barrier",
            "memory_kbytes": 3088, "intervals_per_barrier": 2,
            "slowdown_8proc": 2.08},
    "sor": {"input": "512x512", "sync": "barrier",
            "memory_kbytes": 8208, "intervals_per_barrier": 2,
            "slowdown_8proc": 1.83},
    "tsp": {"input": "19 cities", "sync": "lock",
            "memory_kbytes": 792, "intervals_per_barrier": 177,
            "slowdown_8proc": 2.51},
    "water": {"input": "216 mols, 5 iters", "sync": "lock, barrier",
              "memory_kbytes": 152, "intervals_per_barrier": 46,
              "slowdown_8proc": 2.31},
}

#: Table 2 — Instrumentation Statistics (load/store counts).
PAPER_TABLE2 = {
    "fft": {"stack": 1285, "static": 1496, "library": 124716,
            "cvm": 3910, "instrumented": 261},
    "sor": {"stack": 342, "static": 1304, "library": 48717,
            "cvm": 3910, "instrumented": 126},
    "tsp": {"stack": 244, "static": 1213, "library": 48717,
            "cvm": 3910, "instrumented": 350},
    "water": {"stack": 649, "static": 1919, "library": 124716,
              "cvm": 3910, "instrumented": 528},
}

#: Table 3 — Dynamic Metrics.
PAPER_TABLE3 = {
    "fft": {"intervals_used": 0.15, "bitmaps_used": 0.01,
            "msg_overhead": 0.004, "shared_per_sec": 311079,
            "private_per_sec": 924226},
    "sor": {"intervals_used": 0.00, "bitmaps_used": 0.00,
            "msg_overhead": 0.016, "shared_per_sec": 483310,
            "private_per_sec": 251200},
    "tsp": {"intervals_used": 0.93, "bitmaps_used": 0.13,
            "msg_overhead": 0.013, "shared_per_sec": 737159,
            "private_per_sec": 2195510},
    "water": {"intervals_used": 0.13, "bitmaps_used": 0.11,
              "msg_overhead": 0.483, "shared_per_sec": 145095,
              "private_per_sec": 982965},
}

#: §5.1: instrumentation (proc call + access check) as a share of total
#: race-detection overhead, averaged over the applications.
PAPER_INSTRUMENTATION_SHARE = 0.68

#: Average slowdown over the four applications (Table 1 / §5).
PAPER_AVG_SLOWDOWN = 2.2

#: Figure 4's qualitative claim.
PAPER_FIG4_CLAIM = "slowdown decreases as the number of processors grows"
