"""Table 2 — Instrumentation Statistics.

Static load/store classification of each linked application binary by the
ATOM-analogue rewriter: Stack / Static / Library / CVM counts are the
instructions the filter eliminates; "Inst." are the survivors that get an
analysis call.  The paper's claim to reproduce: >99% of loads and stores
are statically eliminated, with library code dominating raw counts and the
ordering Water > TSP > FFT > SOR on the instrumented residue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.harness.format import pct, render_table
from repro.harness.paper_values import PAPER_TABLE2
from repro.instrument.binaries import APP_NAMES, table2_reports


@dataclass
class Table2Row:
    app: str
    stack: int
    static: int
    library: int
    cvm: int
    instrumented: int
    eliminated_fraction: float


def compute_table2() -> List[Table2Row]:
    rows: List[Table2Row] = []
    for app, report in table2_reports().items():
        cells = report.row()
        rows.append(Table2Row(
            app=app,
            stack=cells["stack"],
            static=cells["static"],
            library=cells["library"],
            cvm=cells["cvm"],
            instrumented=cells["instrumented"],
            eliminated_fraction=report.eliminated_fraction,
        ))
    return rows


def render_table2(rows: List[Table2Row]) -> str:
    return render_table(
        "Table 2. Instrumentation Statistics "
        "(static load/store classification; paper Inst. in last column)",
        ["App", "Stack", "Static", "Library", "CVM", "Inst.",
         "Eliminated", "Paper Inst."],
        [[r.app.upper(), r.stack, r.static, r.library, r.cvm,
          r.instrumented, pct(r.eliminated_fraction),
          PAPER_TABLE2[r.app]["instrumented"]] for r in rows])
