"""Run every experiment and render a combined report.

``python -m repro.harness.experiments`` regenerates all tables and figures
and (with ``--write``) refreshes EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.registry import APPLICATIONS
from repro.core.report import RaceReport, involves_symbol
from repro.harness.context import DEFAULT_PROCS, PROC_SWEEP, ExperimentContext
from repro.harness.figure3 import Figure3Row, compute_figure3, render_figure3
from repro.harness.figure4 import Figure4Row, compute_figure4, render_figure4
from repro.harness.format import markdown_table, pct
from repro.harness.paper_values import (PAPER_AVG_SLOWDOWN, PAPER_TABLE1,
                                        PAPER_TABLE2, PAPER_TABLE3)
from repro.harness.table1 import Table1Row, compute_table1, render_table1
from repro.harness.table2 import Table2Row, compute_table2, render_table2
from repro.harness.table3 import Table3Row, compute_table3, render_table3


@dataclass
class ExperimentResults:
    table1: List[Table1Row]
    table2: List[Table2Row]
    table3: List[Table3Row]
    figure3: List[Figure3Row]
    figure4: List[Figure4Row]
    #: app -> race reports from the 8-processor detection run.
    races: Dict[str, List[RaceReport]]

    @property
    def avg_slowdown(self) -> float:
        return sum(r.slowdown for r in self.table1) / len(self.table1)


def run_all_experiments(ctx: Optional[ExperimentContext] = None,
                        sweep=PROC_SWEEP) -> ExperimentResults:
    ctx = ctx or ExperimentContext()
    figure4 = compute_figure4(ctx, sweep)  # warms the cache for the rest
    races = {app: ctx.result(app, DEFAULT_PROCS).detected.races
             for app in ctx.app_names}
    return ExperimentResults(
        table1=compute_table1(ctx),
        table2=compute_table2(),
        table3=compute_table3(ctx),
        figure3=compute_figure3(ctx),
        figure4=figure4,
        races=races,
    )


def render_findings(results: ExperimentResults) -> str:
    """The §5 headline: which programs race, and on what variable."""
    lines = ["Race findings (8 processors):"]
    for app, races in results.races.items():
        if not races:
            lines.append(f"  {app.upper():6s} no data races "
                         f"({'expected' if not APPLICATIONS[app].expect_races else 'UNEXPECTED'})")
            continue
        symbols = sorted({r.symbol.split('+')[0] for r in races})
        kinds = sorted({r.kind.value for r in races})
        lines.append(f"  {app.upper():6s} {len(races)} races on "
                     f"{', '.join(symbols)} ({', '.join(kinds)})")
    return "\n".join(lines)


def render_report(results: ExperimentResults) -> str:
    parts = [
        render_table1(results.table1),
        render_table2(results.table2),
        render_table3(results.table3),
        render_figure3(results.figure3),
        render_figure4(results.figure4),
        render_findings(results),
        f"Average slowdown: {results.avg_slowdown:.2f} "
        f"(paper: {PAPER_AVG_SLOWDOWN})",
    ]
    return "\n\n".join(parts)


def render_experiments_md(results: ExperimentResults) -> str:
    """EXPERIMENTS.md: paper-vs-measured for every artifact."""
    out: List[str] = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Regenerate everything with `python -m repro.harness.experiments`",
        "or per-artifact with `pytest benchmarks/ --benchmark-only`.",
        "All measured numbers come from the deterministic simulation at the",
        "scaled default inputs (see DESIGN.md for the substitution table);",
        "the reproduction targets are the paper's *shapes*, not absolute",
        "values: who wins, orderings, zero/nonzero structure, and rough",
        "factors.",
        "",
        "## Table 1 — Application characteristics",
        "",
        markdown_table(
            ["App", "Input (ours)", "Input (paper)", "Sync",
             "Memory KB (ours)", "KB (paper)",
             "Intervals/barrier (ours)", "(paper)",
             "Slowdown 8p (ours)", "(paper)"],
            [[r.app.upper(), r.input_set, PAPER_TABLE1[r.app]["input"],
              r.synchronization, r.memory_kbytes,
              PAPER_TABLE1[r.app]["memory_kbytes"],
              r.intervals_per_barrier,
              PAPER_TABLE1[r.app]["intervals_per_barrier"],
              r.slowdown, PAPER_TABLE1[r.app]["slowdown_8proc"]]
             for r in results.table1]),
        "",
        "Shape checks: every slowdown in the 1.4–2.7 band around the",
        "paper's ~2x (TSP, the instrumentation-heaviest program, is the",
        "most expensive in both); TSP has the most intervals per barrier;",
        "barrier-only apps (FFT, SOR) have exactly 2.  Memory sizes are",
        "smaller than the paper's in proportion to the scaled inputs.",
        "",
        "## Table 2 — Instrumentation statistics",
        "",
        markdown_table(
            ["App", "Stack", "Static", "Library", "CVM", "Inst. (ours)",
             "Inst. (paper)", "Eliminated"],
            [[r.app.upper(), r.stack, r.static, r.library, r.cvm,
              r.instrumented, PAPER_TABLE2[r.app]["instrumented"],
              pct(r.eliminated_fraction)] for r in results.table2]),
        "",
        "Shape checks: >99% of loads/stores statically eliminated;",
        "library code dominates; Water carries the largest residue.",
        "",
        "## Table 3 — Dynamic metrics",
        "",
        markdown_table(
            ["App", "Intervals used (ours)", "(paper)",
             "Bitmaps used (ours)", "(paper)",
             "Msg overhead (ours)", "(paper)",
             "Shared/s", "Private/s"],
            [[r.app.upper(), pct(r.intervals_used),
              pct(PAPER_TABLE3[r.app]["intervals_used"]),
              pct(r.bitmaps_used), pct(PAPER_TABLE3[r.app]["bitmaps_used"]),
              f"{100 * r.msg_overhead:.1f}%",
              f"{100 * PAPER_TABLE3[r.app]['msg_overhead']:.1f}%",
              f"{r.shared_per_sec:,.0f}", f"{r.private_per_sec:,.0f}"]
             for r in results.table3]),
        "",
        "Shape checks: SOR at exactly 0% (no unsynchronized sharing);",
        "TSP by far the highest intervals-used with only a minority of",
        "bitmaps fetched; Water between SOR and TSP (paper: 13%); private",
        "analysis calls outnumber shared ones except for SOR (the paper's",
        "Table 3 shows the same exception).  Message overhead is nonzero",
        "everywhere and largest for the lock-based programs, but Water's",
        "dramatic 48% is not reproduced in magnitude: it comes from the",
        "paper's full-scale interval counts (hundreds per barrier epoch)",
        "and 8 KB page-fetch messages, which the scaled inputs and small",
        "simulated pages do not reach (see docs/cost_model.md).",
        "",
        "## Figure 3 — Overhead breakdown",
        "",
        markdown_table(
            ["App", "CVM Mods", "Proc Call", "Access Check", "Intervals",
             "Bitmaps", "Total", "Instrumentation share"],
            [[r.app.upper()]
             + [f"{100 * r.fractions[k]:.1f}%" for k in
                ("cvm_mods", "proc_call", "access_check",
                 "intervals", "bitmaps")]
             + [f"{100 * r.total_overhead:.0f}%",
                f"{100 * r.instrumentation_share:.0f}%"]
             for r in results.figure3]),
        "",
        "Shape checks: instrumentation (proc call + access check) is the",
        "dominant overhead (paper: ~68% on average); interval and bitmap",
        "comparison are at most the 3rd/4th-largest components.",
        "",
        "## Figure 4 — Slowdown vs. processors",
        "",
        markdown_table(
            ["App"] + [f"{np_}p" for np_ in sorted(
                results.figure4[0].slowdowns)] + ["Decreasing?"],
            [[r.app.upper()]
             + [f"{r.slowdowns[np_]:.2f}" for np_ in sorted(r.slowdowns)]
             + ["yes" if r.decreasing_overall() else "no"]
             for r in results.figure4]),
        "",
        "Shape check: slowdown does not grow from the smallest to the",
        "largest configuration (the paper's Figure 4 trend).",
        "",
        "## §5 headline findings",
        "",
        "```",
        render_findings(results),
        "```",
        "",
        f"Average slowdown: {results.avg_slowdown:.2f}"
        f" (paper: {PAPER_AVG_SLOWDOWN}).",
        "",
        "Expected: TSP reports benign read-write races on the global tour",
        "bound (`tsp_bound`); Water reports the write-write bug on the",
        "potential-energy accumulator (`water_poteng`); FFT and SOR are",
        "race-free.  The detector's full output for each run is validated",
        "against two oracles in tests/ (exact happens-before and Adve-style",
        "post-mortem analysis).",
    ]
    return "\n".join(out) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", metavar="PATH", default=None,
                        help="also write EXPERIMENTS.md-style output here")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="export all artifacts as one JSON document")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="export one CSV per table/figure into DIR")
    args = parser.parse_args(argv)
    results = run_all_experiments()
    print(render_report(results))
    if args.write:
        with open(args.write, "w") as f:
            f.write(render_experiments_md(results))
        print(f"\nwrote {args.write}")
    if args.json:
        from repro.harness.export import export_json
        export_json(results, args.json)
        print(f"wrote {args.json}")
    if args.csv:
        from repro.harness.export import export_csv
        for path in export_csv(results, args.csv):
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
