"""Registry of the evaluation applications (Table 1 rows)."""

from __future__ import annotations

from typing import Dict

from repro.apps.base import AppSpec
from repro.apps.bfs import BfsParams, bfs
from repro.apps.fft import PAPER_PARAMS as FFT_PAPER
from repro.apps.fft import FftParams, fft
from repro.apps.hashtab import HashTabParams, hashtab
from repro.apps.lu import PAPER_PARAMS as LU_PAPER
from repro.apps.lu import LuParams, lu
from repro.apps.queue_racy import QueueParams, queue_app
from repro.apps.wsdeque import WsDequeParams, wsdeque
from repro.apps.sor import PAPER_PARAMS as SOR_PAPER
from repro.apps.sor import SorParams, sor
from repro.apps.tsp import PAPER_PARAMS as TSP_PAPER
from repro.apps.tsp import TspParams, tsp
from repro.apps.water import PAPER_PARAMS as WATER_PAPER
from repro.apps.water import WaterParams, water

APPLICATIONS: Dict[str, AppSpec] = {
    "fft": AppSpec(
        name="fft", func=fft,
        default_params=FftParams(), paper_params=FFT_PAPER,
        input_description="32 x 32 x 2", synchronization="barrier",
        expect_races=False),
    "sor": AppSpec(
        name="sor", func=sor,
        default_params=SorParams(), paper_params=SOR_PAPER,
        input_description="48x64", synchronization="barrier",
        expect_races=False),
    "tsp": AppSpec(
        name="tsp", func=tsp,
        default_params=TspParams(), paper_params=TSP_PAPER,
        input_description="11 cities", synchronization="lock",
        expect_races=True),
    "water": AppSpec(
        name="water", func=water,
        default_params=WaterParams(), paper_params=WATER_PAPER,
        input_description="48 mols, 3 iters", synchronization="lock, barrier",
        expect_races=True),
}

#: Auxiliary programs (not Table 1 rows).
EXTRAS: Dict[str, AppSpec] = {
    "lu": AppSpec(
        name="lu", func=lu,
        default_params=LuParams(), paper_params=LU_PAPER,
        input_description="24x24", synchronization="barrier",
        expect_races=False),
    "queue_racy": AppSpec(
        name="queue_racy", func=queue_app,
        default_params=QueueParams(), paper_params=QueueParams(),
        input_description="fig. 5 queue", synchronization="none (buggy)",
        expect_races=True),
    # Irregular DSL workloads: compiled kernel-language programs run on
    # the instrument->dsm bridge (repro.apps.dsl).  Defaults are the racy
    # variants; params(with_sync=True) runs the race-free twin.
    "wsdeque": AppSpec(
        name="wsdeque", func=wsdeque,
        default_params=WsDequeParams(), paper_params=WsDequeParams(),
        input_description="8 tasks, 3 steals", synchronization="none (buggy)",
        expect_races=True),
    "bfs": AppSpec(
        name="bfs", func=bfs,
        default_params=BfsParams(), paper_params=BfsParams(),
        input_description="depth-3 tree", synchronization="none (buggy)",
        expect_races=True),
    "hashtab": AppSpec(
        name="hashtab", func=hashtab,
        default_params=HashTabParams(), paper_params=HashTabParams(),
        input_description="4 buckets, 2 rounds",
        synchronization="none (buggy)",
        expect_races=True),
}


def get_app(name: str) -> AppSpec:
    spec = APPLICATIONS.get(name) or EXTRAS.get(name)
    if spec is None:
        raise KeyError(f"unknown application {name!r}; known: "
                       f"{sorted(APPLICATIONS) + sorted(EXTRAS)}")
    return spec
