"""Run compiled kernel-DSL binaries as CVM applications.

This is the bridge between the two layers of the repo: programs written
in the kernel language (:mod:`repro.instrument.parser`) are compiled,
linked, ATOM-rewritten — and then executed *inside the simulated DSM*,
so every heap access the static filter could not prove private flows
through :class:`repro.dsm.cvm.Env` and is seen by the race detector as
an ordinary instrumented access.

Address mapping
---------------
The mini-ISA machine has a private address space per process (stack,
statics) plus a heap region starting at ``HEAP_BASE``.  The bridge maps
the whole heap region onto one named shared-segment allocation::

    env address = shared_base + (machine address - HEAP_BASE)

The allocation is *named*, so every process resolves the same base and
machine heap pointers are meaningful across processes — a pointer built
by pid 0 and published through shared memory dereferences to the same
words on every pid.

The heap region is carved deterministically:

* the first page is the **mailbox** — a shared scratch page whose
  machine address (``HEAP_BASE``) is passed to the DSL ``main`` so
  programs can publish roots (a deque pointer, a tree root, a bucket
  table) without any other rendezvous;
* after it come per-pid **arenas** of ``ARENA_WORDS`` each; a process's
  ``new`` draws from its own arena, so allocation is race-free by
  construction while the *objects* remain fully shared.

Accesses below ``HEAP_BASE`` (stack and statics) stay machine-private.
When the rewriter instrumented such an access (a "false" instrumentation
the filter could not eliminate), the analysis hook charges it via
``env.private_accesses`` — exactly the Table 3 accounting the scalar
apps use.

Synchronization intrinsics ``lock``/``unlock``/``barrier``/``pause``
are forwarded to the Env, so DSL programs participate in the same
interval/epoch structure as the hand-written SPMD apps.
"""

from __future__ import annotations

from functools import lru_cache

from repro.dsm.cvm import Env
from repro.instrument.atom import AtomRewriter
from repro.instrument.isa import BinaryImage
from repro.instrument.linker import link
from repro.instrument.machine import HEAP_BASE, Machine
from repro.instrument.parser import compile_source

#: Words of private ``new`` arena per process.  16 procs fit comfortably
#: in the default 64Ki-word segment: 1 mailbox page + 16 * 512 words.
ARENA_WORDS = 512


@lru_cache(maxsize=None)
def compiled_image(name: str, source: str,
                   regalloc: str = "linear") -> BinaryImage:
    """Compile, link and ATOM-instrument a DSL program (cached — the
    binary is immutable and shared by every process and every run)."""
    obj = compile_source(source, name, regalloc=regalloc)
    image = link(name, [obj], libraries=[], include_cvm=False, strict=True)
    return AtomRewriter().instrument(image)


class DslMachine(Machine):
    """A mini-ISA machine whose heap region lives in CVM shared memory."""

    def __init__(self, image: BinaryImage, env: Env, shared_base: int,
                 **kwargs):
        super().__init__(image, analysis_hook=self._analysis, **kwargs)
        self.env = env
        self.shared_base = shared_base
        psz = env.config.page_size_words
        # Carve this pid's arena out of the shared heap region (the first
        # page is the mailbox, common to all pids).
        self.heap_next = HEAP_BASE + psz + env.pid * ARENA_WORDS
        self.heap_limit = self.heap_next + ARENA_WORDS
        self.intrinsics.update(
            lock=lambda lid, *_: env.lock(lid) or 0,
            unlock=lambda lid, *_: env.unlock(lid) or 0,
            barrier=lambda *_: env.barrier() or 0,
            pause=lambda n, *_: env.pause(max(1, n)) or 0,
        )

    # -- shared/private split ------------------------------------------- #
    def read_word(self, addr: int) -> int:
        if addr >= HEAP_BASE:
            return int(self.env.load(self.shared_base + (addr - HEAP_BASE)))
        return self.memory.get(addr, 0)

    def write_word(self, addr: int, value: int) -> None:
        if addr >= HEAP_BASE:
            self.env.store(self.shared_base + (addr - HEAP_BASE), value)
        else:
            self.memory[addr] = value

    def _analysis(self, addr: int, is_store: bool, origin: str) -> None:
        """The rewriter's analysis call.  Shared accesses were already
        fully accounted (cost, bitmaps, detection) by the ``env.load`` /
        ``env.store`` the LD/ST itself performed; what remains is the
        instrumented-but-private case — the run-time check that fails the
        shared-segment bounds test."""
        if addr < HEAP_BASE:
            self.env.private_accesses(1)


def run_dsl_app(env: Env, source: str, name: str, *main_args: int,
                regalloc: str = "linear") -> int:
    """Execute a DSL program under this Env and return its ``main``'s
    value.  ``main`` is invoked as ``main(pid, nprocs, mailbox, *args)``
    where ``mailbox`` is the machine address of the shared mailbox page.
    """
    psz = env.config.page_size_words
    total = psz + env.nprocs * ARENA_WORDS
    base = env.malloc(total, name=f"dslheap:{name}", page_aligned=True)
    machine = DslMachine(compiled_image(name, source), env, base)
    return machine.run(env.pid, env.nprocs, HEAP_BASE, *main_args)
