"""FFT: barrier-phased 2D fast Fourier transform (paper Table 1).

The standard DSM formulation: an n×n complex matrix distributed by blocks
of rows; every phase is separated by barriers:

1. row FFTs over the local band of the source matrix,
2. a *pull* transpose — each process reads every other process's band of
   the source and writes its own band of the destination, and accumulates
   a per-process partial checksum into a shared stats vector,
3. row FFTs over the transposed band.

All cross-process matrix communication is barrier-ordered, so FFT has no
data races.  The matrices are page-aligned per band (n complex values fill
whole pages), but the little ``fft_check`` vector packs one word per
process into a single page: in the transpose epoch every process writes a
*different word of the same page*.  That is pure false sharing — concurrent
intervals whose page notices overlap but whose word bitmaps do not — and it
reproduces why the paper's Table 3 shows a modest nonzero "Intervals Used"
for FFT (15%) while almost none of the fetched bitmaps reveal races (1%):
one sharing phase out of three, all of it false.
"""

from __future__ import annotations

import cmath
from dataclasses import dataclass
from typing import List

from repro.apps.base import band
from repro.dsm.cvm import Env

#: Compute units per transformed point (complex multiply-add ladder).
FLOPS_PER_POINT = 10
#: Instrumented-but-private accesses per transformed point.
PRIVATE_PER_POINT = 20


@dataclass(frozen=True)
class FftParams:
    n: int = 32              # n x n complex matrix; 2n words per row
    iterations: int = 2      # forward passes


#: The paper ran 64 x 64 x 16 (Table 1).
PAPER_PARAMS = FftParams(n=64, iterations=16)


def _row_fft(row: List[complex]) -> List[complex]:
    """Radix-2 FFT with an exact O(n^2) DFT fallback for odd sizes."""
    n = len(row)
    if n <= 1:
        return list(row)
    if n % 2 == 0:
        even = _row_fft(row[0::2])
        odd = _row_fft(row[1::2])
        out = [0j] * n
        for k in range(n // 2):
            tw = cmath.exp(-2j * cmath.pi * k / n) * odd[k]
            out[k] = even[k] + tw
            out[k + n // 2] = even[k] - tw
        return out
    return [sum(row[j] * cmath.exp(-2j * cmath.pi * j * k / n)
                for j in range(n)) for k in range(n)]


def fft(env: Env, params: FftParams = FftParams()) -> float:
    """2D FFT; returns the magnitude of the DC coefficient."""
    n = params.n
    words = 2 * n * n  # interleaved re/im
    src = env.malloc(words, name="fft_src", page_aligned=True)
    dst = env.malloc(words, name="fft_dst", page_aligned=True)
    check = env.malloc(env.nprocs, name="fft_check")
    lo, hi = band(n, env.nprocs, env.pid)
    row_words = 2 * n

    # Deterministic input: each process fills its own rows.
    for r in range(lo, hi):
        vals: List[float] = []
        for c in range(n):
            vals.extend(((r * n + c) % 13 - 6.0, 0.0))
        env.store_range(src + r * row_words, vals)
    env.barrier()

    for _it in range(params.iterations):
        # Phase 1: row FFTs on the local band of src.
        _transform_band(env, src, lo, hi, n)
        env.barrier()
        # Phase 2: pull transpose src -> dst; publish a partial checksum
        # (each process writes its own word of the shared check page:
        # concurrent, overlapping page, disjoint words -> false sharing).
        partial = 0.0
        for r in range(lo, hi):
            out: List[float] = []
            for c in range(n):
                re = env.load(src + c * row_words + 2 * r)
                im = env.load(src + c * row_words + 2 * r + 1)
                out.extend((re, im))
                partial += abs(re) + abs(im)
            env.store_range(dst + r * row_words, out)
            env.private_accesses(n * 2)
        env.store(check + env.pid, partial)
        env.barrier()
        # Phase 3: row FFTs on the transposed band.
        _transform_band(env, dst, lo, hi, n)
        env.barrier()
        src, dst = dst, src

    mag = 0.0
    if env.pid == 0:
        mag = abs(complex(env.load(src), env.load(src + 1)))
    env.barrier()
    return mag


def _transform_band(env: Env, base: int, lo: int, hi: int, n: int) -> None:
    row_words = 2 * n
    for r in range(lo, hi):
        flat = env.load_range(base + r * row_words, row_words)
        row = [complex(flat[2 * i], flat[2 * i + 1]) for i in range(n)]
        out = _row_fft(row)
        env.compute(n * FLOPS_PER_POINT)
        env.private_accesses(n * PRIVATE_PER_POINT)
        packed: List[float] = []
        for z in out:
            packed.extend((z.real, z.imag))
        env.store_range(base + r * row_words, packed)
