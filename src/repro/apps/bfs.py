"""Parallel graph traversal over heap-allocated nodes — DSL workload.

Pid 0 builds a complete binary tree of ``Node`` records on the shared
heap and publishes the root through the bridge mailbox.  Every pid then
traverses the whole tree with an explicit stack (a frontier of node
pointers in a stack array), applying a *visitor passed as a function
value* to each node — the indirect call (``la`` + ``callr``) is on the
hot path of every visit.

Racy variant (default): visitors bump each node's ``visits`` counter
and a shared total in the mailbox with no synchronization — every pid
races every other on every node (write-write on ``visits``, and on the
mailbox total).

``with_sync=True``: each visit and the total update run under
``BFS_LOCK`` — same traversal, zero races.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.dsl import run_dsl_app
from repro.dsm.cvm import Env

BFS_LOCK = 12

SOURCE = """
struct Node { val; visits; left: Node; right: Node; }

func build(depth, counter) {
  local n: Node; local c;
  n = new Node;
  c = counter[0];
  n.val = c;
  counter[0] = c + 1;
  n.visits = 0;
  n.left = 0;
  n.right = 0;
  if (1 < depth) {
    n.left = build(depth - 1, counter);
    n.right = build(depth - 1, counter);
  }
  return n;
}

func visit_racy(n: Node) {
  n.visits = n.visits + 1;
  return n.val;
}

func visit_locked(n: Node) {
  local v;
  lock(12);
  n.visits = n.visits + 1;
  v = n.val;
  unlock(12);
  return v;
}

func traverse(root: Node, visitor) {
  local top; local sum; local n: Node;
  array stack[32];
  stack[0] = root;
  top = 1;
  sum = 0;
  while (0 < top) {
    top = top - 1;
    n = stack[top];
    sum = sum + visitor(n);
    if (n.left) { stack[top] = n.left; top = top + 1; }
    if (n.right) { stack[top] = n.right; top = top + 1; }
  }
  return sum;
}

func main(pid, nprocs, mbox, ws, depth) {
  local root: Node; local f; local s;
  array cnt[1];
  if (pid == 0) {
    cnt[0] = 1;
    root = build(depth, &cnt);
    mbox[0] = root;
    mbox[1] = 0;
  }
  barrier(0);
  root = mbox[0];
  f = visit_racy;
  if (ws) { f = visit_locked; }
  s = traverse(root, f);
  if (ws) {
    lock(12);
    mbox[1] = mbox[1] + s;
    unlock(12);
  } else {
    mbox[1] = mbox[1] + s;
  }
  barrier(0);
  return s;
}
"""


@dataclass(frozen=True)
class BfsParams:
    #: Visit and accumulate under BFS_LOCK.
    with_sync: bool = False
    #: Tree depth (complete binary tree: 2^depth - 1 nodes).
    depth: int = 3


def bfs(env: Env, params: BfsParams = BfsParams()) -> int:
    return run_dsl_app(env, SOURCE, "bfs",
                       1 if params.with_sync else 0, params.depth)
