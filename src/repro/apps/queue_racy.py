"""Adve et al.'s weak-memory queue example — the paper's Figure 5.

Three processes share a queue area, a queue pointer and an empty flag.
P1 fills the queue and publishes ``qPtr = 100`` then ``qEmpty = 0``, but
the release that should follow is **missing**; P2's check of ``qEmpty`` is
likewise missing its acquire.

On sequentially consistent hardware, once P2 observes ``qEmpty == 0`` it
must also observe ``qPtr == 100`` (the writes propagate in order), so only
the qPtr/qEmpty races could occur.  On a weak-memory system nothing ties
the two propagations together: here P2 holds a cached copy of the page
containing ``qPtr`` but not of the one containing ``qEmpty``, so it reads
the *fresh* flag and the *stale* pointer (37) — and writes into cells
37, 38..., the region P3 is concurrently filling.  The w2(37)–w3(37)
write-write collision is a race that "would not occur in an SC system"
(the paper's Figure 5 caption); the paper's system, which reports all
races of the actual execution (§6.4), flags it along with the qPtr and
qEmpty read-write races.

``with_sync=True`` restores the missing release/acquire as a proper
lock-protected publication with a consumer wait loop: P2 then reads
``qPtr = 100``, writes cells 100+, and the program is race-free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsm.cvm import Env

QUEUE_LOCK = 0
#: Queue-cell indices, following the figure.
STALE_PTR = 37
PUBLISHED_PTR = 100


@dataclass(frozen=True)
class QueueParams:
    #: Restore the missing release/acquire pair.
    with_sync: bool = False
    #: How many cells P2 and P3 write.
    p2_cells: int = 2
    p3_cells: int = 4


def queue_app(env: Env, params: QueueParams = QueueParams()) -> int:
    """Requires 3 processes; returns the pointer value P2 observed."""
    # qPtr and qEmpty live on different pages: their propagation is
    # independent, which is exactly what a weak memory model permits and
    # an SC system forbids.
    qptr = env.malloc(1, name="qPtr", page_aligned=True)
    qempty = env.malloc(1, name="qEmpty", page_aligned=True)
    cells = env.malloc(256, name="queue_cells", page_aligned=True)

    # Initial state: queue empty, pointer parked at the stale value.
    if env.pid == 0:
        env.store(qptr, STALE_PTR)
        env.store(qempty, 1)
    env.barrier()
    # P2 caches the qPtr page only; its qEmpty page copy stays absent, so
    # a later read of the flag fetches fresh data while the pointer read
    # hits the stale cached copy.
    if env.pid == 1:
        env.load(qptr)
    env.barrier()

    observed = -1
    if env.pid == 0:
        # P1: fill and publish the queue.
        if params.with_sync:
            env.lock(QUEUE_LOCK)
        env.store(qptr, PUBLISHED_PTR, site="fig5:w1(qPtr)")
        env.store(qempty, 0, site="fig5:w1(qEmpty)")
        if params.with_sync:
            env.unlock(QUEUE_LOCK)  # the release that Figure 5 is missing
    elif env.pid == 1:
        if params.with_sync:
            # Proper consumer: wait for the publication under the lock.
            while True:
                env.lock(QUEUE_LOCK)
                empty = env.load(qempty, site="fig5:r2(qEmpty)")
                ptr = env.load(qptr, site="fig5:r2(qPtr)")
                env.unlock(QUEUE_LOCK)
                if not empty:
                    break
        else:
            # Figure 5's P2: the acquire is missing.  The pause is local
            # work (no ordering!) that lets P1's publication execute first
            # in this run; the flag then arrives (fresh page fetch) while
            # the pointer does not (stale cached page).
            env.pause(3)
            empty = env.load(qempty, site="fig5:r2(qEmpty)")
            ptr = env.load(qptr, site="fig5:r2(qPtr)")
        observed = ptr
        if not empty:
            for k in range(params.p2_cells):
                env.store(cells + ptr + k, 2000 + k, site="fig5:w2(cell)")
    elif env.pid == 2:
        # P3: concurrently fill the region starting at the stale pointer.
        for k in range(params.p3_cells):
            env.store(cells + STALE_PTR + k, 3000 + k, site="fig5:w3(cell)")
    env.barrier()
    return observed
