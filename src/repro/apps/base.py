"""Application metadata and run helpers shared by the four workloads."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Optional, Tuple

from repro.dsm.config import DsmConfig
from repro.dsm.cvm import CVM, RunResult


@dataclass(frozen=True)
class AppSpec:
    """One benchmark application.

    Attributes:
        name: Short name ("fft", "sor", "tsp", "water").
        func: The SPMD function ``func(env, params)``.
        default_params: Scaled-down parameters used by tests and default
            bench runs (pure-Python speed).
        paper_params: The paper's Table 1 input sets (runnable, slower).
        input_description: Table 1 "Input Set" text for the default run.
        synchronization: Table 1 "Synchronization" text.
        expect_races: Whether the paper found races in this program.
    """

    name: str
    func: Callable[..., Any]
    default_params: Any
    paper_params: Any
    input_description: str
    synchronization: str
    expect_races: bool

    def config(self, nprocs: int = 8, detection: bool = True,
               **overrides: Any) -> DsmConfig:
        """A DSM configuration sized for this app."""
        base: Dict[str, Any] = dict(
            nprocs=nprocs, detection=detection,
            page_size_words=64, segment_words=1 << 16)
        base.update(overrides)
        return DsmConfig(**base)

    def run(self, nprocs: int = 8, detection: bool = True,
            params: Any = None, **config_overrides: Any) -> RunResult:
        """Run the application on a fresh CVM instance."""
        cfg = self.config(nprocs=nprocs, detection=detection,
                          **config_overrides)
        return CVM(cfg).run(self.func, params or self.default_params)


@dataclass
class AppResult:
    """Slowdown measurement: paired runs with detection off and on."""

    spec: AppSpec
    nprocs: int
    base: RunResult
    detected: RunResult

    @property
    def slowdown(self) -> float:
        """Table 1 "Slowdown": instrumented runtime / unaltered runtime."""
        if self.base.runtime_cycles <= 0:
            return 1.0
        return self.detected.runtime_cycles / self.base.runtime_cycles


def measure(spec: AppSpec, nprocs: int = 8, params: Any = None,
            **config_overrides: Any) -> AppResult:
    """Run an app twice (unaltered CVM, then with race detection) with the
    identical workload and scheduling seed, and package the pair."""
    base = spec.run(nprocs=nprocs, detection=False, params=params,
                    **config_overrides)
    detected = spec.run(nprocs=nprocs, detection=True, params=params,
                        **config_overrides)
    return AppResult(spec, nprocs, base, detected)


def band(total: int, nprocs: int, pid: int) -> Tuple[int, int]:
    """[start, end) of process ``pid``'s contiguous share of ``total``
    items — the block distribution all four apps use."""
    base_size, extra = divmod(total, nprocs)
    start = pid * base_size + min(pid, extra)
    size = base_size + (1 if pid < extra else 0)
    return start, start + size
