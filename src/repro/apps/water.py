"""Water: miniature Water-Nsquared (Splash2) with the historical bug.

Structure follows the Splash2 kernel the paper ran: molecules distributed
in blocks; each timestep alternates

1. an O(n²/2) *inter*-molecule force phase in which each process computes
   pair forces between its molecules and the following half of the ring,
   accumulating contributions into the shared force array under
   **fine-grained per-partition locks**, a few molecules per critical
   section, Splash-style.  The many small lock intervals per barrier —
   each carrying read notices for the pages it touched — are what give
   Water its large interval count and its outsized read-notice bandwidth
   (Table 3 reports 48% message overhead, by far the largest);
2. *intra*-molecule integration on the local block (no locking), plus
3. a reduction of kinetic and potential energy into global accumulators.

Force partitions are page-aligned (one partition block per page), so all
cross-process force traffic is lock-ordered and race-free; the molecule
position/velocity arrays are deliberately packed, so neighbouring blocks
share pages and the integration phase exhibits a little false sharing —
Water sits between SOR (none) and TSP (lots) in Table 3's "Intervals
Used", as in the paper (13%).

The seeded bug reproduces the write-write race the paper found in the
Splash2 original and reported upstream: the *kinetic* energy sum is
correctly accumulated under ``GLOBAL_LOCK``, but the *potential* energy sum
is read-modify-written **without the lock** — concurrent unsynchronized
writes by every process to the same shared word (``water_poteng``).  The
detector must flag it as a write-write race; it is a genuine bug (lost
updates corrupt the reported energy).  Construct the app with
``fixed=True`` to run the repaired version, which must be race-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.base import band
from repro.dsm.cvm import Env


def partition_lock(pid: int) -> int:
    """Lock protecting process ``pid``'s force partition."""
    return 100 + pid


GLOBAL_LOCK = 99

#: Compute units per molecule pair interaction.
FLOPS_PER_PAIR = 12
#: Instrumented-but-private accesses per pair.
PRIVATE_PER_PAIR = 62
#: Molecules updated per critical section when flushing force
#: contributions (smaller -> finer-grained locking, more intervals).
FLUSH_CHUNK = 12


@dataclass(frozen=True)
class WaterParams:
    nmol: int = 48
    steps: int = 3
    #: Run the repaired (properly locked) energy accumulation.
    fixed: bool = False


#: The paper ran 216 molecules for 5 iterations (Table 1).
PAPER_PARAMS = WaterParams(nmol=216, steps=5)


def water(env: Env, params: WaterParams = WaterParams()) -> float:
    """Simulate; returns the final (possibly corrupted!) potential sum."""
    nmol, steps = params.nmol, params.steps
    nprocs = env.nprocs
    psz = env.config.page_size_words
    pos = env.malloc(3 * nmol, name="water_pos")
    vel = env.malloc(3 * nmol, name="water_vel")
    # One page-aligned force block per partition: cross-process force
    # updates are always lock-ordered, and partitions never false-share.
    max_block = -(-nmol // nprocs)
    part_words = -(-3 * max_block // psz) * psz
    forces = env.malloc(nprocs * part_words, name="water_forces",
                        page_aligned=True)
    kin_addr = env.malloc(1, name="water_kineng")
    pot_addr = env.malloc(1, name="water_poteng")
    lo, hi = band(nmol, env.nprocs, env.pid)

    def force_addr(mol: int) -> int:
        owner = _owner_of(mol, nmol, nprocs)
        start, _ = band(nmol, nprocs, owner)
        return forces + owner * part_words + 3 * (mol - start)

    # Deterministic initial conditions for the local block.
    for m in range(lo, hi):
        env.store_range(pos + 3 * m, [float((m * 7 + a) % 11) - 5.0
                                      for a in range(3)])
        env.store_range(vel + 3 * m, [float((m * 3 + a) % 5) - 2.0
                                      for a in range(3)])
        env.store_range(force_addr(m), [0.0, 0.0, 0.0])
    if env.pid == 0:
        env.store(kin_addr, 0.0)
        env.store(pot_addr, 0.0)
    env.barrier()

    dt = 0.002
    pot_result = 0.0
    for _step in range(steps):
        # Phase 1: inter-molecular forces.  Each process handles pairs
        # (i, j) with i in its block and j in the half-ring after i; the
        # contributions are flushed a few molecules at a time under the
        # owning partition's lock.
        my_pos = env.load_range(pos + 3 * lo, 3 * (hi - lo))
        pending: List[List[float]] = [[] for _ in range(nprocs)]
        pending_idx: List[List[int]] = [[] for _ in range(nprocs)]
        pot_partial = 0.0
        for i in range(lo, hi):
            pi = my_pos[3 * (i - lo):3 * (i - lo) + 3]
            for off in range(1, nmol // 2 + 1):
                j = (i + off) % nmol
                pj = env.load_range(pos + 3 * j, 3)
                dx = [a - b for a, b in zip(pi, pj)]
                r2 = sum(d * d for d in dx) + 1.0
                f = 24.0 / (r2 * r2)
                pot_partial += 4.0 / r2
                owner = _owner_of(j, nmol, nprocs)
                pending[owner].append([f * d for d in dx])
                pending_idx[owner].append(j)
                env.compute(FLOPS_PER_PAIR)
                env.private_accesses(PRIVATE_PER_PAIR)
        for owner in range(nprocs):
            idxs, dfs = pending_idx[owner], pending[owner]
            for base in range(0, len(idxs), FLUSH_CHUNK):
                env.lock(partition_lock(owner))
                for j, df in zip(idxs[base:base + FLUSH_CHUNK],
                                 dfs[base:base + FLUSH_CHUNK]):
                    # interf() re-reads the positions while it updates the
                    # forces, so every critical section's interval carries
                    # read notices for position pages as well — the long
                    # read-notice lists behind Water's outsized message
                    # overhead (Table 3: 48%).
                    env.load_range(pos + 3 * j, 3)
                    env.load_range(vel + 3 * j, 3)
                    cur = env.load_range(force_addr(j), 3)
                    env.store_range(force_addr(j),
                                    [c + d for c, d in zip(cur, df)])
                env.unlock(partition_lock(owner))
        env.barrier()

        # Phase 2: intra-molecular integration on the local block only.
        kin_partial = 0.0
        for m in range(lo, hi):
            f = env.load_range(force_addr(m), 3)
            v = env.load_range(vel + 3 * m, 3)
            p = env.load_range(pos + 3 * m, 3)
            v = [vi + dt * fi for vi, fi in zip(v, f)]
            p = [pi_ + dt * vi for pi_, vi in zip(p, v)]
            kin_partial += sum(vi * vi for vi in v)
            env.store_range(vel + 3 * m, v)
            env.store_range(pos + 3 * m, p)
            env.store_range(force_addr(m), [0.0, 0.0, 0.0])
            env.compute(3 * FLOPS_PER_PAIR)
            env.private_accesses(3 * PRIVATE_PER_PAIR)

        # Phase 3: energy reduction.  Kinetic: correctly locked.
        env.lock(GLOBAL_LOCK)
        env.store(kin_addr, env.load(kin_addr) + kin_partial,
                  site="water.kineng:locked-write")
        env.unlock(GLOBAL_LOCK)
        if params.fixed:
            env.lock(GLOBAL_LOCK)
            env.store(pot_addr, env.load(pot_addr) + pot_partial,
                      site="water.poteng:locked-write")
            env.unlock(GLOBAL_LOCK)
        else:
            # THE BUG (as shipped in Splash2 and reported by the paper's
            # authors): the potential-energy accumulation misses the lock.
            cur = env.load(pot_addr, site="water.poteng:unsynchronized-read")
            env.store(pot_addr, cur + pot_partial,
                      site="water.poteng:unsynchronized-write")
        env.barrier()
        pot_result = env.load(pot_addr)
        env.barrier()
    return float(pot_result)


def _owner_of(mol: int, nmol: int, nprocs: int) -> int:
    """Which process's partition a molecule belongs to (block layout)."""
    base_size, extra = divmod(nmol, nprocs)
    boundary = extra * (base_size + 1)
    if mol < boundary:
        return mol // (base_size + 1)
    return extra + (mol - boundary) // max(1, base_size)
