"""Hash-table churn with chained buckets — DSL workload for ``delete``.

Pid 0 allocates a bucket-head table on the shared heap and publishes it
through the bridge mailbox.  Every pid inserts a disjoint block of keys
(``pid * keys_per_pid + i``) into the shared chains, looks them all up,
then removes its own entries with ``delete`` — so freed blocks cycle
through the per-pid free list and a second insert round reuses them
(the churn the exact-size free-list allocator exists for).

Racy variant (default): inserts splice into bucket chains with no
synchronization, so pids whose keys hash to the same bucket race on the
head word (write-write) and on each other's ``next`` links; removals
are done in pid-order phases so the chains stay walkable.

``with_sync=True``: every table operation runs under ``TAB_LOCK`` and
all phases overlap freely — same churn, zero races.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.dsl import run_dsl_app
from repro.dsm.cvm import Env

TAB_LOCK = 13

SOURCE = """
struct Ent { key; val; next: Ent; }

func bucket_of(key, nb) {
  return key - (key / nb) * nb;
}

func insert(tab, nb, key, val, ws) {
  local b; local e: Ent;
  if (ws) { lock(13); }
  b = bucket_of(key, nb);
  e = new Ent;
  e.key = key;
  e.val = val;
  e.next = tab[b];
  tab[b] = e;
  if (ws) { unlock(13); }
  return e;
}

func lookup(tab, nb, key, ws) {
  local b; local e: Ent; local v; local hops;
  v = 0 - 1;
  if (ws) { lock(13); }
  b = bucket_of(key, nb);
  e = tab[b];
  hops = 0;
  while (e) {
    if (hops < 24) {
      if (e.key == key) {
        v = e.val;
        e = 0;
      } else {
        e = e.next;
      }
      hops = hops + 1;
    } else {
      e = 0;
    }
  }
  if (ws) { unlock(13); }
  return v;
}

func remove(tab, nb, key, ws) {
  local b; local e: Ent; local prev: Ent; local hops; local got;
  got = 0;
  if (ws) { lock(13); }
  b = bucket_of(key, nb);
  e = tab[b];
  prev = 0;
  hops = 0;
  while (e) {
    if (hops < 24) {
      if (e.key == key) {
        if (prev) { prev.next = e.next; }
        else      { tab[b] = e.next; }
        delete e;
        got = 1;
        e = 0;
      } else {
        prev = e;
        e = e.next;
      }
      hops = hops + 1;
    } else {
      e = 0;
    }
  }
  if (ws) { unlock(13); }
  return got;
}

func main(pid, nprocs, mbox, wsnb, keys_per_pid, rounds) {
  local tab; local r; local i; local k; local sum; local turn;
  local ws; local nb;
  ws = wsnb / 16;
  nb = wsnb - ws * 16;
  if (pid == 0) {
    tab = new [16];
    for (i = 0; i < nb; i += 1) { tab[i] = 0; }
    mbox[0] = tab;
  }
  barrier(0);
  tab = mbox[0];
  sum = 0;
  for (r = 0; r < rounds; r += 1) {
    for (i = 0; i < keys_per_pid; i += 1) {
      k = pid * keys_per_pid + i;
      insert(tab, nb, k, 1000 * (r + 1) + k, ws);
    }
    for (i = 0; i < keys_per_pid; i += 1) {
      k = pid * keys_per_pid + i;
      sum = sum + lookup(tab, nb, k, ws);
    }
    barrier(0);
    if (ws) {
      for (i = 0; i < keys_per_pid; i += 1) {
        sum = sum + remove(tab, nb, pid * keys_per_pid + i, ws);
      }
    } else {
      for (turn = 0; turn < nprocs; turn += 1) {
        if (turn == pid) {
          for (i = 0; i < keys_per_pid; i += 1) {
            sum = sum + remove(tab, nb, pid * keys_per_pid + i, ws);
          }
        }
        barrier(0);
      }
    }
    barrier(0);
  }
  return sum;
}
"""


@dataclass(frozen=True)
class HashTabParams:
    #: Protect every table operation with TAB_LOCK.
    with_sync: bool = False
    #: Bucket count (table allocated with 16 heads; nb <= 16).
    nb: int = 4
    #: Keys each pid inserts/looks up/removes per round.
    keys_per_pid: int = 3
    #: Insert/lookup/remove rounds (>= 2 exercises free-list reuse).
    rounds: int = 2


def hashtab(env: Env, params: HashTabParams = HashTabParams()) -> int:
    # ws and nb share one argument register (main has six already):
    # wsnb = with_sync * 16 + nb.
    return run_dsl_app(env, SOURCE, "hashtab",
                       (16 if params.with_sync else 0) + params.nb,
                       params.keys_per_pid, params.rounds)
