"""The paper's four evaluation applications plus auxiliary examples.

Each application is written as an SPMD function against the DSM
:class:`~repro.dsm.cvm.Env` API, with the same synchronization structure as
the original:

* :mod:`repro.apps.fft` — barrier-phased 2D FFT; transpose-phase false
  sharing, no races;
* :mod:`repro.apps.sor` — Jacobi relaxation with page-aligned bands; no
  unsynchronized sharing at all;
* :mod:`repro.apps.tsp` — branch-and-bound TSP with a lock-protected work
  queue and a deliberately unsynchronized read of the global tour bound
  (benign read-write races, found by the paper);
* :mod:`repro.apps.water` — miniature Water-Nsquared with fine-grained
  force locking and the historical unsynchronized global-sum update (a
  real write-write bug, found by the paper and fixed upstream);
* :mod:`repro.apps.queue_racy` — Adve et al.'s weak-memory queue example
  (the paper's Figure 5).

:data:`repro.apps.registry.APPLICATIONS` indexes them for the harness.
"""

from repro.apps.base import AppResult, AppSpec
from repro.apps.registry import APPLICATIONS, get_app

__all__ = ["APPLICATIONS", "AppResult", "AppSpec", "get_app"]
