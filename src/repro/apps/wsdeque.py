"""Work-stealing deque — an irregular, pointer-heavy DSL workload.

Pid 0 owns a heap-allocated deque (a ``Deque`` record plus a buffer of
slots); it pushes tasks at the bottom and pops some back, while every
other pid steals from the top.  All state lives behind pointers
published through the bridge mailbox, so every access the detector sees
is a real instrumented machine load/store.

Racy variant (default): owner and thieves manipulate ``top`` /
``bottom`` / the buffer slots with no synchronization inside the work
epoch — the classic steal/pop collision.  The detector reports
same-epoch read-write and write-write races on the index words (and on
buffer slots both sides touch).

``with_sync=True``: every deque operation runs under ``DEQUE_LOCK`` —
same workload, zero races.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.dsl import run_dsl_app
from repro.dsm.cvm import Env

DEQUE_LOCK = 11

SOURCE = """
struct Deque { top; bottom; buf; }

func push(d: Deque, v, ws) {
  local b; local q;
  if (ws) { lock(11); }
  b = d.bottom;
  q = d.buf;
  q[b] = v;
  d.bottom = b + 1;
  if (ws) { unlock(11); }
  return 0;
}

func pop(d: Deque, ws) {
  local b; local q; local x;
  x = 0 - 1;
  if (ws) { lock(11); }
  b = d.bottom;
  if (d.top < b) {
    b = b - 1;
    d.bottom = b;
    q = d.buf;
    x = q[b];
  }
  if (ws) { unlock(11); }
  return x;
}

func steal(d: Deque, ws) {
  local t; local q; local x;
  x = 0 - 1;
  if (ws) { lock(11); }
  t = d.top;
  if (t < d.bottom) {
    q = d.buf;
    x = q[t];
    d.top = t + 1;
  }
  if (ws) { unlock(11); }
  return x;
}

func main(pid, nprocs, mbox, ws, ntasks, steals) {
  local d: Deque; local i; local x; local sum;
  if (pid == 0) {
    d = new Deque;
    d.top = 0;
    d.bottom = 0;
    d.buf = new [34];
    mbox[0] = d;
  }
  barrier(0);
  d = mbox[0];
  sum = 0;
  if (pid == 0) {
    for (i = 0; i < ntasks; i += 1) {
      push(d, 100 + i, ws);
    }
    for (i = 0; i < steals; i += 1) {
      x = pop(d, ws);
      if (0 - 1 < x) { sum = sum + x; }
    }
  } else {
    for (i = 0; i < steals; i += 1) {
      x = steal(d, ws);
      if (0 - 1 < x) { sum = sum + x; }
    }
  }
  barrier(0);
  return sum;
}
"""


@dataclass(frozen=True)
class WsDequeParams:
    #: Protect every deque operation with DEQUE_LOCK.
    with_sync: bool = False
    #: Tasks the owner pushes (buffer holds up to 32).
    ntasks: int = 8
    #: Pops (owner) / steal attempts (each thief).
    steals: int = 3


def wsdeque(env: Env, params: WsDequeParams = WsDequeParams()) -> int:
    return run_dsl_app(env, SOURCE, "wsdeque",
                       1 if params.with_sync else 0,
                       params.ntasks, params.steals)
