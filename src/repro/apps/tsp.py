"""TSP: branch-and-bound traveling salesman (paper Table 1, §5).

The canonical DSM TSP: a lock-protected queue of partial tours, and a
global *tour bound* holding the best complete tour length found so far.
Workers pop a partial tour, extend it exhaustively (private computation),
and prune subtrees whose lower bound exceeds the global bound.

The famous performance trick — and the source of the races the paper's
system correctly reports — is that the pruning test reads the global bound
**without acquiring the bound lock**.  A stale bound only costs redundant
work, never a wrong answer, because every *update* of the bound is made
under the lock and re-validated.  Those unsynchronized reads are actual
read-write data races on ``tsp_bound`` and the detector must flag them
(benign, as §1 explains: "out-of-date tour bounds may cause redundant work
to be performed, but do not violate correctness").

TSP is the interval-heavy workload: hundreds of lock acquire/release pairs
between barriers (Table 1 reports 177 intervals per barrier), which is what
exercises the concurrent-interval search.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import List, Optional, Tuple

from repro.dsm.cvm import Env

#: Lock ids.
QUEUE_LOCK = 0
BOUND_LOCK = 1

#: Compute units charged per evaluated tour edge.
FLOPS_PER_EDGE = 24
#: Instrumented-but-private accesses per evaluated tour edge.
PRIVATE_PER_EDGE = 3


@dataclass(frozen=True)
class TspParams:
    ncities: int = 11
    #: Depth of the partial tours seeded into the shared queue.
    seed_depth: int = 3


#: The paper solved 19 cities (Table 1).
PAPER_PARAMS = TspParams(ncities=19, seed_depth=3)


def _distance_matrix(n: int) -> List[int]:
    """Deterministic pseudo-random symmetric distances."""
    dist = [0] * (n * n)
    for i in range(n):
        for j in range(i + 1, n):
            d = ((i * 37 + j * 101) % 97) + 1
            dist[i * n + j] = d
            dist[j * n + i] = d
    return dist


def _lower_bound(dist: List[int], n: int, prefix: Tuple[int, ...],
                 length: int) -> int:
    """Cheap admissible bound: prefix length + min outgoing edge per
    unvisited city."""
    used = set(prefix)
    extra = 0
    for c in range(n):
        if c in used:
            continue
        best = min(dist[c * n + o] for o in range(n) if o != c)
        extra += best
    return length + extra


def tsp(env: Env, params: TspParams = TspParams()) -> int:
    """Solve TSP by branch and bound; returns the optimal tour length
    (every process returns the same value)."""
    n = params.ncities
    depth = params.seed_depth
    rec_words = depth + 2  # cities + prefix length + valid flag

    dmat_addr = env.malloc(n * n, name="tsp_dist")
    # The bound lives on its own page: bound traffic (the racy reads) and
    # queue traffic (always lock-ordered) never false-share, so bitmap
    # retrievals concentrate on the genuinely racy page.
    bound_addr = env.malloc(1, name="tsp_bound", page_aligned=True)
    qlen_addr = env.malloc(1, name="tsp_qlen", page_aligned=True)
    qhead_addr = env.malloc(1, name="tsp_qhead")
    queue_addr = env.malloc(4096, name="tsp_queue")
    # Per-process counters packed into one page (the original program keeps
    # its statistics block in shared memory): every worker bumps its own
    # word, so worker intervals false-share this page with each other —
    # part of why the paper reports 93% of TSP intervals involved in
    # unsynchronized sharing.
    stats_addr = env.malloc(env.nprocs, name="tsp_stats")
    # Per-process tour scratch (shared segment, page-aligned, private use):
    # the DFS logs candidate tours across a small ring of pages, the way
    # the original keeps its tour structures in shared memory.  These pages
    # are only ever touched by their owner, so their (several) bitmaps per
    # interval are created but never retrieved — which is why the paper's
    # TSP row pairs a 93% "Intervals Used" with only 13% "Bitmaps Used".
    scratch_pages = 6
    psz = env.config.page_size_words
    scratch_addr = env.malloc(env.nprocs * scratch_pages * psz,
                              name="tsp_scratch", page_aligned=True)
    my_scratch = scratch_addr + env.pid * scratch_pages * psz

    dist = _distance_matrix(n)
    if env.pid == 0:
        env.store_range(dmat_addr, dist)
        env.store(bound_addr, 1 << 30)
        # Seed the queue with all partial tours of the given depth that
        # start at city 0.
        count = 0
        for perm in permutations(range(1, n), depth - 1):
            prefix = (0,) + perm
            length = sum(dist[prefix[i] * n + prefix[i + 1]]
                         for i in range(depth - 1))
            rec = list(prefix) + [length, 1]
            env.store_range(queue_addr + count * rec_words, rec)
            count += 1
        env.store(qlen_addr, count)
        env.store(qhead_addr, 0)
    env.barrier()

    # Each process caches the (read-only) distance matrix once.
    local_dist = env.load_range(dmat_addr, n * n)

    pops = 0
    while True:
        # Pop one work unit under the queue lock.
        env.lock(QUEUE_LOCK)
        head = env.load(qhead_addr)
        qlen = env.load(qlen_addr)
        if head >= qlen:
            env.unlock(QUEUE_LOCK)
            break
        env.store(qhead_addr, head + 1)
        rec = env.load_range(queue_addr + head * rec_words, rec_words)
        # Lookahead: the original walks the queue structure while it holds
        # the lock (touching further queue pages whose bitmaps are created
        # but never fetched — queue accesses are always lock-ordered).
        for ahead in range(1, 4):
            if head + ahead < qlen:
                env.load_range(queue_addr + (head + ahead) * rec_words,
                               rec_words)
        env.unlock(QUEUE_LOCK)

        prefix = tuple(rec[:depth])
        length = rec[depth]
        pops += 1
        env.store(stats_addr + env.pid, pops)

        # Every expansion logs the popped prefix into this worker's shared
        # scratch ring and consults recent entries — the original keeps all
        # of its tour structures in shared memory.  These pages are only
        # ever touched by their owner: their bitmaps are created but never
        # retrieved, which is why the paper pairs TSP's 93% "Intervals
        # Used" with only 13% "Bitmaps Used".
        slot = my_scratch + (pops % scratch_pages) * psz
        env.store_range(slot, list(prefix))
        for back in (1, 2, 3):
            prev = my_scratch + ((pops - back) % scratch_pages) * psz
            env.load_range(prev, depth)
        # ... and re-reads distance rows from shared memory (read-only, so
        # read-read overlap is never a race candidate).
        for row in prefix[:4]:
            env.load_range(dmat_addr + row * n, n)

        # THE RACE: read the global bound without synchronization.  Stale
        # values are tolerated — they only admit redundant exploration.
        bound = env.load(bound_addr, site="tsp.prune:unsynchronized-read")
        if _lower_bound(local_dist, n, prefix, length) >= bound:
            env.compute(n * FLOPS_PER_EDGE)
            env.private_accesses(n * PRIVATE_PER_EDGE)
            continue

        best_len, best_tour = _solve_suffix(env, local_dist, n, prefix,
                                            length, bound)
        if best_tour is not None:
            env.store_range(slot, list(best_tour))
        if best_len is not None and best_len < bound:
            # Updates re-validate under the lock, so correctness holds no
            # matter how stale the earlier read was.
            env.lock(BOUND_LOCK)
            current = env.load(bound_addr)
            if best_len < current:
                env.store(bound_addr, best_len,
                          site="tsp.update:locked-write")
            env.unlock(BOUND_LOCK)
    env.barrier()
    return int(env.load(bound_addr))


def _solve_suffix(env: Env, dist: List[int], n: int, prefix: Tuple[int, ...],
                  length: int, bound: int
                  ) -> Tuple[Optional[int], Optional[Tuple[int, ...]]]:
    """Exhaustive depth-first completion of one partial tour (private
    work), with occasional unsynchronized re-reads of the global bound for
    mid-subtree pruning, exactly like the original program."""
    best_len: Optional[int] = None
    best_tour: Optional[Tuple[int, ...]] = None
    remaining = [c for c in range(n) if c not in prefix]
    nodes_visited = 0

    def dfs(tour: List[int], length: int, todo: List[int]) -> None:
        nonlocal best_len, best_tour, nodes_visited, bound
        nodes_visited += 1
        if (nodes_visited & 0x3F) == 0:
            # Periodic unsynchronized refresh of the bound (also racy).
            fresh = env.load(env.system.segment.lookup("tsp_bound").addr,
                             site="tsp.dfs:unsynchronized-read")
            bound = min(bound, fresh)
        if not todo:
            total = length + dist[tour[-1] * n + tour[0]]
            if best_len is None or total < best_len:
                best_len, best_tour = total, tuple(tour)
            return
        last = tour[-1]
        for nxt in sorted(todo, key=lambda c: dist[last * n + c]):
            step = dist[last * n + nxt]
            if length + step >= bound and \
                    (best_len is None or length + step >= best_len):
                continue
            tour.append(nxt)
            todo.remove(nxt)
            dfs(tour, length + step, todo)
            todo.append(nxt)
            tour.pop()

    dfs(list(prefix), length, remaining)
    env.compute(nodes_visited * FLOPS_PER_EDGE)
    env.private_accesses(nodes_visited * PRIVATE_PER_EDGE)
    return best_len, best_tour
