"""SOR: red-free Jacobi relaxation over a shared grid (paper Table 1).

Structure follows the classic TreadMarks/CVM SOR: two grids (read the old
one, write the new one), a block of rows per process, and a barrier between
iterations.  Rows are exactly one page wide and bands are page-aligned, so
neighbouring processes never write the same page — SOR exhibits *no*
unsynchronized sharing at all, true or false, which is why the paper's
Table 3 shows 0% intervals used and 0% bitmaps used for it.

Each process reads its own band plus one boundary row from each neighbour;
those boundary rows were written in the *previous* epoch, so the barrier
orders the accesses and no race (or false-sharing candidate) exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import band
from repro.dsm.cvm import Env

#: Compute units charged per relaxed grid point (4 adds + 1 divide).
FLOPS_PER_POINT = 5
#: Private (instrumented-but-private) accesses per relaxed point: loop
#: bookkeeping and scratch the static filter could not eliminate.
PRIVATE_PER_POINT = 3


@dataclass(frozen=True)
class SorParams:
    rows: int = 48
    cols: int = 64          # exactly one 64-word page per row
    iterations: int = 5


#: The paper's input set (512x512, Table 1) — runnable but slow in Python.
PAPER_PARAMS = SorParams(rows=512, cols=512, iterations=5)


def sor(env: Env, params: SorParams = SorParams()) -> float:
    """Run Jacobi relaxation; returns the final center-point value."""
    rows, cols, iters = params.rows, params.cols, params.iterations
    red = env.malloc(rows * cols, name="sor_red", page_aligned=True)
    black = env.malloc(rows * cols, name="sor_black", page_aligned=True)
    lo, hi = band(rows, env.nprocs, env.pid)

    # Initialize own band of the source grid: boundary rows hot, rest cold.
    for r in range(lo, hi):
        value = 100.0 if r in (0, rows - 1) else float(r % 7)
        env.store_range(red + r * cols, [value] * cols)
    env.barrier()

    src, dst = red, black
    for _it in range(iters):
        for r in range(max(lo, 1), min(hi, rows - 1)):
            above = env.load_range(src + (r - 1) * cols, cols)
            here = env.load_range(src + r * cols, cols)
            below = env.load_range(src + (r + 1) * cols, cols)
            new_row = list(here)
            for c in range(1, cols - 1):
                new_row[c] = (above[c] + below[c]
                              + here[c - 1] + here[c + 1]) / 4.0
            env.compute((cols - 2) * FLOPS_PER_POINT)
            env.private_accesses((cols - 2) * PRIVATE_PER_POINT)
            env.store_range(dst + r * cols, new_row)
        # Boundary rows are copied unchanged so the next iteration's
        # neighbours see consistent data.
        for r in (lo, hi - 1):
            if r in (0, rows - 1):
                env.store_range(dst + r * cols,
                                env.load_range(src + r * cols, cols))
        env.barrier()
        src, dst = dst, src

    center = env.load(src + (rows // 2) * cols + cols // 2)
    return float(center)
