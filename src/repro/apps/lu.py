"""LU: dense LU decomposition without pivoting (row-cyclic, barriers).

Not one of the paper's four applications, but a staple of the
TreadMarks/CVM benchmark suites of the era and a useful fifth workload: a
*pipelined* sharing pattern unlike FFT/SOR's nearest-neighbour or TSP's
queue — at elimination step ``k`` every process reads pivot row ``k``
(owned by process ``k mod nprocs``) and updates the trailing rows it owns.

Properly synchronized with one barrier per elimination step: race-free.
Construct with ``skip_pivot_barrier=True`` to reproduce a classic LU bug —
the pivot row is read by consumers in the same epoch its owner normalizes
it, an actual read-write race the detector must report on ``lu_matrix``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dsm.cvm import Env

#: Compute units per trailing-update multiply-subtract.
FLOPS_PER_UPDATE = 2
#: Instrumented-but-private accesses per updated element.
PRIVATE_PER_UPDATE = 2


@dataclass(frozen=True)
class LuParams:
    n: int = 24
    #: Omit the barrier between pivot normalization and the trailing
    #: update: seeds a read-write race on the pivot row.
    skip_pivot_barrier: bool = False


#: A paper-era input would be 512x512 or larger.
PAPER_PARAMS = LuParams(n=128)


def _owner(row: int, nprocs: int) -> int:
    """Row-cyclic distribution, the classic LU layout."""
    return row % nprocs


def lu(env: Env, params: LuParams = LuParams()) -> float:
    """Factorize a deterministic diagonally-dominant matrix in place;
    returns the trace of U (product-free determinant check proxy)."""
    n = params.n
    a = env.malloc(n * n, name="lu_matrix")
    nprocs, pid = env.nprocs, env.pid

    # Deterministic, diagonally dominant input: each process fills the
    # rows it owns.
    for r in range(n):
        if _owner(r, nprocs) != pid:
            continue
        row = [((r * 13 + c * 7) % 10) - 4.5 for c in range(n)]
        row[r] += 4.0 * n  # dominance: no pivoting needed
        env.store_range(a + r * n, row)
    env.barrier()

    for k in range(n - 1):
        # Pivot owner normalizes column k below the diagonal is deferred;
        # classic right-looking LU: owner scales row k? (we use the
        # variant where consumers divide by the pivot element themselves,
        # so the pivot row is read-only to non-owners).
        if not params.skip_pivot_barrier:
            env.barrier()
        pivot_row = env.load_range(a + k * n + k, n - k)
        pivot = pivot_row[0]
        for r in range(k + 1, n):
            if _owner(r, nprocs) != pid:
                continue
            row = env.load_range(a + r * n + k, n - k)
            factor = row[0] / pivot
            updated = [factor] + [row[j] - factor * pivot_row[j]
                                  for j in range(1, n - k)]
            env.store_range(a + r * n + k, updated)
            env.compute((n - k) * FLOPS_PER_UPDATE)
            env.private_accesses((n - k) * PRIVATE_PER_UPDATE)
        if params.skip_pivot_barrier:
            # The buggy variant synchronizes only every 4 steps: pivot
            # reads race with the previous step's updates to that row.
            if k % 4 == 3:
                env.barrier()
    env.barrier()

    trace = 0.0
    for r in range(n):
        trace += env.load(a + r * n + r)  # read-only epoch: race-free
    env.barrier()
    return trace


def reference_lu_trace(n: int) -> float:
    """Sequential in-place LU on the same input; returns trace(U)."""
    a = [[((r * 13 + c * 7) % 10) - 4.5 for c in range(n)] for r in range(n)]
    for r in range(n):
        a[r][r] += 4.0 * n
    for k in range(n - 1):
        for r in range(k + 1, n):
            factor = a[r][k] / a[k][k]
            a[r][k] = factor
            for j in range(k + 1, n):
                a[r][j] -= factor * a[k][j]
    return sum(a[i][i] for i in range(n))
