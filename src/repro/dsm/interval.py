"""Intervals: the unit of ordering in LRC (paper §3.1).

A process's execution is divided into intervals delimited by acquire and
release operations.  Each interval carries:

* its owner pid and per-process index,
* a vector timestamp (:class:`~repro.dsm.vector_clock.VectorClock`) that
  encodes everything the owner had seen when the interval began,
* *write notices* — the set of pages written during the interval (base LRC
  metadata, needed for invalidations), and
* with detection enabled, *read notices* and per-page word bitmaps — the
  paper's additions (§4, modifications i and ii).

Bitmaps remain on the creating node; only the notice lists travel with
synchronization messages.  The detector fetches bitmaps lazily in the extra
barrier round (§4, step 4).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.bitmap import Bitmap, Digest, coarse_digest
from repro.dsm.vector_clock import VectorClock, concurrent
from repro.net.message import WireSizer


class Interval:
    """One interval of one process."""

    __slots__ = ("pid", "index", "vc", "epoch", "write_pages", "read_pages",
                 "write_bitmaps", "read_bitmaps", "closed",
                 "page_size_words", "sync_label", "lost", "_digests")

    def __init__(self, pid: int, index: int, vc: VectorClock, epoch: int,
                 page_size_words: int, sync_label: str = ""):
        self.pid = pid
        self.index = index
        self.vc = vc  # snapshot; not mutated after creation
        self.epoch = epoch
        self.page_size_words = page_size_words
        #: Pages written during the interval (-> write notices).
        self.write_pages: Set[int] = set()
        #: Pages read during the interval (-> read notices; detection only).
        self.read_pages: Set[int] = set()
        self.write_bitmaps: Dict[int, Bitmap] = {}
        self.read_bitmaps: Dict[int, Bitmap] = {}
        self.closed = False
        #: Human-readable description of the synchronization op that opened
        #: the interval (for race reports).
        self.sync_label = sync_label
        #: Crash tolerance: True when the owning node died without a
        #: checkpoint and this interval's word bitmaps went with it.  The
        #: page-level notices survive (they travelled on synchronization
        #: messages), so the interval still enters the concurrency search
        #: and the check list — but any check pair touching it is reported
        #: as ``verdict="unverifiable"`` instead of being bitmap-resolved.
        self.lost = False
        #: Finalized coarse digests, keyed (page, "write"|"read"), cached
        #: once the interval is closed (see :meth:`digest`).
        self._digests: Dict[Tuple[int, str], Digest] = {}

    # ------------------------------------------------------------------ #
    # Access recording (called by the instrumentation runtime).
    # ------------------------------------------------------------------ #
    def record_write(self, page: int, offset: int, count: int = 1,
                     bitmap: bool = True) -> None:
        """Record ``count`` consecutive written words on ``page`` starting
        at word ``offset``."""
        self._check_open()
        self.write_pages.add(page)
        if bitmap:
            bm = self.write_bitmaps.get(page)
            if bm is None:
                bm = self.write_bitmaps[page] = Bitmap(self.page_size_words)
            if count == 1:
                bm.set(offset)
            else:
                bm.set_range(offset, count)

    def record_read(self, page: int, offset: int, count: int = 1,
                    bitmap: bool = True) -> None:
        """Record ``count`` consecutive read words on ``page``."""
        self._check_open()
        self.read_pages.add(page)
        if bitmap:
            bm = self.read_bitmaps.get(page)
            if bm is None:
                bm = self.read_bitmaps[page] = Bitmap(self.page_size_words)
            if count == 1:
                bm.set(offset)
            else:
                bm.set_range(offset, count)

    def merge_write_bitmap(self, page: int, bm: Bitmap) -> None:
        """OR a diff-derived write bitmap into the interval (§6.5 mode).

        Unlike the instrumentation paths, this is legal on a *closed*
        interval: the multi-writer protocol produces diffs exactly when
        the interval closes (at the release), which is when the derived
        write bitmap becomes known.
        """
        self.write_pages.add(page)
        mine = self.write_bitmaps.get(page)
        if mine is None:
            self.write_bitmaps[page] = bm.copy()
        else:
            mine.union_update(bm)
        # The merged bitmap supersedes any digest finalized earlier.
        self._digests.pop((page, "write"), None)

    def close(self) -> None:
        """Freeze the interval at the release/acquire that ends it."""
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise ValueError(f"interval {self!r} is closed")

    # ------------------------------------------------------------------ #
    # Ordering.
    # ------------------------------------------------------------------ #
    def concurrent_with(self, other: "Interval") -> bool:
        """Constant-time happens-before-1 concurrency test (paper §4)."""
        return concurrent(self.pid, self.index, self.vc,
                          other.pid, other.index, other.vc)

    @property
    def is_empty(self) -> bool:
        """No shared accesses recorded: can never participate in a race."""
        return not self.write_pages and not self.read_pages

    # ------------------------------------------------------------------ #
    # Wire accounting.
    # ------------------------------------------------------------------ #
    def wire_size(self, sizer: WireSizer, with_read_notices: bool) -> int:
        """Encoded size of the interval record in a synchronization
        message.  Read notices are the detector's addition: with detection
        off the read-notice list (header included) is absent entirely, so
        the size delta equals :meth:`read_notice_wire_size` exactly."""
        size = (sizer.ints(2) + sizer.vector_clock()
                + sizer.notice_list(len(self.write_pages)))
        if with_read_notices:
            size += self.read_notice_wire_size(sizer)
        return size

    def read_notice_wire_size(self, sizer: WireSizer) -> int:
        """Bytes attributable to the read-notice list alone (excludes the
        one-int list header that base CVM would not send: with detection
        off the list is absent entirely, so the whole list is overhead)."""
        return sizer.notice_list(len(self.read_pages))

    # ------------------------------------------------------------------ #
    # Coarse digests (two-level detection filter).
    # ------------------------------------------------------------------ #
    def digest(self, page: int, kind: str) -> Digest:
        """The coarse digest the filter consults for one (page, kind)
        access set — finalized lazily from the word bitmap's incremental
        granule mask, cached once the interval is closed (open intervals
        can still grow, and §6.5 diff merges can arrive after the close
        and invalidate the cache entry for that page)."""
        key = (page, kind)
        cached = self._digests.get(key)
        if cached is None:
            bms = self.write_bitmaps if kind == "write" else self.read_bitmaps
            cached = coarse_digest(bms.get(page), self.page_size_words)
            if self.closed:
                self._digests[key] = cached
        return cached

    def digest_wire_size(self, sizer: WireSizer) -> int:
        """Bytes the coarse digests add to this record when the two-level
        filter piggy-backs them on the notice lists (one digest per write
        notice and, with detection, per read notice)."""
        size = 0
        for page in self.write_pages:
            size += sizer.digest(self.digest(page, "write")[1] is not None)
        for page in self.read_pages:
            size += sizer.digest(self.digest(page, "read")[1] is not None)
        return size

    def __repr__(self) -> str:
        return (f"Interval(P{self.pid}:{self.index}, epoch={self.epoch}, "
                f"w={sorted(self.write_pages)}, r={sorted(self.read_pages)})")


def intervals_unseen_by(intervals: Dict[int, Dict[int, Interval]],
                        have: VectorClock, upto: VectorClock) -> Iterable[Interval]:
    """Yield interval records the acquirer (with clock ``have``) is missing
    relative to a releaser that has seen ``upto``.

    ``intervals`` maps pid -> {index -> Interval}.  This is the consistency
    information LRC piggybacks on synchronization messages (§3.1): all
    intervals seen by the releaser but not the acquirer.
    """
    for pid in range(len(upto)):
        for idx in range(have[pid] + 1, upto[pid] + 1):
            rec = intervals.get(pid, {}).get(idx)
            if rec is not None:
                yield rec
