"""Version vectors (vector timestamps) over process interval indices.

Every interval carries a vector timestamp: entry ``p`` is the index of the
latest interval of process ``p`` that the owner had *seen* when the interval
began (its own entry is its own index).  The happens-before-1 relation of
the paper (§3.1) is exactly the partial order these vectors induce, and —
the paper's key point — deciding whether two intervals are ordered is a
constant-time comparison (two integer compares, see :func:`precedes`).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


class VectorClock:
    """An immutable-by-convention vector of interval indices.

    Mutation is confined to the owning node via :meth:`observe` and
    :meth:`tick`; intervals snapshot with :meth:`copy`, after which the
    snapshot must not change.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Iterable[int]):
        self.entries: List[int] = list(entries)
        if any(e < 0 for e in self.entries):
            raise ValueError("vector clock entries must be non-negative")

    @classmethod
    def zero(cls, nprocs: int) -> "VectorClock":
        return cls([0] * nprocs)

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, pid: int) -> int:
        return self.entries[pid]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self.entries == other.entries

    def __hash__(self) -> int:
        return hash(tuple(self.entries))

    def __repr__(self) -> str:
        return f"VC{tuple(self.entries)}"

    def copy(self) -> "VectorClock":
        return VectorClock(self.entries)

    def tick(self, pid: int) -> int:
        """Advance the owner's own entry (new interval); returns the new
        interval index."""
        self.entries[pid] += 1
        return self.entries[pid]

    def observe(self, other: "VectorClock") -> None:
        """Element-wise max merge: the owner has now seen everything the
        other clock had seen.  Lengths must match."""
        if len(other) != len(self.entries):
            raise ValueError("vector clock width mismatch")
        for i, v in enumerate(other.entries):
            if v > self.entries[i]:
                self.entries[i] = v

    def dominates(self, other: "VectorClock") -> bool:
        """True if every entry is >= the other's (other happened-before or
        equals this)."""
        return all(a >= b for a, b in zip(self.entries, other.entries))


def precedes(owner_a: int, index_a: int, vc_b: VectorClock) -> bool:
    """Does interval ``index_a`` of process ``owner_a`` happen-before the
    interval whose vector is ``vc_b``?

    This is the constant-time check the paper leans on: interval
    :math:`\\sigma_{a}^{i}` precedes :math:`\\sigma_{b}^{j}` iff
    :math:`V_b[a] \\ge i` — i.e. ``b`` had already seen ``a``'s interval when
    it began.
    """
    return vc_b[owner_a] >= index_a


def concurrent(owner_a: int, index_a: int, vc_a: VectorClock,
               owner_b: int, index_b: int, vc_b: VectorClock) -> bool:
    """Are two intervals concurrent (unordered by happens-before-1)?

    Two integer comparisons, as promised in the paper (§4, step 2).
    Intervals of the same process are never concurrent (program order).
    """
    if owner_a == owner_b:
        return False
    return not precedes(owner_a, index_a, vc_b) and \
        not precedes(owner_b, index_b, vc_a)
