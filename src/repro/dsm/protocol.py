"""Coherence protocols: single-writer LRC and home-based multi-writer LRC.

The paper's prototype sits on CVM's *single-writer* protocol (§6.2): each
page has one writable copy at a time, whose location the page's manager
tracks; readers fetch whole pages from the owner; write notices invalidate
stale copies lazily, at acquires.  §6.5 sketches the move to the
multi-writer protocol, where concurrent writers twin pages and exchange
word-level *diffs* — and where diffs can replace store instrumentation.  We
implement the multi-writer variant in its home-based form (every page has a
home that diffs are flushed to at release), which preserves everything the
detector relies on while keeping page-fetch logic simple.

Both protocols re-protect written pages at interval boundaries so that the
first write in each interval soft-faults: that is how CVM gets per-interval
write notices without any instrumentation, and why the uninstrumented
baseline already carries them.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dsm.diff import apply_diff, create_diff, diff_to_bitmap
from repro.dsm.interval import Interval
from repro.dsm.node import Node
from repro.dsm.page import PageCopy, PageState
from repro.errors import DsmError
from repro.sim.costmodel import CostCategory


class Protocol:
    """Shared fault/notice machinery; subclasses fill in ownership rules.

    ``system`` is the :class:`repro.dsm.cvm.CVM` facade, giving access to
    the directory, every node (for page fetches), the transport and the
    cost model.
    """

    name = "base"

    def __init__(self, system) -> None:
        self.system = system
        self.faults_read = 0
        self.faults_write = 0
        self.soft_faults = 0
        self.invalidations = 0
        self.ownership_transfers = 0
        self.diffs_created = 0
        self.diff_words_moved = 0

    def stats(self) -> dict:
        """Protocol-level counters for diagnostics (RunResult/CLI)."""
        return {
            "read_faults": self.faults_read,
            "write_faults": self.faults_write,
            "soft_faults": self.soft_faults,
            "invalidations": self.invalidations,
            "ownership_transfers": self.ownership_transfers,
            "diffs_created": self.diffs_created,
            "diff_words_moved": self.diff_words_moved,
        }

    # ------------------------------------------------------------------ #
    # Fault entry points (called by the access layer before any access).
    # ------------------------------------------------------------------ #
    def ensure_readable(self, node: Node, page_id: int) -> PageCopy:
        copy = node.page_copy(page_id)
        if copy.valid:
            return copy
        self.faults_read += 1
        self._fetch_page(node, copy)
        copy.state = PageState.READ_ONLY
        return copy

    def ensure_writable(self, node: Node, page_id: int, offset: int) -> PageCopy:
        """Make the page locally writable, recording the page in the current
        interval's write set (the write notice) on the faulting transition."""
        copy = node.page_copy(page_id)
        if copy.state is PageState.WRITABLE:
            return copy
        fetched = False
        if not copy.valid:
            self.faults_write += 1
            self._fetch_page(node, copy)
            fetched = True
        else:
            self.soft_faults += 1
            node.clock.advance(self.system.config.cost_model.soft_fault,
                               CostCategory.BASE)
        self._grant_write(node, copy, fetched)
        copy.state = PageState.WRITABLE
        node.current.record_write(page_id, offset, bitmap=False)
        return copy

    # ------------------------------------------------------------------ #
    # Interval boundaries.
    # ------------------------------------------------------------------ #
    def on_interval_closed(self, node: Node, closed: Interval) -> None:
        """Downgrade write permissions so the next interval's first write
        faults again (per-interval write notices); subclasses add diffing."""
        for page_id in list(closed.write_pages):
            copy = node.pages.get(page_id)
            if copy is not None and copy.state is PageState.WRITABLE:
                copy.state = PageState.READ_ONLY

    def apply_write_notice(self, node: Node, interval: Interval) -> None:
        """Invalidate local copies of pages written by a newly-seen remote
        interval (the acquire-time half of lazy release consistency)."""
        if interval.pid == node.pid:
            return
        for page_id in interval.write_pages:
            if self._keeps_copy_despite_notice(node, page_id):
                continue
            copy = node.pages.get(page_id)
            if copy is not None and copy.valid:
                self.invalidations += 1
                copy.state = PageState.INVALID
                copy.data = None
                copy.drop_twin()

    # ------------------------------------------------------------------ #
    # Subclass hooks.
    # ------------------------------------------------------------------ #
    def _fetch_page(self, node: Node, copy: PageCopy) -> None:
        raise NotImplementedError

    def _grant_write(self, node: Node, copy: PageCopy,
                     fetched: bool) -> None:
        """``fetched`` tells the protocol whether the copy was just
        brought in by :meth:`_fetch_page` (and is therefore current)."""
        raise NotImplementedError

    def _keeps_copy_despite_notice(self, node: Node, page_id: int) -> bool:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared helpers.
    # ------------------------------------------------------------------ #
    def _source_copy(self, source_pid: int, page_id: int) -> PageCopy:
        """The canonical copy at ``source_pid``, materialized (zero-filled)
        on first reference — fresh shared pages read as zero."""
        source = self.system.nodes[source_pid]
        copy = source.page_copy(page_id)
        if copy.data is None:
            copy.materialize()
        if copy.state is PageState.INVALID:
            copy.state = PageState.READ_ONLY
        return copy

    def _charge_page_fetch(self, node: Node, source_pid: int,
                           page_id: int) -> None:
        """Message accounting for a remote page fetch: request to the
        manager, forward to the source if different, full-page reply."""
        system = self.system
        cm = system.config.cost_model
        node.clock.advance(cm.page_fault, CostCategory.BASE)
        manager = system.directory.manager_of(page_id)
        sizer = system.sizer
        if source_pid == node.pid:
            return  # local source: no messages
        system.net.send("page_request", node.pid, manager, None,
                              sizer.ints(4), node.clock)
        if manager != source_pid:
            system.net.send("page_forward", manager, source_pid, None,
                                  sizer.ints(4), node.clock)
        system.net.send("page_reply", source_pid, node.pid, None,
                              sizer.ints(2) + sizer.page_data(), node.clock)


class SingleWriterProtocol(Protocol):
    """The paper's prototype protocol: one writable copy per page."""

    name = "sw"

    def _fetch_page(self, node: Node, copy: PageCopy) -> None:
        owner = self.system.directory.owner_of(copy.page_id)
        source = self._source_copy(owner, copy.page_id)
        self._charge_page_fetch(node, owner, copy.page_id)
        copy.materialize(source.data)

    def _grant_write(self, node: Node, copy: PageCopy,
                     fetched: bool) -> None:
        """Take ownership of the page.

        The ownership grant carries the current page contents: even when
        the faulting processor holds a *valid* copy, LRC allows that copy
        to be stale (no write notice has reached it), and writing onto
        stale data would lose the previous owner's updates — the classic
        single-writer false-sharing ping-pong must merge, not clobber.
        The previous owner's copy demotes to a (possibly staling)
        read-only copy, which LRC permits until a write notice reaches it.
        """
        directory = self.system.directory
        owner = directory.owner_of(copy.page_id)
        if owner != node.pid:
            prev = self._source_copy(owner, copy.page_id)
            if not fetched:
                self._charge_page_fetch(node, owner, copy.page_id)
                copy.materialize(prev.data)
            if prev.state is PageState.WRITABLE:
                prev.state = PageState.READ_ONLY
            directory.set_owner(copy.page_id, node.pid)
            self.ownership_transfers += 1

    def _keeps_copy_despite_notice(self, node: Node, page_id: int) -> bool:
        # The current owner holds the newest data; invalidating it would
        # lose updates.  Everyone else drops their copy.
        return self.system.directory.owner_of(page_id) == node.pid


class MultiWriterProtocol(Protocol):
    """Home-based multi-writer LRC with twins and diffs (§6.5 target).

    Writers twin a page at the first write of each interval; at the close
    of the interval the page is diffed against its twin and the diff is
    flushed to the page's *home* (its manager), whose copy is therefore
    always current.  Readers fetch pages from the home.  When
    ``diff_write_detection`` is configured, the diff also becomes the
    interval's write bitmap — the instrumentation-free §6.5 mode, blind to
    same-value overwrites.
    """

    name = "mw"

    def _fetch_page(self, node: Node, copy: PageCopy) -> None:
        home = self.system.directory.manager_of(copy.page_id)
        source = self._source_copy(home, copy.page_id)
        self._charge_page_fetch(node, home, copy.page_id)
        copy.materialize(source.data)

    def _grant_write(self, node: Node, copy: PageCopy,
                     fetched: bool) -> None:
        cm = self.system.config.cost_model
        if copy.twin is None:
            copy.make_twin()
            node.twinned_pages.append(copy.page_id)
            node.clock.advance(
                cm.twin_per_word * self.system.config.page_size_words,
                CostCategory.BASE)

    def _keeps_copy_despite_notice(self, node: Node, page_id: int) -> bool:
        # The home copy is canonical (diffs are applied to it at release).
        return self.system.directory.manager_of(page_id) == node.pid

    def on_interval_closed(self, node: Node, closed: Interval) -> None:
        """Diff every twinned page and flush to its home."""
        system = self.system
        cm = system.config.cost_model
        page_words = system.config.page_size_words
        for page_id in node.twinned_pages:
            copy = node.pages.get(page_id)
            if copy is None or copy.twin is None or copy.data is None:
                continue
            node.clock.advance(cm.diff_per_word * page_words,
                               CostCategory.BASE)
            diff = create_diff(copy.twin, copy.data)
            copy.drop_twin()
            if diff:
                self.diffs_created += 1
                self.diff_words_moved += len(diff)
            if diff and system.config.diff_write_detection:
                closed.merge_write_bitmap(
                    page_id, diff_to_bitmap(diff, page_words))
            home = system.directory.manager_of(page_id)
            if home != node.pid and diff:
                system.net.send(
                    "diff_flush", node.pid, home, None,
                    system.sizer.diff(len(diff)), node.clock)
                home_copy = self._source_copy(home, page_id)
                apply_diff(home_copy.data, diff)
                node.clock.advance(cm.diff_per_word * len(diff),
                                   CostCategory.BASE)
        node.twinned_pages.clear()
        super().on_interval_closed(node, closed)


def make_protocol(name: str, system) -> Protocol:
    if name == "sw":
        return SingleWriterProtocol(system)
    if name == "mw":
        return MultiWriterProtocol(system)
    raise DsmError(f"unknown protocol {name!r}")
