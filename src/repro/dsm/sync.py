"""Synchronization-object state: locks and barriers.

These classes hold pure state (holder, queues, arrival bookkeeping); the
message traffic, clock reconciliation and consistency-information exchange
that happen at acquire/release/barrier live in :mod:`repro.dsm.cvm`, which
drives them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.dsm.vector_clock import VectorClock
from repro.errors import SynchronizationError


@dataclass
class GrantInfo:
    """What a lock grant carries to the next holder: the releaser's pid,
    the vector clock of the released interval (the consistency horizon the
    acquirer must catch up to), and the receiver-side arrival time of the
    grant message."""

    releaser: int
    release_vc: VectorClock
    arrival_time: float


class LockState:
    """One exclusive lock.

    CVM assigns each lock a static manager process; acquiring an idle lock
    costs a request/forward/grant message exchange, and a contended acquire
    waits in FIFO order for the holder's release.  The released interval's
    vector clock rides on the grant (LRC's piggybacked consistency data).
    """

    def __init__(self, lid: int, manager: int):
        self.lid = lid
        self.manager = manager
        self.holder: Optional[int] = None
        self.queue: Deque[int] = deque()
        self.last_releaser: Optional[int] = None
        self.last_release_vc: Optional[VectorClock] = None
        #: Grants prepared by a releaser for a blocked waiter, consumed when
        #: the waiter is rescheduled.
        self.grant_box: Dict[int, GrantInfo] = {}
        #: Total acquires, for statistics.
        self.acquires = 0
        #: Acquires that had to queue behind a holder.
        self.contended = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LockState(lid={self.lid}, holder={self.holder}, "
                f"queue={list(self.queue)})")


class EventState:
    """A one-shot event flag: CVM-style generalized synchronization.

    ``set`` is a release (the setter's consistency horizon is recorded);
    ``wait`` is an acquire (blocks until set, then catches up to the
    horizon).  Waiting after the set is immediate but still an acquire —
    the ordering edge is what matters for the detector.
    """

    def __init__(self, eid: int):
        self.eid = eid
        self.is_set = False
        self.setter: Optional[int] = None
        self.set_vc: Optional[VectorClock] = None
        self.set_time: float = 0.0
        self.waiters: List[int] = []


class BarrierState:
    """The (single, reusable) global barrier.

    Arrival order, per-arrival clock times and the master's release payload
    are recorded per *generation* so the barrier can be reused any number of
    times.  By default the master role is pinned to process 0, as in the
    paper (the barrier master runs the race-detection analysis); whichever
    process arrives last executes the master's work on the master's virtual
    clock.  With ``failover`` enabled the master is an elected *coordinator
    role* owned by :mod:`repro.dsm.coordinator`: ``master`` then varies by
    generation (it is reassigned to the lowest live pid when the current
    coordinator dies) and arrival consistency horizons are retained so a
    newly elected coordinator can re-solicit what the dead one knew.
    """

    def __init__(self, nprocs: int, master: int = 0,
                 failover: bool = False):
        self.nprocs = nprocs
        self.master = master
        #: Whether the master is an elected, migratable role (see
        #: ``repro.dsm.coordinator``).  Off: the master is pinned and
        #: cannot be declared dead, exactly the legacy behaviour.
        self.failover = failover
        self.generation = 0
        self.arrived: List[int] = []
        self.arrival_times: Dict[int, float] = {}
        #: Per-arrival consistency horizons (the vector clock each process
        #: closed its epoch with), recorded only under failover: the
        #: election's state re-solicitation replays them to the new
        #: coordinator.  Cleared at every reset.
        self.horizons: Dict[int, VectorClock] = {}
        #: Release-time info stored for each departing process:
        #: (global vc snapshot, receiver-side arrival time of release msg).
        self.release_box: Dict[int, Tuple[VectorClock, float]] = {}
        self.barriers_completed = 0
        #: Processes the master declared dead (crash recovery) during the
        #: current generation; cleared at every reset.  Diagnostic state:
        #: the recovery protocol itself lives in ``repro.dsm.cvm``.
        self.dead_this_generation: Set[int] = set()
        #: Total deaths declared across all generations.
        self.deaths_declared = 0
        #: Optional ``(generation, pid)`` callback fired at every arrival —
        #: the two-phase pipeline's arrival-order capture point
        #: (:class:`~repro.replay.trace.SyncTraceRecorder` appends to the
        #: trace, :class:`~repro.replay.trace.SyncTraceEnforcer` verifies
        #: the replayed order).  ``None`` (default) costs nothing.
        self.order_hook = None

    def arrive(self, pid: int, now: float) -> bool:
        """Record an arrival; True if this was the last process in."""
        if pid in self.arrived:
            raise SynchronizationError(
                f"P{pid} arrived twice at barrier generation "
                f"{self.generation}")
        self.arrived.append(pid)
        self.arrival_times[pid] = now
        if self.order_hook is not None:
            self.order_hook(self.generation, pid)
        return len(self.arrived) == self.nprocs

    def declare_dead(self, pid: int) -> None:
        """Record that the master's virtual-time timeout expired for
        ``pid`` this generation (the node missed the barrier and recovery
        was initiated).  The *current* master can only be declared dead
        under failover — the election re-homes the role first, so by the
        time the old master is declared dead ``self.master`` already names
        its successor."""
        if pid == self.master and not self.failover:
            raise SynchronizationError(
                "the barrier master cannot be declared dead "
                "(enable master failover with --master-failover "
                "/ DsmConfig.master_failover)")
        self.dead_this_generation.add(pid)
        self.deaths_declared += 1

    def shard_owners(self, crashed, limit: int = 0) -> List[int]:
        """Owner pids for a sharded detection pass this generation
        (``--sharded-detection``): the coordinator first (it is the reduce
        root), then every other live arriver in pid order.

        ``crashed`` names pids that crashed during the closing epoch —
        they recovered at arrival but are conservatively not trusted with
        shard ownership (their detection metadata may be the part that
        was lost).  ``limit > 0`` truncates the list
        (``--detection-shards``); a limit of 1 leaves only the
        coordinator, which the caller treats as centralized detection.
        """
        dead = set(crashed) | self.dead_this_generation
        owners = [self.master]
        owners += [p for p in sorted(self.arrival_times)
                   if p != self.master and p not in dead]
        if limit > 0:
            owners = owners[:limit]
        return owners

    def reassign_master(self, pid: int) -> None:
        """Move the master role to ``pid`` (election outcome).  Only legal
        under failover; the pinned-master configuration never migrates."""
        if not self.failover:
            raise SynchronizationError(
                "the barrier master is pinned (enable master failover "
                "with --master-failover / DsmConfig.master_failover)")
        if not 0 <= pid < self.nprocs:
            raise SynchronizationError(
                f"cannot elect P{pid} as barrier master "
                f"(nprocs={self.nprocs})")
        self.master = pid

    def reset_for_next_generation(self) -> None:
        self.generation += 1
        self.barriers_completed += 1
        self.arrived.clear()
        self.arrival_times.clear()
        self.horizons.clear()
        self.dead_this_generation.clear()
