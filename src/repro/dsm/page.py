"""Per-node page copies and the global page directory.

Each simulated process keeps its own copy of each shared page with a local
protection state; pages become ``INVALID`` when a write notice for them
arrives at an acquire, exactly like mprotect-based DSM invalidation.  The
directory assigns each page a static *manager* (round-robin over processes,
CVM's scheme) which tracks the page's current *owner* — the last writer in
the single-writer protocol, the diff archive in the multi-writer protocol.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional


class PageState(enum.Enum):
    #: No valid local copy; any access faults.
    INVALID = "invalid"
    #: Valid local copy; writes fault.
    READ_ONLY = "read_only"
    #: Valid local copy with write permission.
    WRITABLE = "writable"


class PageCopy:
    """One node's view of one page."""

    __slots__ = ("page_id", "size_words", "state", "data", "twin")

    def __init__(self, page_id: int, size_words: int):
        self.page_id = page_id
        self.size_words = size_words
        self.state = PageState.INVALID
        self.data: Optional[List[int]] = None
        #: Multi-writer protocol: pristine copy made at the first write
        #: after the page became writable; diffed against ``data`` at
        #: release time.
        self.twin: Optional[List[int]] = None

    def materialize(self, contents: Optional[List[int]] = None) -> None:
        """Install page contents locally (from a page-fetch reply)."""
        if contents is None:
            self.data = [0] * self.size_words
        else:
            if len(contents) != self.size_words:
                raise ValueError("page contents of wrong length")
            self.data = list(contents)

    def make_twin(self) -> None:
        if self.data is None:
            raise ValueError("cannot twin an absent page")
        self.twin = list(self.data)

    def drop_twin(self) -> None:
        self.twin = None

    @property
    def valid(self) -> bool:
        return self.state is not PageState.INVALID and self.data is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PageCopy(page={self.page_id}, state={self.state.value})"


class PageDirectory:
    """Global page metadata: static managers, current owners.

    In real CVM this state is distributed (each manager process holds the
    entries it manages) and queried by messages; here the data structure is
    global but every query/update is paired with explicit message
    accounting by the protocol, preserving both the communication pattern
    and its cost.
    """

    def __init__(self, num_pages: int, nprocs: int):
        self.num_pages = num_pages
        self.nprocs = nprocs
        #: Current owner (last writer); pages start owned by their manager.
        self._owner: Dict[int, int] = {}

    def manager_of(self, page_id: int) -> int:
        """Static manager assignment: round-robin, CVM's default."""
        self._check(page_id)
        return page_id % self.nprocs

    def owner_of(self, page_id: int) -> int:
        self._check(page_id)
        return self._owner.get(page_id, self.manager_of(page_id))

    def set_owner(self, page_id: int, pid: int) -> None:
        self._check(page_id)
        if not 0 <= pid < self.nprocs:
            raise ValueError(f"bad pid {pid}")
        self._owner[page_id] = pid

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < self.num_pages:
            raise ValueError(f"page {page_id} out of range")
