"""Per-process DSM node state.

A :class:`Node` owns everything one simulated process keeps locally: its
vector clock, the interval currently being built, its page copies, and its
access counters.  Interval lifecycle (open at every acquire/release, close
at the next one) lives here; what *happens* at faults and synchronization is
the protocol's and the CVM facade's business.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dsm.config import DsmConfig
from repro.dsm.interval import Interval
from repro.dsm.page import PageCopy
from repro.dsm.vector_clock import VectorClock
from repro.sim.clock import VirtualClock
from repro.sim.costmodel import CostCategory


class IntervalStore:
    """All closed intervals in the system, keyed by (pid, index).

    In real CVM each process stores records for the intervals it has seen;
    making the store global (with message accounting at every transfer)
    keeps the simulation simple without changing what any process is
    *entitled* to look at — the vector clocks still gate that.
    Epoch-scoped views feed the detector; :meth:`discard_epoch` is the
    garbage collection the paper performs once races have been checked
    (§6.4: "only discards trace information when it has been checked").
    """

    def __init__(self) -> None:
        self._by_pid: Dict[int, Dict[int, Interval]] = {}
        self.total_created = 0
        self.total_nonempty = 0
        #: When True, every interval's vector clock is retained in
        #: :attr:`vc_log` even after the record itself is garbage-collected.
        #: Enabled with access tracing so the baseline (oracle) detectors
        #: can order trace events; the paper's online system never needs
        #: this retention — that is exactly its advantage (§7).
        self.log_vcs = False
        self.vc_log: Dict[tuple, "VectorClock"] = {}

    def log_vc(self, pid: int, index: int, vc) -> None:
        if self.log_vcs:
            self.vc_log[(pid, index)] = vc

    def add(self, interval: Interval) -> None:
        self._by_pid.setdefault(interval.pid, {})[interval.index] = interval
        self.total_created += 1
        if not interval.is_empty:
            self.total_nonempty += 1

    def get(self, pid: int, index: int) -> Optional[Interval]:
        return self._by_pid.get(pid, {}).get(index)

    def by_pid(self) -> Dict[int, Dict[int, Interval]]:
        return self._by_pid

    def epoch_intervals(self, epoch: int) -> List[Interval]:
        """All closed intervals belonging to a barrier epoch, in
        (pid, index) order for determinism."""
        out: List[Interval] = []
        for pid in sorted(self._by_pid):
            for idx in sorted(self._by_pid[pid]):
                rec = self._by_pid[pid][idx]
                if rec.epoch == epoch:
                    out.append(rec)
        return out

    def discard_epoch(self, epoch: int) -> int:
        """Drop records (and their bitmaps) for a fully-checked epoch;
        returns how many were discarded.  Ordering information (the vector
        clocks of *live* nodes) is unaffected."""
        dropped = 0
        for pid in list(self._by_pid):
            table = self._by_pid[pid]
            for idx in [i for i, rec in table.items() if rec.epoch == epoch]:
                del table[idx]
                dropped += 1
        return dropped

    def live_records(self) -> int:
        return sum(len(t) for t in self._by_pid.values())


class Node:
    """One simulated process's DSM state."""

    def __init__(self, pid: int, config: DsmConfig, clock: VirtualClock,
                 store: IntervalStore):
        self.pid = pid
        self.config = config
        self.clock = clock
        self.store = store
        self.vc = VectorClock.zero(config.nprocs)
        self.pages: Dict[int, PageCopy] = {}
        self.epoch = 0
        #: Pages twinned since the last release (multi-writer protocol).
        self.twinned_pages: List[int] = []
        # Access counters (Table 3).
        self.shared_instr_calls = 0
        self.private_instr_calls = 0
        self.intervals_created = 0
        # Crash tolerance (repro.sim.crash / repro.dsm.cvm).  ``crashed``
        # holds the pending CrashRecord between the injected crash and the
        # recovery performed at the node's next barrier; the two times feed
        # the recovery-cost model (re-execution debt is measured from the
        # restore point back to the crash).
        self.crashed = None  # Optional[repro.sim.crash.CrashRecord]
        self.epoch_start_time = 0.0
        self.last_checkpoint_time = 0.0
        # First interval.
        self.vc.tick(pid)
        self.current = Interval(pid, self.vc[pid], self.vc.copy(), self.epoch,
                                config.page_size_words, sync_label="start")
        self.intervals_created += 1
        store.log_vc(pid, self.vc[pid], self.current.vc)

    # ------------------------------------------------------------------ #
    # Pages.
    # ------------------------------------------------------------------ #
    def page_copy(self, page_id: int) -> PageCopy:
        copy = self.pages.get(page_id)
        if copy is None:
            copy = self.pages[page_id] = PageCopy(
                page_id, self.config.page_size_words)
        return copy

    # ------------------------------------------------------------------ #
    # Interval lifecycle.
    # ------------------------------------------------------------------ #
    def close_interval(self) -> Interval:
        """Close the current interval (at a release or acquire), store it,
        and charge the bookkeeping costs.  Returns the closed record."""
        closed = self.current
        closed.close()
        self.store.add(closed)
        cm = self.config.cost_model
        self.clock.advance(cm.interval_bookkeeping, CostCategory.BASE)
        if self.config.detection and not closed.is_empty:
            # Registering the interval's detection structures (read-notice
            # list, bitmap table) is part of the paper's "CVM Mods" cost.
            self.clock.advance(cm.detect_interval_setup, CostCategory.CVM_MODS)
        return closed

    def open_interval(self, sync_label: str) -> Interval:
        """Tick our vector-clock entry and begin a new interval.  Callers
        must have already merged any acquired clock via ``observe``."""
        self.vc.tick(self.pid)
        self.current = Interval(self.pid, self.vc[self.pid], self.vc.copy(),
                                self.epoch, self.config.page_size_words,
                                sync_label=sync_label)
        self.intervals_created += 1
        self.store.log_vc(self.pid, self.vc[self.pid], self.current.vc)
        return self.current

    def intervals_in_current_epoch(self) -> int:
        """Own closed intervals tagged with the current epoch (metric for
        Table 1's "Intervals Per Barrier")."""
        table = self.store.by_pid().get(self.pid, {})
        return sum(1 for rec in table.values() if rec.epoch == self.epoch)
