"""The elected coordinator role: barrier mastery as migratable state.

The paper pins the barrier master — and with it the entire race-detection
analysis — to process 0 (§6.2).  This module makes that coupling explicit
and, when ``master_failover`` is enabled, breakable: a
:class:`CoordinatorRole` owns everything the "master" means operationally
— which pid runs the barrier release, collects the epoch's interval
records, and holds the :class:`~repro.core.detector.RaceDetector` — and
the role can move.

Election is deterministic and rank-based: when the current coordinator is
found crashed at barrier-analysis time (the same virtual-time timeout that
declares any node dead), the surviving processes elect the **lowest live
pid**; if every process crashed this epoch, the lowest pid other than the
dead coordinator wins (it recovers at its own arrival like any crashed
node).  Determinism matters more than realism here: the same crash
schedule must elect the same coordinator on every run, or chaos-sweep
report comparisons would be meaningless.

State migration leans on the same barrier-consistent-cut argument as
checkpointing (PR 3): at every completed detection pass the role journals
the detector's full serialized state (reports, aggregate statistics, and
the cross-epoch deduplication keys) to stable storage, priced per byte
like a checkpoint write but under ``CostCategory.FAILOVER``.  On failover
the new coordinator fetches that journal, restores it into a freshly
constructed detector (``RaceDetector.serialize_state`` /
``restore_state`` — a real canonical-JSON round trip, not a Python object
handoff), and re-solicits the in-flight interval/write-notice metadata of
the closing epoch from the survivors' recorded arrival horizons.  All of
it is charged to ``CostCategory.FAILOVER``, which stays out of
``OVERHEAD_CATEGORIES`` — Tables 1–3 and Figures 3–4 are computed from
overhead categories only, so failover-off artifacts stay byte-identical.

With failover *off* (the default) the role is inert bookkeeping around the
pinned master: no journaling, no extra charges, no behavioural change —
the legacy configuration is byte-identical to builds without this module.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.detector import RaceDetector
from repro.dsm.checkpoint import _canon, _hash_text
from repro.dsm.interval import Interval
from repro.dsm.node import IntervalStore
from repro.sim.clock import VirtualClock
from repro.sim.costmodel import CostCategory, CostModel


def elect_coordinator(old_pid: int, live_pids: Sequence[int],
                      nprocs: int) -> int:
    """Deterministic rank-based election: the lowest live pid wins.

    ``live_pids`` are the processes with no pending crash this epoch (the
    old coordinator is never among them — it just failed).  If *everyone*
    crashed, the lowest pid other than the dead coordinator is elected;
    it recovers at its own barrier arrival exactly like any crashed node.
    """
    candidates = [p for p in live_pids if p != old_pid]
    if not candidates:
        candidates = [p for p in range(nprocs) if p != old_pid]
    if not candidates:
        raise ValueError(
            f"no process can replace coordinator P{old_pid} "
            f"(nprocs={nprocs})")
    return min(candidates)


@dataclass
class FailoverStats:
    """Failover counters for one run (all zero with failover off, and on
    any run whose coordinator never crashes)."""

    #: Elections held (one per coordinator crash observed at a barrier).
    elections_held: int = 0
    #: Serialized detector-state bytes moved to a new coordinator.
    state_bytes_migrated: int = 0
    #: Interval records replayed to a new coordinator from the survivors'
    #: recorded arrival horizons.
    records_resolicited: int = 0
    #: Coordinator-state journal writes (one per completed detection pass
    #: while failover is enabled).
    state_checkpoints: int = 0
    #: Total journaled coordinator-state bytes.
    state_checkpoint_bytes: int = 0
    #: Restores that found the journal torn or corrupt and fell back to
    #: the checkpointed coordinator section (or, lacking checkpoints, the
    #: in-memory state) instead of raising.
    journal_fallbacks: int = 0

    def summary(self) -> Dict[str, int]:
        """Flat summary used in logs and tests."""
        return {
            "elections_held": self.elections_held,
            "state_bytes_migrated": self.state_bytes_migrated,
            "records_resolicited": self.records_resolicited,
            "state_checkpoints": self.state_checkpoints,
            "state_checkpoint_bytes": self.state_checkpoint_bytes,
            "journal_fallbacks": self.journal_fallbacks,
        }


@dataclass
class ShardingStats:
    """Sharded-detection counters for one run (``--sharded-detection``;
    all zero with sharding off).  Tracks the distribution protocol only —
    detection verdicts and statistics are byte-identical to the
    centralized engine's and live in ``DetectorStats`` as usual."""

    #: Barrier epochs whose detection ran sharded to completion.
    epochs_sharded: int = 0
    #: Epochs that ran centralized although sharding was enabled (fewer
    #: than two owners, or no cross-process pair blocks).
    epochs_centralized: int = 0
    #: Non-empty shards handed to owners (coordinator's own included).
    shards_dispatched: int = 0
    #: Partner interval records delivered to shard owners (riding the
    #: scatter tree — counted once per receiving owner).
    records_shipped: int = 0
    #: Scatter-tree messages and bytes (assignments + record deltas).
    scatter_messages: int = 0
    bytes_scattered: int = 0
    #: Tree-reduce messages and bytes (candidate reports inbound).
    reduce_messages: int = 0
    bytes_reduced: int = 0
    #: Shard-local bitmap fetch messages and bytes.
    bitmap_fetch_messages: int = 0
    bitmap_fetch_bytes: int = 0
    #: Epochs that fell back to centralized detection because a shard
    #: owner crashed during the sharded phase.
    fallbacks_owner_crash: int = 0
    #: Epochs that fell back because a sharding exchange exhausted the
    #: reliable channel's retry budget.
    fallbacks_network: int = 0

    def summary(self) -> Dict[str, int]:
        """Flat summary used in logs and tests."""
        return {
            "epochs_sharded": self.epochs_sharded,
            "epochs_centralized": self.epochs_centralized,
            "shards_dispatched": self.shards_dispatched,
            "records_shipped": self.records_shipped,
            "scatter_messages": self.scatter_messages,
            "bytes_scattered": self.bytes_scattered,
            "reduce_messages": self.reduce_messages,
            "bytes_reduced": self.bytes_reduced,
            "bitmap_fetch_messages": self.bitmap_fetch_messages,
            "bitmap_fetch_bytes": self.bitmap_fetch_bytes,
            "fallbacks_owner_crash": self.fallbacks_owner_crash,
            "fallbacks_network": self.fallbacks_network,
        }

    def merge(self, other: "ShardingStats") -> None:
        """Fold a *staged* epoch's counters in.  The sharded phases stage
        their counters in a scratch instance and merge only after
        ``commit_sharded`` succeeds, so an epoch that falls back
        (owner crash, retry exhaustion) contributes nothing — the
        counters describe work that was actually committed, not work that
        was attempted and abandoned."""
        self.epochs_sharded += other.epochs_sharded
        self.epochs_centralized += other.epochs_centralized
        self.shards_dispatched += other.shards_dispatched
        self.records_shipped += other.records_shipped
        self.scatter_messages += other.scatter_messages
        self.bytes_scattered += other.bytes_scattered
        self.reduce_messages += other.reduce_messages
        self.bytes_reduced += other.bytes_reduced
        self.bitmap_fetch_messages += other.bitmap_fetch_messages
        self.bitmap_fetch_bytes += other.bitmap_fetch_bytes
        self.fallbacks_owner_crash += other.fallbacks_owner_crash
        self.fallbacks_network += other.fallbacks_network


class CoordinatorRole:
    """Ownership object for the barrier-master responsibilities.

    The DSM engine routes every "master" decision through this role
    instead of comparing against a hard-coded pid: barrier release runs on
    ``self.pid``'s clock, interval collection and the detection pass go
    through :meth:`collect_epoch` / :meth:`run_detection`, and snapshots
    embed :meth:`snapshot_section`.  The pid is stable for the whole run
    unless failover is enabled *and* the coordinator crashes, in which
    case :mod:`repro.dsm.cvm` drives the election and calls
    :meth:`install_from_journal` on the winner.
    """

    def __init__(self, nprocs: int, failover: bool,
                 detector: Optional[RaceDetector],
                 detector_factory: Callable[[int], Optional[RaceDetector]],
                 initial_pid: int = 0):
        self.nprocs = nprocs
        self.failover = failover
        self.pid = initial_pid
        self.detector = detector
        self._factory = detector_factory
        self.stats = FailoverStats()
        #: Canonical-JSON journal of the role state at the last completed
        #: detection pass — what a successor restores from.  Maintained
        #: only under failover.
        self._journal: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Role state (de)serialization.
    # ------------------------------------------------------------------ #
    def serialize_state(self) -> Dict[str, Any]:
        """JSON-serializable role state: who holds the role and the full
        mutable detector state (``None`` with detection off)."""
        return {
            "pid": self.pid,
            "detector": (self.detector.serialize_state()
                         if self.detector is not None else None),
        }

    def state_json(self) -> str:
        """Canonical encoding of :meth:`serialize_state` (sorted keys, no
        whitespace — same convention as checkpoints, so byte sizes are
        deterministic and priceable)."""
        return _canon(self.serialize_state())

    @staticmethod
    def frame_journal(text: str) -> str:
        """Self-validating journal frame: the canonical state body plus a
        trailing content-hash line (same hash as checkpoint integrity).  A
        torn write — truncation anywhere, including mid-hash — breaks the
        frame detectably, which :meth:`parse_journal` exploits."""
        return text + "\n" + _hash_text(text)

    @staticmethod
    def parse_journal(framed: str) -> Dict[str, Any]:
        """Validate and decode one framed journal; raises ``ValueError``
        on a torn or corrupt frame (missing/mismatched hash, unparseable
        body, wrong shape) so the restore path can fall back instead of
        installing garbage."""
        body, sep, digest = framed.rpartition("\n")
        if not sep or _hash_text(body) != digest:
            raise ValueError("coordinator journal tail torn or corrupt "
                             "(content hash mismatch)")
        try:
            state = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ValueError(f"coordinator journal body unparseable: {exc}")
        if not isinstance(state, dict) or "detector" not in state:
            raise ValueError("coordinator journal body malformed "
                             "(missing role fields)")
        return state

    def journal_state(self, clock: VirtualClock,
                      cost_model: CostModel) -> int:
        """Write the role state to stable storage (failover only), priced
        like a checkpoint write but under ``FAILOVER``; returns the byte
        count.  Called after every completed detection pass so the journal
        is never staler than the last barrier-consistent cut.  The record
        is framed with a trailing content hash so a torn write is
        *detectable* on restore rather than silently corrupting the
        successor's detector state."""
        framed = self.frame_journal(self.state_json())
        nbytes = len(framed.encode("utf-8"))
        self._journal = framed
        clock.advance(cost_model.checkpoint_write_per_byte * nbytes,
                      CostCategory.FAILOVER)
        self.stats.state_checkpoints += 1
        self.stats.state_checkpoint_bytes += nbytes
        return nbytes

    @property
    def journal_json(self) -> Optional[str]:
        """The last journaled role state, framed (``None`` until first
        journaled)."""
        return self._journal

    def install_from_journal(self, new_pid: int,
                             fallback_state: Optional[Dict[str, Any]] = None
                             ) -> int:
        """Re-home the role on ``new_pid``, rebuilding the detector from
        the stable journal (election outcome).

        A *new* detector is constructed for the winner (so bitmap-round
        accounting treats the winner's own bitmaps as local) and the
        journaled state is restored into it through the real
        serialize → canonical JSON → parse → restore path; returns the
        migrated byte count.  Uses the current in-memory state if nothing
        was journaled yet (possible only if failover was enabled mid-run,
        which the config layer does not allow).

        If the journal's frame fails validation — a torn write truncated
        or corrupted its tail — the restore falls back to
        ``fallback_state`` (the checkpointed coordinator section, when the
        caller has one) or, failing that, the current in-memory state,
        and counts the event in ``stats.journal_fallbacks``.  It never
        raises on a bad journal: a coordinator election must not die on
        the very fault it exists to survive."""
        framed = (self._journal if self._journal is not None
                  else self.frame_journal(self.state_json()))
        nbytes = len(framed.encode("utf-8"))
        try:
            state = self.parse_journal(framed)
        except ValueError:
            self.stats.journal_fallbacks += 1
            state = (fallback_state if fallback_state is not None
                     else self.serialize_state())
        successor = self._factory(new_pid)
        if successor is not None and state["detector"] is not None:
            successor.restore_state(state["detector"])
        self.detector = successor
        self.pid = new_pid
        self.stats.elections_held += 1
        self.stats.state_bytes_migrated += nbytes
        return nbytes

    # ------------------------------------------------------------------ #
    # The responsibilities the role owns.
    # ------------------------------------------------------------------ #
    def collect_epoch(self, store: IntervalStore,
                      epoch: int) -> List[Interval]:
        """Interval collection for the closing epoch (paper §4 step 1:
        the records arrived on barrier messages; the coordinator gathers
        the epoch's full set for analysis)."""
        return store.epoch_intervals(epoch)

    def run_detection(self, intervals: List[Interval], epoch: int,
                      clock: VirtualClock) -> List[Any]:
        """One detection pass on the coordinator's clock; no-op with
        detection off."""
        if self.detector is None:
            return []
        return self.detector.run_epoch(intervals, epoch, clock)

    def snapshot_section(self, pid: int) -> Dict[str, Any]:
        """Per-node checkpoint section (failover only): every node records
        who currently holds the role; the holder's snapshot additionally
        carries the full serialized role state, joining the delta chain
        like any other snapshot component."""
        return {
            "pid": self.pid,
            "state": (self.serialize_state() if pid == self.pid else None),
        }
