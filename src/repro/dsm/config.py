"""DSM system configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.net.faults import FaultPlan, plan_from_rates
from repro.net.reliable import (DEFAULT_RETRY_BUDGET, DEFAULT_TIMEOUT_CYCLES)
from repro.net.transport import DEFAULT_MAX_DATAGRAM
from repro.sim.costmodel import CostModel
from repro.sim.crash import (CrashPlan, DEFAULT_CRASH_DETECT_TIMEOUT,
                             DEFAULT_ELECTION_TIMEOUT, plan_from_options)

#: DECstation Alphas used 8 KB pages; with 8-byte words that is 1024 words.
DEFAULT_PAGE_SIZE_WORDS = 1024


@dataclass
class DsmConfig:
    """Everything needed to stand up a CVM instance.

    Attributes:
        nprocs: Number of simulated processes.
        page_size_words: Page size in 8-byte words (must be a multiple
            of 8 so bitmaps pack into bytes).
        segment_words: Capacity of the shared data segment.
        protocol: ``"sw"`` (single-writer, the paper's prototype) or
            ``"mw"`` (multi-writer with twins and diffs, §6.5).
        detection: Master switch for on-the-fly race detection.  Off, the
            system behaves like unmodified CVM (no read notices, no
            bitmaps, no barrier analysis) — the baseline for slowdowns.
        first_races_only: Report only races from the earliest barrier
            epoch that has any (§6.4 extension).
        detector_fast_path: Use the pruned pair search plus the inverted
            page index as the detection execution engine (default).  The
            race verdicts, detector statistics, and virtual-time ledgers
            are identical to the reference engine — the naive algorithm's
            cost is still charged to the master clock analytically — only
            real (Python) wall-clock time differs.  Off = the paper's
            literal O(i²p²) algorithm, kept for equivalence tests.
        access_fast_path: Use the batched access execution engine in
            ``Env`` (default): clock advances fused into one pre-summed
            charge per access, per-configuration bound methods chosen at
            ``Env.__init__``, and ranges recorded natively down to
            ``Bitmap.set_range``.  Virtual-time charges are arithmetically
            identical to the reference engine, so every ledger, statistic
            and artifact is byte-identical — only real (Python) wall-clock
            time differs.  Off = the per-word scalar chain (the paper's
            one-call-per-access instrumentation), kept for equivalence
            tests and as the old side of ``bench_endtoend.py``.
        diff_write_detection: With the multi-writer protocol, derive write
            bitmaps from diffs instead of instrumenting stores (§6.5
            extension; same-value overwrites become invisible).
        inline_instrumentation: Model the promised inlining ATOM version:
            the per-access procedure-call cost drops to zero (§6.5).
        consolidation_interval: If > 0, run a detection/garbage-collection
            pass after this many intervals accumulate on some process with
            no intervening barrier (§6.3).  0 disables.
        policy: Scheduling policy spec (``"round_robin"`` or ``"random"``).
        seed: Seed for the scheduling policy.
        max_datagram: Transport datagram limit in bytes.
        fragmentable_messages: Allow oversize messages to fragment (the
            paper's planned communication-layer fix) instead of raising.
        loss_rate: Per-datagram drop probability of the simulated network.
            Any nonzero fault rate (or an explicit ``fault_plan``) routes
            all traffic through the reliable channel
            (:mod:`repro.net.reliable`); all zero (default), the bare
            transport is used and ledgers are byte-identical to a
            fault-free build.
        duplicate_rate: Per-datagram duplication probability.
        reorder_rate: Per-datagram reordering (late delivery) probability.
        fault_seed: Seed of the deterministic fault schedule
            (``--fault-seed``); independent of the scheduling ``seed``.
        retry_budget: Total transmission attempts per fragment before the
            reliable channel gives up (``--retry-budget``).
        retransmit_timeout: First-retry timeout in cycles; doubles per
            retry, capped by the channel.
        fault_plan: Full per-tag fault plan; overrides the scalar rates
            (which then only serve as CLI-level shorthand).
        crash_rate: Per-event node-crash probability (``--crash-rate``);
            evaluated at shared accesses, message sends and barrier
            arrivals of non-master processes.  0 (default) disables crash
            injection entirely and keeps every artifact byte-identical to
            a crash-free build.
        crash_seed: Seed of the deterministic crash schedule
            (``--crash-seed``); independent of both the scheduling ``seed``
            and the network ``fault_seed``.
        crash_at: Scheduled crashes as ``(pid, barrier_generation)`` pairs
            (``--crash-at PID:GEN``): the node crashes at its arrival at
            that barrier generation regardless of ``crash_rate``.  The
            barrier master (P0) can only be scheduled when
            ``master_failover`` is on; otherwise it runs the detector and
            the recovery protocol and targeting it is a configuration
            error.
        crash_plan: Full crash plan; overrides the scalar options (which
            then only serve as CLI-level shorthand).
        crash_recovery: When True (default), a crashed node is recovered —
            from its latest barrier checkpoint when checkpointing is on,
            or by restart-and-reexecute with *lost* detection metadata
            when it is off.  False = fail-stop: the node simply dies and
            the survivors' next barrier deadlocks (the no-tolerance
            baseline).
        crash_detect_timeout: Extra virtual cycles the barrier master
            waits beyond the latest live arrival before declaring a
            missing node dead and starting recovery.
        master_failover: Make the barrier master an elected, migratable
            coordinator role (``--master-failover``): when the current
            coordinator dies, the surviving nodes elect the lowest live
            pid, migrate the detector's serialized state to it, and
            re-solicit in-flight interval metadata — the run completes and
            reports races instead of rejecting master crashes.  All
            failover charges go to ``CostCategory.FAILOVER``, outside the
            overhead breakdown; off (the default), the pinned-master
            behaviour and every artifact are byte-identical to previous
            builds.
        election_timeout: Extra virtual cycles the surviving nodes wait
            beyond the latest live arrival before electing a replacement
            coordinator (``--election-timeout``; failover only).
        sharded_detection: Distribute each barrier epoch's pair search
            across the live processes (``--sharded-detection``): the
            coordinator partitions the cross-process interval-pair blocks
            over shard owners, each owner fetches the partner records it
            is missing, runs the pruned pair search and the bitmap
            comparison for its blocks on its *own* clock, and the
            candidate reports tree-reduce back to the coordinator, which
            merges and dedups them against the cross-epoch keys — the
            emitted RaceReports are byte-identical to the centralized
            engine's (order, dedup keys, verdicts).  The distribution
            protocol's traffic is priced under
            ``CostCategory.SHARDED_DETECT``, outside the overhead
            breakdown, so sharding-off artifacts stay byte-identical.  A
            shard owner crashing mid-phase (or a sharding exchange
            exhausting the reliable channel's retries) falls back to
            coordinator-local detection for that epoch, soundly.  Off by
            default.
        detection_shards: Cap on the number of shard owners per epoch
            (``--detection-shards``); 0 (default) means every live
            process owns a shard.  1 degenerates to coordinator-local
            detection.  Requires ``sharded_detection``.
        coarse_filter: Two-level detection filter (``--coarse-filter`` /
            ``--no-coarse-filter``; default **on**).  Each interval
            record piggy-backs a coarse per-page access digest — a
            16-word-granule mini-bitmap, plus a Bloom filter of the exact
            word offsets for sparse access sets — on the write/read
            notices it already ships, so whichever engine runs detection
            (the centralized master or the sharded owners) can prove
            most page-overlapping combinations race-free from data in
            hand, issuing the bitmap-fetch round only for granule hits.
            The pre-check is conservative (digest-disjoint implies the
            word bitmaps cannot intersect), so **race reports are
            byte-identical with the filter on or off** — only the fetch
            traffic, the BITMAPS/SHARDED_DETECT comparison charges, and
            wall-clock shrink.  Digest carriage and granule-check cycles
            are priced under ``CostCategory.COARSE_FILTER``, outside the
            overhead breakdown.  Inert without ``detection``; the paper
            harness pins it off so Tables 1–3 and Figures 3–4 stay
            byte-identical to the unfiltered pipeline.
        checkpoint: Take barrier-consistent in-memory checkpoints of every
            node (enables recovery with no lost metadata).
        checkpoint_dir: Directory to persist checkpoints to
            (``--checkpoint-dir``); implies ``checkpoint``.
        checkpoint_delta: Delta-encode each checkpoint against the node's
            previous generation (``--checkpoint-delta``; implies
            ``checkpoint``): only pages/intervals whose content hash
            changed are written, shrinking checkpoint bytes and their
            priced virtual-time write cost.  Recovery reconstructs the
            full snapshot from the delta chain and is byte-identical to
            full-snapshot recovery.  Default off: existing runs untouched.
        resume_from: Checkpoint directory to resume from
            (``--resume-from``): the run re-executes deterministically and,
            at the barrier generation the directory covers, validates and
            reinstalls every node's state from the restored snapshots —
            reproducing the uninterrupted run's report byte-identically.
        mode: Execution mode of the two-phase pipeline.  ``"online"``
            (default): the monolithic run, detector inline.  ``"record"``:
            log only synchronization order (lock grant order, barrier
            arrival order, sync-message delivery order) to ``trace_file``
            with detection forced off — no bitmaps, read notices or
            detection traffic; the logging cost is priced under
            ``CostCategory.RECORD``, outside the overhead breakdown.
            ``"detect-offline"``: re-execute steered by ``trace_file``
            with the full detector on; reports are byte-identical to an
            online run of the same seed/config.  Record and
            detect-offline refuse to compose with crash injection and
            ``--resume-from`` (a crash or a resume would change which
            synchronization events exist, silently mis-recording), and
            raise :class:`~repro.errors.ConfigError` naming both flags.
            Lossy networks compose: the record run logs *post-retransmit*
            delivery order, so the replay is steered by what was actually
            delivered.
        trace_file: Path of the hash-framed synchronization-order trace
            (``--trace-file``): written by ``--mode record``, read by
            ``--mode detect-offline``.  Required by both, rejected with
            ``"online"``.
        deadline_seconds: Wall-clock budget for the whole run
            (``--deadline``).  When the dispatcher loop observes the
            budget exceeded it raises
            :class:`~repro.errors.DeadlineExceeded` (CLI exit code 4)
            instead of hanging forever — the guard the fleet's per-job
            deadline builds on.  Purely wall-clock: a run that finishes
            in time is byte-identical to one with no deadline.  ``None``
            (default) disables the guard.
        cost_model: Cycle costs for virtual time.
        track_access_trace: Record every shared access for the baseline
            (oracle) detectors; expensive, test-scale inputs only.
    """

    nprocs: int = 8
    page_size_words: int = DEFAULT_PAGE_SIZE_WORDS
    segment_words: int = 1 << 20
    protocol: str = "sw"
    detection: bool = True
    first_races_only: bool = False
    detector_fast_path: bool = True
    access_fast_path: bool = True
    diff_write_detection: bool = False
    inline_instrumentation: bool = False
    consolidation_interval: int = 0
    policy: str = "round_robin"
    seed: int = 0
    max_datagram: int = DEFAULT_MAX_DATAGRAM
    fragmentable_messages: bool = True
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    fault_seed: int = 0
    retry_budget: int = DEFAULT_RETRY_BUDGET
    retransmit_timeout: float = DEFAULT_TIMEOUT_CYCLES
    fault_plan: Optional[FaultPlan] = None
    crash_rate: float = 0.0
    crash_seed: int = 0
    crash_at: Tuple[Tuple[int, int], ...] = ()
    crash_plan: Optional[CrashPlan] = None
    crash_recovery: bool = True
    crash_detect_timeout: float = DEFAULT_CRASH_DETECT_TIMEOUT
    master_failover: bool = False
    election_timeout: float = DEFAULT_ELECTION_TIMEOUT
    sharded_detection: bool = False
    detection_shards: int = 0
    coarse_filter: bool = True
    checkpoint: bool = False
    checkpoint_dir: Optional[str] = None
    checkpoint_delta: bool = False
    resume_from: Optional[str] = None
    mode: str = "online"
    trace_file: Optional[str] = None
    deadline_seconds: Optional[float] = None
    cost_model: CostModel = field(default_factory=CostModel)
    track_access_trace: bool = False
    #: Retain every transport message for inspection (tests/debugging).
    trace_messages: bool = False

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.page_size_words % 8 != 0 or self.page_size_words <= 0:
            raise ValueError("page_size_words must be a positive multiple of 8")
        if self.segment_words % self.page_size_words != 0:
            raise ValueError("segment_words must be a multiple of the page size")
        if self.protocol not in ("sw", "mw"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.diff_write_detection and self.protocol != "mw":
            raise ValueError("diff_write_detection requires the multi-writer protocol")
        for name in ("loss_rate", "duplicate_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1): {rate}")
        if self.retry_budget < 1:
            raise ValueError("retry_budget must be at least 1 attempt")
        if self.retransmit_timeout <= 0:
            raise ValueError("retransmit_timeout must be positive")
        if not 0.0 <= self.crash_rate < 1.0:
            raise ValueError(f"crash_rate must be in [0, 1): {self.crash_rate}")
        if self.crash_detect_timeout <= 0:
            raise ValueError("crash_detect_timeout must be positive")
        if self.election_timeout <= 0:
            raise ValueError("election_timeout must be positive")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds (--deadline) must be positive: "
                f"{self.deadline_seconds}")
        if self.detection_shards < 0:
            raise ValueError(
                f"detection_shards must be >= 0: {self.detection_shards}")
        if self.detection_shards > 0 and not self.sharded_detection:
            raise ConfigError(
                "--detection-shards requires sharded detection "
                "(--sharded-detection / DsmConfig.sharded_detection); "
                "enable it or drop the shard cap")
        self.crash_at = tuple(sorted(set(
            (int(pid), int(gen)) for pid, gen in self.crash_at)))
        for pid, gen in self.crash_at:
            if not 0 <= pid < self.nprocs:
                raise ValueError(
                    f"crash_at pid {pid} out of range for nprocs={self.nprocs}")
            if pid == 0 and not self.master_failover:
                raise ConfigError(
                    "--crash-at cannot target P0: the barrier master runs "
                    "the detector and cannot crash unless master failover "
                    "is enabled (--master-failover)")
            if pid == 0 and self.nprocs < 2:
                raise ValueError(
                    "crash_at cannot target P0 with nprocs=1: no surviving "
                    "process could be elected coordinator")
            if gen < 0:
                raise ValueError(f"crash_at generation must be >= 0: {gen}")
        if self.mode not in ("online", "record", "detect-offline"):
            raise ConfigError(
                f"unknown mode {self.mode!r} (--mode): expected 'online', "
                "'record' or 'detect-offline'")
        if self.mode in ("record", "detect-offline"):
            if self.trace_file is None:
                raise ConfigError(
                    f"--mode {self.mode} requires a trace path "
                    "(--trace-file)")
            if self.crashes_enabled:
                raise ConfigError(
                    f"--mode {self.mode} cannot compose with crash "
                    "injection (--crash-rate/--crash-at): a crash changes "
                    "which synchronization events exist, so the trace "
                    "would silently mis-record the execution; drop one of "
                    "the two flags")
            if self.resume_from is not None:
                raise ConfigError(
                    f"--mode {self.mode} cannot compose with --resume-from: "
                    "a resumed run skips the synchronization events the "
                    "checkpoints cover, so the trace and the execution "
                    "would disagree; drop one of the two flags")
            if self.mode == "record":
                # A record run never detects: that is the whole point of
                # the phase split.  Force it off rather than making every
                # caller remember to.
                self.detection = False
        elif self.trace_file is not None:
            raise ConfigError(
                "--trace-file only makes sense with --mode record or "
                "--mode detect-offline (current mode: 'online')")

    @property
    def num_pages(self) -> int:
        return self.segment_words // self.page_size_words

    def effective_fault_plan(self) -> Optional[FaultPlan]:
        """The fault plan in force: an explicit ``fault_plan`` wins, else
        a uniform plan from the scalar rates, else ``None`` (no faults)."""
        if self.fault_plan is not None:
            return self.fault_plan if self.fault_plan.enabled else None
        return plan_from_rates(self.loss_rate, self.duplicate_rate,
                               self.reorder_rate, self.fault_seed)

    @property
    def faults_enabled(self) -> bool:
        """True when any traffic can experience injected faults (and the
        reliable channel is therefore in the send path)."""
        return self.effective_fault_plan() is not None

    def effective_crash_plan(self) -> Optional[CrashPlan]:
        """The crash plan in force: an explicit ``crash_plan`` wins, else
        a plan from the scalar options, else ``None`` (no crashes)."""
        if self.crash_plan is not None:
            return self.crash_plan if self.crash_plan.enabled else None
        return plan_from_options(self.crash_rate, self.crash_seed,
                                 self.crash_at)

    @property
    def crashes_enabled(self) -> bool:
        """True when any node can crash (and the recovery machinery is
        therefore armed)."""
        return self.effective_crash_plan() is not None

    @property
    def checkpointing_enabled(self) -> bool:
        """True when barrier checkpoints are taken (explicitly requested
        or implied by a checkpoint directory, delta encoding, or a resume:
        a resumed run re-takes checkpoints so its virtual-time write
        charges line up with the original checkpointed run's)."""
        return (self.checkpoint or self.checkpoint_dir is not None
                or self.checkpoint_delta or self.resume_from is not None)
