"""Barrier-consistent node checkpoints.

Barriers are natural consistent cuts in lazy release consistency: at a
barrier departure every write notice of the closed epoch has been applied,
the checked epoch's trace information has been discarded, and the departing
node's freshly-opened interval is still empty.  A snapshot taken there
captures one node's complete DSM state — vector clock, page copies (with
protection states and twins), access counters, and the node's live interval
records including their word bitmaps — with nothing in flight.

Snapshots serialize to a canonical JSON form (sorted keys, no whitespace),
so byte size is deterministic and doubles as the recovery-cost input.  With
``--checkpoint-dir`` the :class:`CheckpointManager` also persists one file
per (pid, barrier generation), which enables *cross-run* restoration of a
long simulation's per-node state (``CheckpointManager.load_dir``) in
addition to the in-run crash recovery driven by :mod:`repro.dsm.cvm`.

The round-trip contract (asserted property-style in
``tests/dsm/test_checkpoint.py``): ``snapshot → serialize → restore →
snapshot`` is idempotent for every registered application at any barrier
generation.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.core.bitmap import Bitmap
from repro.dsm.interval import Interval
from repro.dsm.page import PageCopy, PageState
from repro.dsm.vector_clock import VectorClock
from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (node ← checkpoint)
    from repro.dsm.node import IntervalStore, Node

#: Bump when the snapshot schema changes incompatibly.
FORMAT_VERSION = 1

_FILE_RE = re.compile(r"ckpt_p(\d+)_g(\d+)\.json$")


# ---------------------------------------------------------------------- #
# Interval (de)serialization.
# ---------------------------------------------------------------------- #
def _bitmaps_to_dict(bitmaps: Dict[int, Bitmap]) -> Dict[str, str]:
    return {str(page): bm.to_bytes().hex()
            for page, bm in sorted(bitmaps.items())}


def _bitmaps_from_dict(encoded: Dict[str, str]) -> Dict[int, Bitmap]:
    return {int(page): Bitmap.from_bytes(bytes.fromhex(hexed))
            for page, hexed in encoded.items()}


def interval_to_dict(rec: Interval) -> Dict[str, Any]:
    """Full serializable form of one interval record (bitmaps included —
    the whole point of checkpointing is that detection metadata survives)."""
    return {
        "pid": rec.pid,
        "index": rec.index,
        "epoch": rec.epoch,
        "vc": list(rec.vc.entries),
        "page_size_words": rec.page_size_words,
        "sync_label": rec.sync_label,
        "closed": rec.closed,
        "lost": rec.lost,
        "write_pages": sorted(rec.write_pages),
        "read_pages": sorted(rec.read_pages),
        "write_bitmaps": _bitmaps_to_dict(rec.write_bitmaps),
        "read_bitmaps": _bitmaps_to_dict(rec.read_bitmaps),
    }


def interval_from_dict(data: Dict[str, Any]) -> Interval:
    rec = Interval(data["pid"], data["index"], VectorClock(data["vc"]),
                   data["epoch"], data["page_size_words"],
                   sync_label=data["sync_label"])
    rec.write_pages = set(data["write_pages"])
    rec.read_pages = set(data["read_pages"])
    rec.write_bitmaps = _bitmaps_from_dict(data["write_bitmaps"])
    rec.read_bitmaps = _bitmaps_from_dict(data["read_bitmaps"])
    rec.closed = data["closed"]
    rec.lost = data["lost"]
    return rec


# ---------------------------------------------------------------------- #
# Node snapshots.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class NodeSnapshot:
    """One node's barrier-consistent state, as a plain serializable dict.

    Two snapshots are equal iff their canonical JSON forms are equal —
    the round-trip tests lean on this.
    """

    data: Dict[str, Any]

    @property
    def pid(self) -> int:
        return self.data["pid"]

    @property
    def generation(self) -> int:
        """Number of barriers the node had completed when snapped (0 = the
        initial pre-application checkpoint)."""
        return self.data["generation"]

    @property
    def epoch(self) -> int:
        return self.data["epoch"]

    @property
    def clock_now(self) -> float:
        """The node's virtual clock at snapshot time (recorded for
        cross-run resume; in-run recovery charges restore time explicitly
        and never rewinds clocks)."""
        return self.data["clock_now"]

    def to_json(self) -> str:
        return json.dumps(self.data, sort_keys=True, separators=(",", ":"))

    @property
    def nbytes(self) -> int:
        """Serialized size — the byte count recovery and checkpoint-write
        costs are charged on."""
        return len(self.to_json().encode("utf-8"))

    @classmethod
    def from_json(cls, text: str) -> "NodeSnapshot":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"unparseable checkpoint: {exc}") from exc
        if data.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format version {data.get('version')!r} "
                f"not supported (expected {FORMAT_VERSION})")
        return cls(data)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, NodeSnapshot)
                and self.to_json() == other.to_json())


def snapshot_node(node: "Node", store: "IntervalStore",
                  generation: int) -> NodeSnapshot:
    """Capture one node's complete DSM state at a barrier cut."""
    pages: Dict[str, Any] = {}
    for page_id, copy in sorted(node.pages.items()):
        pages[str(page_id)] = {
            "state": copy.state.value,
            "data": copy.data,
            "twin": copy.twin,
        }
    records = store.by_pid().get(node.pid, {})
    data = {
        "version": FORMAT_VERSION,
        "pid": node.pid,
        "generation": generation,
        "epoch": node.epoch,
        "clock_now": node.clock.now,
        "vc": list(node.vc.entries),
        "intervals_created": node.intervals_created,
        "shared_instr_calls": node.shared_instr_calls,
        "private_instr_calls": node.private_instr_calls,
        "twinned_pages": list(node.twinned_pages),
        "pages": pages,
        "current": interval_to_dict(node.current),
        "store_records": [interval_to_dict(records[idx])
                          for idx in sorted(records)],
    }
    return NodeSnapshot(data)


def restore_node(snap: NodeSnapshot, node: "Node",
                 store: "IntervalStore") -> None:
    """Install a snapshot's state into ``node`` (and its slice of the
    interval store), overwriting whatever was there.

    The node's virtual *clock* is deliberately untouched: recovery time is
    an accounting decision of the caller (in-run recovery charges restart +
    restore + re-execution under ``CostCategory.RECOVERY``; clocks never
    rewind).
    """
    if snap.pid != node.pid:
        raise CheckpointError(
            f"checkpoint of P{snap.pid} cannot restore node P{node.pid}")
    data = snap.data
    node.vc = VectorClock(data["vc"])
    node.epoch = data["epoch"]
    node.intervals_created = data["intervals_created"]
    node.shared_instr_calls = data["shared_instr_calls"]
    node.private_instr_calls = data["private_instr_calls"]
    node.twinned_pages = list(data["twinned_pages"])
    node.pages = {}
    for page_key, page_data in data["pages"].items():
        copy = PageCopy(int(page_key), node.config.page_size_words)
        copy.state = PageState(page_data["state"])
        copy.data = (None if page_data["data"] is None
                     else list(page_data["data"]))
        copy.twin = (None if page_data["twin"] is None
                     else list(page_data["twin"]))
        node.pages[int(page_key)] = copy
    node.current = interval_from_dict(data["current"])
    restored = [interval_from_dict(d) for d in data["store_records"]]
    store.by_pid()[node.pid] = {rec.index: rec for rec in restored}


# ---------------------------------------------------------------------- #
# The manager: latest-per-pid snapshots, optional disk persistence.
# ---------------------------------------------------------------------- #
class CheckpointManager:
    """Holds the latest barrier checkpoint of every node.

    With a ``directory``, every checkpoint is also serialized to
    ``ckpt_p<pid>_g<generation>.json`` there — one file per (node, barrier
    generation) — so a later process can rehydrate the run's per-node state
    with :meth:`load_dir` (cross-run resume of long simulations).
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory
        if directory is not None:
            try:
                os.makedirs(directory, exist_ok=True)
            except OSError as exc:
                raise CheckpointError(
                    f"cannot create checkpoint directory {directory!r}: "
                    f"{exc}") from exc
        self._latest: Dict[int, NodeSnapshot] = {}

    def take(self, node: "Node", store: "IntervalStore",
             generation: int) -> NodeSnapshot:
        """Snapshot ``node`` at barrier ``generation``; retain it as the
        node's latest checkpoint and persist it when a directory is set."""
        snap = snapshot_node(node, store, generation)
        self._latest[node.pid] = snap
        if self.directory is not None:
            path = os.path.join(
                self.directory, f"ckpt_p{node.pid}_g{generation}.json")
            try:
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(snap.to_json())
            except OSError as exc:
                raise CheckpointError(
                    f"cannot write checkpoint {path!r}: {exc}") from exc
        return snap

    def latest(self, pid: int) -> Optional[NodeSnapshot]:
        return self._latest.get(pid)

    def restore_latest(self, node: "Node", store: "IntervalStore") -> NodeSnapshot:
        """Restore ``node`` from its latest checkpoint; raises
        :class:`CheckpointError` if none was ever taken."""
        snap = self.latest(node.pid)
        if snap is None:
            raise CheckpointError(f"no checkpoint exists for P{node.pid}")
        restore_node(snap, node, store)
        return snap

    @staticmethod
    def load_snapshot(path: str) -> NodeSnapshot:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return NodeSnapshot.from_json(fh.read())
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {path!r}: {exc}") from exc

    @classmethod
    def load_dir(cls, directory: str) -> "CheckpointManager":
        """Rehydrate a manager from a checkpoint directory, keeping the
        highest-generation snapshot of every pid (the state a resumed run
        would restart each node from)."""
        manager = cls(directory=None)
        try:
            names = sorted(os.listdir(directory))
        except OSError as exc:
            raise CheckpointError(
                f"cannot list checkpoint directory {directory!r}: "
                f"{exc}") from exc
        best: Dict[int, int] = {}
        chosen: Dict[int, str] = {}
        for name in names:
            m = _FILE_RE.match(name)
            if not m:
                continue
            pid, gen = int(m.group(1)), int(m.group(2))
            if gen >= best.get(pid, -1):
                best[pid] = gen
                chosen[pid] = name
        for pid, name in chosen.items():
            manager._latest[pid] = cls.load_snapshot(
                os.path.join(directory, name))
        return manager

    def snapshots(self) -> List[NodeSnapshot]:
        """Latest snapshots, in pid order."""
        return [self._latest[pid] for pid in sorted(self._latest)]
