"""Barrier-consistent node checkpoints.

Barriers are natural consistent cuts in lazy release consistency: at a
barrier departure every write notice of the closed epoch has been applied,
the checked epoch's trace information has been discarded, and the departing
node's freshly-opened interval is still empty.  A snapshot taken there
captures one node's complete DSM state — vector clock, page copies (with
protection states and twins), access counters, and the node's live interval
records including their word bitmaps — with nothing in flight.

Snapshots serialize to a canonical JSON form (sorted keys, no whitespace),
so byte size is deterministic and doubles as the recovery-cost input.  The
canonical encoding is memoized per snapshot: sizing, persisting and
hashing a checkpoint serialize it once, not once per consumer.  With
``--checkpoint-dir`` the :class:`CheckpointManager` also persists one file
per (pid, barrier generation), which enables *cross-run* restoration of a
long simulation's per-node state (``CheckpointManager.load_dir``) in
addition to the in-run crash recovery driven by :mod:`repro.dsm.cvm`.

With ``checkpoint_delta`` the manager writes *delta* checkpoints: each
generation is encoded against the node's previous snapshot, keyed by
content hash — only pages and interval records whose canonical-JSON hash
changed are included (plus scalar fields that moved and explicit deletion
lists).  Generation 0 is always a full snapshot.  ``load_dir`` replays a
delta chain back into full snapshots, validating base-generation
continuity and the base content hash at every link, so recovery from a
delta chain is byte-identical to full-snapshot recovery.

The round-trip contracts (asserted property-style in
``tests/dsm/test_checkpoint.py`` and ``test_checkpoint_delta.py``):
``snapshot → serialize → restore → snapshot`` is idempotent for every
registered application at any barrier generation, and
``apply_delta(prev, encode_delta(prev, snap))`` reproduces ``snap``'s
canonical bytes exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union, TYPE_CHECKING

from repro.core.bitmap import Bitmap
from repro.dsm.interval import Interval
from repro.dsm.page import PageCopy, PageState
from repro.dsm.vector_clock import VectorClock
from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (node ← checkpoint)
    from repro.dsm.node import IntervalStore, Node

#: Bump when the snapshot schema changes incompatibly.
FORMAT_VERSION = 1

_FILE_RE = re.compile(r"ckpt_p(\d+)_g(\d+)\.json$")


def _canon(obj: Any) -> str:
    """Canonical JSON text (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _hash_text(text: str) -> str:
    return hashlib.blake2b(text.encode("utf-8"), digest_size=8).hexdigest()


def _content_hash(obj: Any) -> str:
    """Content hash of an object's canonical JSON form — the key delta
    encoding compares pages/intervals by."""
    return _hash_text(_canon(obj))


# ---------------------------------------------------------------------- #
# Interval (de)serialization.
# ---------------------------------------------------------------------- #
def _bitmaps_to_dict(bitmaps: Dict[int, Bitmap]) -> Dict[str, str]:
    return {str(page): bm.to_bytes().hex()
            for page, bm in sorted(bitmaps.items())}


def _bitmaps_from_dict(encoded: Dict[str, str]) -> Dict[int, Bitmap]:
    return {int(page): Bitmap.from_bytes(bytes.fromhex(hexed))
            for page, hexed in encoded.items()}


def interval_to_dict(rec: Interval) -> Dict[str, Any]:
    """Full serializable form of one interval record (bitmaps included —
    the whole point of checkpointing is that detection metadata survives)."""
    return {
        "pid": rec.pid,
        "index": rec.index,
        "epoch": rec.epoch,
        "vc": list(rec.vc.entries),
        "page_size_words": rec.page_size_words,
        "sync_label": rec.sync_label,
        "closed": rec.closed,
        "lost": rec.lost,
        "write_pages": sorted(rec.write_pages),
        "read_pages": sorted(rec.read_pages),
        "write_bitmaps": _bitmaps_to_dict(rec.write_bitmaps),
        "read_bitmaps": _bitmaps_to_dict(rec.read_bitmaps),
    }


def interval_from_dict(data: Dict[str, Any]) -> Interval:
    rec = Interval(data["pid"], data["index"], VectorClock(data["vc"]),
                   data["epoch"], data["page_size_words"],
                   sync_label=data["sync_label"])
    rec.write_pages = set(data["write_pages"])
    rec.read_pages = set(data["read_pages"])
    rec.write_bitmaps = _bitmaps_from_dict(data["write_bitmaps"])
    rec.read_bitmaps = _bitmaps_from_dict(data["read_bitmaps"])
    rec.closed = data["closed"]
    rec.lost = data["lost"]
    return rec


# ---------------------------------------------------------------------- #
# Node snapshots.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class NodeSnapshot:
    """One node's barrier-consistent state, as a plain serializable dict.

    Two snapshots are equal iff their canonical JSON forms are equal —
    the round-trip tests lean on this.
    """

    data: Dict[str, Any]

    #: Memoized canonical encoding; filled in lazily via
    #: ``object.__setattr__`` (the dataclass is frozen).  ``data`` must not
    #: be mutated after the first ``to_json`` call — snapshots are
    #: write-once by construction.
    _json: Optional[str] = field(default=None, repr=False, compare=False)

    is_delta = False

    @property
    def pid(self) -> int:
        return self.data["pid"]

    @property
    def generation(self) -> int:
        """Number of barriers the node had completed when snapped (0 = the
        initial pre-application checkpoint)."""
        return self.data["generation"]

    @property
    def epoch(self) -> int:
        return self.data["epoch"]

    @property
    def clock_now(self) -> float:
        """The node's virtual clock at snapshot time (recorded for
        cross-run resume; in-run recovery charges restore time explicitly
        and never rewinds clocks)."""
        return self.data["clock_now"]

    def to_json(self) -> str:
        """Canonical encoding, serialized once and memoized: the size
        charge, the stats, the file write and the delta base hash all
        consult it without re-encoding."""
        cached = self._json
        if cached is None:
            cached = _canon(self.data)
            object.__setattr__(self, "_json", cached)
        return cached

    @property
    def nbytes(self) -> int:
        """Serialized size — the byte count recovery and checkpoint-write
        costs are charged on."""
        return len(self.to_json().encode("utf-8"))

    @classmethod
    def from_json(cls, text: str) -> "NodeSnapshot":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"unparseable checkpoint: {exc}") from exc
        if data.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format version {data.get('version')!r} "
                f"not supported (expected {FORMAT_VERSION})")
        if data.get("delta"):
            raise CheckpointError(
                "delta checkpoint cannot be loaded standalone — replay its "
                "chain with CheckpointManager.load_dir")
        return cls(data)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, NodeSnapshot)
                and self.to_json() == other.to_json())


@dataclass(frozen=True)
class DeltaSnapshot:
    """A checkpoint encoded against the node's previous generation.

    Holds only the components whose content hash changed (plus deletions
    and moved scalar fields); ``nbytes`` is therefore the *bytes written
    this generation* — exactly what the virtual-time write cost and the
    checkpoint statistics should price.  Restoration always goes through
    a reconstructed full :class:`NodeSnapshot` (see :func:`apply_delta`),
    so recovery cost and behavior are unchanged.
    """

    data: Dict[str, Any]

    _json: Optional[str] = field(default=None, repr=False, compare=False)

    is_delta = True

    @property
    def pid(self) -> int:
        return self.data["pid"]

    @property
    def generation(self) -> int:
        return self.data["generation"]

    @property
    def base_generation(self) -> int:
        """Generation of the snapshot this delta was encoded against."""
        return self.data["base_generation"]

    def to_json(self) -> str:
        cached = self._json
        if cached is None:
            cached = _canon(self.data)
            object.__setattr__(self, "_json", cached)
        return cached

    @property
    def nbytes(self) -> int:
        return len(self.to_json().encode("utf-8"))


#: What ``CheckpointManager.take`` returns: the object actually written.
WrittenCheckpoint = Union[NodeSnapshot, DeltaSnapshot]

#: Top-level snapshot fields a delta may carry forward wholesale (the
#: dict-valued components ``pages``/``store_records`` are diffed by
#: content hash instead).
_DELTA_SCALAR_FIELDS = ("epoch", "clock_now", "vc", "intervals_created",
                        "shared_instr_calls", "private_instr_calls",
                        "twinned_pages", "current")


def encode_delta(prev: NodeSnapshot, snap: NodeSnapshot) -> DeltaSnapshot:
    """Encode ``snap`` as a delta against ``prev`` (same pid, the node's
    previous checkpoint generation).

    Pages and interval records are keyed by content hash: an entry whose
    canonical-JSON hash is unchanged is omitted entirely; changed or new
    entries are carried in full; entries that disappeared go on explicit
    deletion lists.  The delta also pins ``base_generation`` and the
    base's full-snapshot hash so a broken or reordered chain is detected
    at replay time, not silently mis-applied.
    """
    if prev.pid != snap.pid:
        raise CheckpointError(
            f"cannot delta-encode P{snap.pid} against P{prev.pid}")
    pd, nd = prev.data, snap.data
    set_fields: Dict[str, Any] = {}
    for key in _DELTA_SCALAR_FIELDS:
        if nd[key] != pd[key]:
            set_fields[key] = nd[key]
    # The coordinator section (master failover only) rides the delta chain
    # like a scalar field.  The key is present in either every snapshot of
    # a run or none (the failover flag is fixed at config time), so
    # presence mismatches cannot occur within one chain.
    if "coordinator" in nd and nd["coordinator"] != pd.get("coordinator"):
        set_fields["coordinator"] = nd["coordinator"]
    prev_pages, new_pages = pd["pages"], nd["pages"]
    prev_hashes = {k: _content_hash(v) for k, v in prev_pages.items()}
    pages_set = {k: v for k, v in new_pages.items()
                 if prev_hashes.get(k) != _content_hash(v)}
    pages_del = sorted((k for k in prev_pages if k not in new_pages),
                       key=int)
    prev_recs = {str(r["index"]): r for r in pd["store_records"]}
    new_recs = {str(r["index"]): r for r in nd["store_records"]}
    rec_hashes = {k: _content_hash(v) for k, v in prev_recs.items()}
    recs_set = {k: v for k, v in new_recs.items()
                if rec_hashes.get(k) != _content_hash(v)}
    recs_del = sorted((k for k in prev_recs if k not in new_recs), key=int)
    data = {
        "version": FORMAT_VERSION,
        "delta": True,
        "pid": snap.pid,
        "generation": snap.generation,
        "base_generation": prev.generation,
        "base_hash": _hash_text(prev.to_json()),
        "set": set_fields,
        "pages": {"set": pages_set, "del": pages_del},
        "records": {"set": recs_set, "del": recs_del},
    }
    return DeltaSnapshot(data)


def apply_delta(prev: NodeSnapshot, delta: DeltaSnapshot) -> NodeSnapshot:
    """Reconstruct the full snapshot a delta encodes, given its base.

    Validates pid, base-generation continuity and the base content hash;
    the reconstruction is byte-identical to the full snapshot the delta
    was encoded from (asserted by the delta round-trip tests)."""
    d = delta.data
    if d["pid"] != prev.pid:
        raise CheckpointError(
            f"delta of P{d['pid']} cannot apply to P{prev.pid}")
    if d["base_generation"] != prev.generation:
        raise CheckpointError(
            f"delta chain gap for P{prev.pid}: delta generation "
            f"{d['generation']} is based on generation "
            f"{d['base_generation']}, but the reconstructed base is at "
            f"generation {prev.generation}")
    if d["base_hash"] != _hash_text(prev.to_json()):
        raise CheckpointError(
            f"delta base mismatch for P{prev.pid} at generation "
            f"{d['generation']}: the base snapshot's content hash does "
            "not match the one the delta was encoded against")
    data = json.loads(prev.to_json())  # deep copy via the memoized form
    data["generation"] = d["generation"]
    for key, value in d["set"].items():
        data[key] = value
    pages = data["pages"]
    for key in d["pages"]["del"]:
        pages.pop(key, None)
    pages.update(d["pages"]["set"])
    records = {str(r["index"]): r for r in data["store_records"]}
    for key in d["records"]["del"]:
        records.pop(key, None)
    records.update(d["records"]["set"])
    data["store_records"] = [records[k] for k in sorted(records, key=int)]
    return NodeSnapshot(data)


def load_checkpoint(path: str) -> WrittenCheckpoint:
    """Load one checkpoint file: a full :class:`NodeSnapshot` or a
    :class:`DeltaSnapshot`, depending on the file's ``delta`` marker."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path!r}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"unparseable checkpoint: {exc}") from exc
    if data.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format version {data.get('version')!r} "
            f"not supported (expected {FORMAT_VERSION})")
    return DeltaSnapshot(data) if data.get("delta") else NodeSnapshot(data)


def snapshot_node(node: "Node", store: "IntervalStore",
                  generation: int,
                  coordinator: Optional[Dict[str, Any]] = None
                  ) -> NodeSnapshot:
    """Capture one node's complete DSM state at a barrier cut.

    ``coordinator`` is the per-node coordinator-role section
    (:meth:`repro.dsm.coordinator.CoordinatorRole.snapshot_section`),
    included only under master failover — without it the snapshot bytes
    are identical to pre-failover builds, keeping old checkpoint
    directories resumable and failover-off artifacts byte-identical."""
    pages: Dict[str, Any] = {}
    for page_id, copy in sorted(node.pages.items()):
        # Copy the word lists: the snapshot must freeze barrier-time page
        # contents, not alias the live lists the node keeps mutating
        # (delta encoding hashes the retained previous snapshot later).
        pages[str(page_id)] = {
            "state": copy.state.value,
            "data": None if copy.data is None else list(copy.data),
            "twin": None if copy.twin is None else list(copy.twin),
        }
    records = store.by_pid().get(node.pid, {})
    data = {
        "version": FORMAT_VERSION,
        "pid": node.pid,
        "generation": generation,
        "epoch": node.epoch,
        "clock_now": node.clock.now,
        "vc": list(node.vc.entries),
        "intervals_created": node.intervals_created,
        "shared_instr_calls": node.shared_instr_calls,
        "private_instr_calls": node.private_instr_calls,
        "twinned_pages": list(node.twinned_pages),
        "pages": pages,
        "current": interval_to_dict(node.current),
        "store_records": [interval_to_dict(records[idx])
                          for idx in sorted(records)],
    }
    if coordinator is not None:
        data["coordinator"] = coordinator
    return NodeSnapshot(data)


def restore_node(snap: NodeSnapshot, node: "Node",
                 store: "IntervalStore") -> None:
    """Install a snapshot's state into ``node`` (and its slice of the
    interval store), overwriting whatever was there.

    The node's virtual *clock* is deliberately untouched: recovery time is
    an accounting decision of the caller (in-run recovery charges restart +
    restore + re-execution under ``CostCategory.RECOVERY``; clocks never
    rewind).
    """
    if snap.pid != node.pid:
        raise CheckpointError(
            f"checkpoint of P{snap.pid} cannot restore node P{node.pid}")
    data = snap.data
    node.vc = VectorClock(data["vc"])
    node.epoch = data["epoch"]
    node.intervals_created = data["intervals_created"]
    node.shared_instr_calls = data["shared_instr_calls"]
    node.private_instr_calls = data["private_instr_calls"]
    node.twinned_pages = list(data["twinned_pages"])
    node.pages = {}
    for page_key, page_data in data["pages"].items():
        copy = PageCopy(int(page_key), node.config.page_size_words)
        copy.state = PageState(page_data["state"])
        copy.data = (None if page_data["data"] is None
                     else list(page_data["data"]))
        copy.twin = (None if page_data["twin"] is None
                     else list(page_data["twin"]))
        node.pages[int(page_key)] = copy
    node.current = interval_from_dict(data["current"])
    restored = [interval_from_dict(d) for d in data["store_records"]]
    store.by_pid()[node.pid] = {rec.index: rec for rec in restored}


# ---------------------------------------------------------------------- #
# The manager: latest-per-pid snapshots, optional disk persistence.
# ---------------------------------------------------------------------- #
class CheckpointManager:
    """Holds the latest barrier checkpoint of every node.

    With a ``directory``, every checkpoint is also serialized to
    ``ckpt_p<pid>_g<generation>.json`` there — one file per (node, barrier
    generation) — so a later process can rehydrate the run's per-node state
    with :meth:`load_dir` (cross-run resume of long simulations).

    With ``delta=True`` every checkpoint after a node's first is written
    as a :class:`DeltaSnapshot` against the previous generation;
    :meth:`latest` (and therefore recovery) always serves the full
    in-memory reconstruction, so only the *written bytes* — the priced
    write cost and the on-disk footprint — shrink.
    """

    def __init__(self, directory: Optional[str] = None,
                 delta: bool = False):
        self.directory = directory
        self.delta = delta
        self._lock_fd: Optional[int] = None
        if directory is not None:
            try:
                os.makedirs(directory, exist_ok=True)
            except OSError as exc:
                raise CheckpointError(
                    f"cannot create checkpoint directory {directory!r}: "
                    f"{exc}") from exc
            self._acquire_lock(directory)
        self._latest: Dict[int, NodeSnapshot] = {}
        #: Per-pid {generation: full snapshot}; populated by
        #: :meth:`load_dir` so a resumed run can restore at the common cut.
        self._history: Dict[int, Dict[int, NodeSnapshot]] = {}

    # ------------------------------------------------------------------ #
    # Directory exclusivity.
    # ------------------------------------------------------------------ #
    def _acquire_lock(self, directory: str) -> None:
        """Take an exclusive advisory lock on ``<directory>/LOCK``.

        Two live runs writing one ``--checkpoint-dir`` would interleave
        their ``ckpt_p*_g*.json`` files and silently corrupt *both* runs'
        recovery (and a later ``--resume-from`` would restore a chimera).
        The lock makes the collision loud: the second run is refused with
        a :class:`~repro.errors.ConfigError` naming the run already
        holding the directory.  ``flock`` locks follow the open file
        description, so the guard catches same-process collisions (two
        CVM instances in one test process) as well as concurrent fleet
        workers in separate OS processes; it dies with the process, so a
        crashed run never leaves the directory permanently wedged.
        """
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX fallback
            return
        from repro.errors import ConfigError
        path = os.path.join(directory, "LOCK")
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            holder = ""
            try:
                holder = os.read(fd, 256).decode("utf-8", "replace").strip()
            finally:
                os.close(fd)
            raise ConfigError(
                f"checkpoint directory {directory!r} is already in use"
                + (f" by {holder}" if holder else "")
                + ": two runs cannot share one --checkpoint-dir (their "
                "ckpt_p*_g*.json files would interleave and corrupt both "
                "recoveries); give each run its own directory — the fleet "
                "scopes each job under <spool>/ckpt/<job-id> for exactly "
                "this reason")
        owner = f"os-pid {os.getpid()}"
        os.ftruncate(fd, 0)
        os.write(fd, owner.encode("utf-8"))
        self._lock_fd = fd

    def close(self) -> None:
        """Release the directory lock (idempotent).  Called when the
        owning run finishes; the LOCK file itself is left behind — the
        next run re-locks and rewrites it, and ``load_dir`` ignores any
        file not matching the checkpoint name pattern."""
        if self._lock_fd is not None:
            try:
                os.close(self._lock_fd)
            except OSError:  # pragma: no cover - double close is harmless
                pass
            self._lock_fd = None

    def take(self, node: "Node", store: "IntervalStore",
             generation: int,
             coordinator: Optional[Dict[str, Any]] = None
             ) -> WrittenCheckpoint:
        """Snapshot ``node`` at barrier ``generation``; retain the full
        snapshot as the node's latest checkpoint and persist the written
        form (full, or delta in delta mode) when a directory is set.
        ``coordinator`` is the optional failover role section (see
        :func:`snapshot_node`).

        Returns the object actually *written* — its ``nbytes`` is what the
        caller's virtual-time write charge and stats should price."""
        snap = snapshot_node(node, store, generation, coordinator)
        prev = self._latest.get(node.pid)
        written: WrittenCheckpoint = snap
        if self.delta and prev is not None:
            written = encode_delta(prev, snap)
        self._latest[node.pid] = snap
        if self.directory is not None:
            path = os.path.join(
                self.directory, f"ckpt_p{node.pid}_g{generation}.json")
            try:
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(written.to_json())
            except OSError as exc:
                raise CheckpointError(
                    f"cannot write checkpoint {path!r}: {exc}") from exc
        return written

    def latest(self, pid: int) -> Optional[NodeSnapshot]:
        return self._latest.get(pid)

    def at_generation(self, pid: int, generation: int) -> NodeSnapshot:
        """The full snapshot of ``pid`` at ``generation`` (history is only
        retained by :meth:`load_dir`-constructed managers)."""
        snap = self._history.get(pid, {}).get(generation)
        if snap is None:
            raise CheckpointError(
                f"no checkpoint for P{pid} at generation {generation}")
        return snap

    def has_generation(self, pid: int, generation: int) -> bool:
        return generation in self._history.get(pid, {})

    def restore_latest(self, node: "Node", store: "IntervalStore") -> NodeSnapshot:
        """Restore ``node`` from its latest checkpoint; raises
        :class:`CheckpointError` if none was ever taken."""
        snap = self.latest(node.pid)
        if snap is None:
            raise CheckpointError(f"no checkpoint exists for P{node.pid}")
        restore_node(snap, node, store)
        return snap

    @staticmethod
    def load_snapshot(path: str) -> NodeSnapshot:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return NodeSnapshot.from_json(fh.read())
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {path!r}: {exc}") from exc

    @classmethod
    def load_dir(cls, directory: str) -> "CheckpointManager":
        """Rehydrate a manager from a checkpoint directory.

        Every generation of every pid is loaded (delta chains are replayed
        into full snapshots, validating base continuity and content hashes
        link by link) and retained in :meth:`at_generation` history; the
        highest generation of each pid becomes its :meth:`latest` snapshot
        — the state a resumed run restarts each node from."""
        manager = cls(directory=None)
        try:
            names = sorted(os.listdir(directory))
        except OSError as exc:
            raise CheckpointError(
                f"cannot list checkpoint directory {directory!r}: "
                f"{exc}") from exc
        files: Dict[int, List[Tuple[int, str]]] = {}
        for name in names:
            m = _FILE_RE.match(name)
            if not m:
                continue
            pid, gen = int(m.group(1)), int(m.group(2))
            files.setdefault(pid, []).append((gen, name))
        for pid, entries in sorted(files.items()):
            current: Optional[NodeSnapshot] = None
            history = manager._history.setdefault(pid, {})
            for gen, name in sorted(entries):
                loaded = load_checkpoint(os.path.join(directory, name))
                if loaded.is_delta:
                    if current is None:
                        raise CheckpointError(
                            f"delta checkpoint {name!r} has no full base "
                            f"snapshot in {directory!r}")
                    current = apply_delta(current, loaded)
                else:
                    current = loaded
                if current.generation != gen:
                    raise CheckpointError(
                        f"checkpoint {name!r} claims generation "
                        f"{current.generation}, expected {gen}")
                history[gen] = current
            manager._latest[pid] = current
        return manager

    def snapshots(self) -> List[NodeSnapshot]:
        """Latest snapshots, in pid order."""
        return [self._latest[pid] for pid in sorted(self._latest)]
