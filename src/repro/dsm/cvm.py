"""The CVM system facade and the per-process application environment.

:class:`CVM` wires together the deterministic scheduler, the simulated
transport, the shared segment, the coherence protocol, the synchronization
managers and (when enabled) the race detector, then runs an SPMD application
function on every simulated process.  :class:`Env` is the handle the
application code receives: it exposes the DSM API (``malloc``/``load``/
``store``/``lock``/``unlock``/``barrier``) and *is* the analogue of the
paper's instrumentation analysis routine — every shared access that flows
through it is classified, counted, bitmap-tracked and charged to the
virtual clock under the proper overhead category.

The synchronization operations implement lazy release consistency exactly
as §3.1 describes: every acquire and release opens a new interval; lock
grants and barrier messages piggyback the interval records (write notices,
and with detection on, read notices) that the receiver has not yet seen;
write notices invalidate stale page copies at the acquirer.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.baseline.trace import TraceEvent
from repro.core.detector import DetectorStats, RaceDetector
from repro.core.report import RaceReport
from repro.dsm.checkpoint import (CheckpointManager, restore_node,
                                  snapshot_node)
from repro.dsm.config import DsmConfig
from repro.dsm.coordinator import (CoordinatorRole, FailoverStats,
                                   ShardingStats, elect_coordinator)
from repro.dsm.interval import Interval, intervals_unseen_by
from repro.dsm.memory import SharedSegment
from repro.dsm.node import IntervalStore, Node
from repro.dsm.page import PageDirectory
from repro.dsm.protocol import make_protocol
from repro.dsm.sync import (BarrierState, EventState, GrantInfo,
                            LockState)
from repro.dsm.vector_clock import VectorClock, precedes
from repro.errors import (AllocationError, CheckpointError, ConfigError,
                          NodeCrashed, RetryExhaustedError,
                          SegmentationFault, SynchronizationError)
from repro.net.message import WireSizer
from repro.net.reliable import ReliableChannel
from repro.net.stats import TrafficStats
from repro.net.transport import Transport
from repro.sim.costmodel import CostCategory, CostLedger
from repro.sim.crash import CrashInjector, CrashRecord, CrashStats
from repro.sim.policy import make_policy
from repro.sim.scheduler import Scheduler

#: Yield to the scheduler after this many shared accesses, so that long
#: computation phases cannot starve other simulated processes.
YIELD_EVERY = 512


@dataclass
class RunResult:
    """Everything a finished run exposes to the harness and to tests."""

    config: DsmConfig
    races: List[RaceReport]
    detector_stats: Optional[DetectorStats]
    traffic: TrafficStats
    ledgers: List[CostLedger]
    runtime_cycles: float
    results: List[Any]
    intervals_created: int
    barriers_completed: int
    lock_acquires: int
    shared_instr_calls: int
    private_instr_calls: int
    memory_kbytes: float
    access_trace: List[TraceEvent]
    #: Protocol-level diagnostics (faults, invalidations, transfers...).
    protocol_stats: Dict[str, int] = field(default_factory=dict)
    #: Per-lock (acquires, contended) counters.
    lock_stats: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: Crash/recovery counters (all zero when crashes are disabled).
    crash_stats: CrashStats = field(default_factory=CrashStats)
    #: ``verdict="unverifiable"`` entries: concurrent overlapping pairs
    #: whose race check could not run because a crash destroyed one side's
    #: word bitmaps (recovery without a checkpoint).  Kept apart from
    #: ``races`` so race artifacts stay comparable across runs.
    unverifiable: List[RaceReport] = field(default_factory=list)
    #: Master-failover counters (elections held, detection-state bytes
    #: migrated, interval records re-solicited); all zero with failover
    #: off, and on any run whose coordinator never crashes.
    failover_stats: FailoverStats = field(default_factory=FailoverStats)
    #: Sharded-detection protocol counters (shards dispatched, records
    #: shipped, scatter/reduce traffic, fallbacks); all zero with sharding
    #: off.  Detection verdicts and ``detector_stats`` are byte-identical
    #: to the centralized engine's either way.
    sharding_stats: ShardingStats = field(default_factory=ShardingStats)
    #: Two-phase pipeline counters: a ``--mode record`` run reports the
    #: entries captured per stream and the flushed trace bytes; a
    #: ``--mode detect-offline`` run reports the entries replayed and
    #: verified.  ``None`` in online mode.
    record_stats: Optional[Dict[str, int]] = None

    @property
    def runtime_seconds(self) -> float:
        return self.config.cost_model.seconds(self.runtime_cycles)

    @property
    def intervals_per_barrier(self) -> float:
        """Average interval structures created per process per barrier
        epoch (Table 1's "Intervals Per Barrier")."""
        denom = self.barriers_completed * self.config.nprocs
        if denom == 0:
            return float(self.intervals_created)
        return self.intervals_created / denom

    def aggregate_ledger(self) -> CostLedger:
        total = CostLedger()
        for ledger in self.ledgers:
            total.merge(ledger)
        return total

    def overhead_breakdown(self) -> Dict[str, float]:
        """System-wide per-category overhead relative to base time
        (Figure 3's bars)."""
        return self.aggregate_ledger().breakdown()

    def shared_access_rate(self) -> float:
        """Instrumented shared accesses per virtual second (Table 3)."""
        secs = self.runtime_seconds
        return self.shared_instr_calls / secs if secs > 0 else 0.0

    def private_access_rate(self) -> float:
        """Instrumented private accesses per virtual second (Table 3)."""
        secs = self.runtime_seconds
        return self.private_instr_calls / secs if secs > 0 else 0.0


class CVM:
    """A configured DSM system, ready to run one SPMD application."""

    def __init__(self, config: DsmConfig):
        self.config = config
        self.scheduler = Scheduler(
            policy=make_policy(config.policy, config.seed),
            deadline_seconds=config.deadline_seconds)
        self.sizer = WireSizer(config.nprocs, config.page_size_words)
        self.transport = Transport(config.cost_model,
                                   max_datagram=config.max_datagram,
                                   trace=config.trace_messages)
        # With faults configured, all protocol traffic goes through the
        # reliable channel (fragmentation, ack/retransmit, duplicate
        # suppression); with faults off — the default — the bare transport
        # stays in the path so every ledger and stat is byte-identical to
        # a build without the robustness layer.
        plan = config.effective_fault_plan()
        if plan is not None:
            self.net = ReliableChannel(
                self.transport, plan, retry_budget=config.retry_budget,
                timeout_cycles=config.retransmit_timeout)
        else:
            self.net = self.transport
        self.segment = SharedSegment(config.segment_words,
                                     config.page_size_words)
        self.directory = PageDirectory(config.num_pages, config.nprocs)
        self.store = IntervalStore()
        self.store.log_vcs = config.track_access_trace
        self.protocol = make_protocol(config.protocol, self)
        self.nodes: List[Node] = []
        self.locks: Dict[int, LockState] = {}
        self.events: Dict[int, EventState] = {}
        self.barrier_state = BarrierState(config.nprocs, master=0,
                                          failover=config.master_failover)
        self.epoch = 0
        self.access_trace: List[TraceEvent] = []
        # The barrier-master responsibilities — barrier release, interval
        # collection, the detector instance — are owned by the coordinator
        # role, initially held by P0 as in the paper.  With failover off
        # the role never moves and every ``role.pid`` comparison below is
        # the old ``pid == 0`` check; with ``--master-failover`` the role
        # migrates to the lowest live pid when its holder crashes.
        self.coordinator = CoordinatorRole(
            config.nprocs, failover=config.master_failover,
            detector=self._make_detector(0),
            detector_factory=self._make_detector,
            initial_pid=0)
        # Crash tolerance.  With no crash plan — the default — the
        # injector is None, every hook below is a cheap no-op, and all
        # artifacts are byte-identical to a build without this layer.
        cplan = config.effective_crash_plan()
        if cplan is not None and not config.master_failover:
            for cpid, _gen in cplan.at:
                if cpid == self.coordinator.pid:
                    raise ValueError(
                        "crash_at cannot target the barrier master "
                        f"(P{self.coordinator.pid}); enable master "
                        "failover with --master-failover")
        self._crasher = CrashInjector(cplan) if cplan is not None else None
        self.crash_stats = CrashStats()
        self.sharding_stats = ShardingStats()
        # Two-level detection filter: when on (and detecting), every
        # consistency payload also carries the coarse access digests the
        # filter consults, priced by _charge_digests at each ship site.
        self._coarse = config.detection and config.coarse_filter
        self.checkpoints: Optional[CheckpointManager] = None
        # Cross-run resume (--resume-from): re-execute deterministically
        # and, at the barrier generation the directory covers for every
        # node, validate and reinstall each node's state from the restored
        # snapshots.  The resumed run must use the same configuration the
        # checkpoints were written under (checkpointing stays enabled so
        # the virtual-time write charges line up).
        self._resume_mgr: Optional[CheckpointManager] = None
        self._resume_gen = -1
        self.resumed_nodes = 0
        if config.resume_from is not None:
            mgr = CheckpointManager.load_dir(config.resume_from)
            pids = sorted(s.pid for s in mgr.snapshots())
            if pids != list(range(config.nprocs)):
                raise CheckpointError(
                    f"checkpoint directory {config.resume_from!r} covers "
                    f"pids {pids}, but the run has nprocs={config.nprocs}")
            gen = min(s.generation for s in mgr.snapshots())
            for pid in pids:
                if not mgr.has_generation(pid, gen):
                    raise CheckpointError(
                        f"checkpoint directory {config.resume_from!r} has "
                        f"no consistent cut: P{pid} lacks generation {gen}")
            self._resume_mgr = mgr
            self._resume_gen = gen
        #: Optional replay controller (see :mod:`repro.replay`): records or
        #: enforces the order in which contended locks are granted.
        self.lock_order = None
        #: Optional program-counter watch (§6.1 second run): maps word
        #: address -> list that collects (pid, interval, site, is_write).
        self.pc_watch: Optional[Dict[int, List[Tuple]]] = None
        # Two-phase pipeline (--mode record / --mode detect-offline).
        # Record: a SyncTraceRecorder doubles as the lock-order controller
        # and receives the barrier-arrival and message-delivery hooks; the
        # trace is flushed (and its bytes priced under RECORD) at the end
        # of run().  Detect-offline: the trace file is loaded and frame-
        # checked here so corrupt files fail before any work; the config-
        # digest check against the app happens in run(), where the app
        # name is known.  The hooks are installed on ``self.net`` — the
        # reliable channel when faults are configured — so a lossy record
        # run captures *post-retransmit* delivery order and the bare
        # transport's per-fragment sends never fire them.  Imports are
        # deferred: repro.replay's package init pulls in the attribution
        # pipeline, which imports this module.
        self.trace_recorder = None
        self.trace_enforcer = None
        self.trace_bytes = 0
        if config.mode == "record":
            from repro.replay.trace import SyncTraceRecorder
            self.trace_recorder = SyncTraceRecorder()
            self.lock_order = self.trace_recorder
            self.barrier_state.order_hook = self._record_arrival
            self.net.delivery_hook = self._record_delivery
        elif config.mode == "detect-offline":
            from repro.replay.trace import SyncTraceEnforcer, load_trace
            enforcer = SyncTraceEnforcer(load_trace(config.trace_file))
            self.trace_enforcer = enforcer
            self.lock_order = enforcer
            self.barrier_state.order_hook = enforcer.on_barrier_arrival
            self.net.delivery_hook = enforcer.on_delivery
        # Created last: with a persistent directory the manager takes an
        # exclusive advisory lock on it (two live runs sharing one
        # --checkpoint-dir would interleave ckpt files and corrupt both
        # recoveries), and nothing above must be able to fail while the
        # lock is held.  Released in run()'s finally clause.
        if config.checkpointing_enabled:
            self.checkpoints = CheckpointManager(config.checkpoint_dir,
                                                 delta=config.checkpoint_delta)
        self._ran = False

    def _make_detector(self, master_pid: int) -> Optional[RaceDetector]:
        """Detector factory for the coordinator role: the initial instance
        at construction, and replacement instances (re-homed on the
        election winner) during failover.  ``None`` with detection off."""
        config = self.config
        if not config.detection:
            return None
        return RaceDetector(
            config.page_size_words, config.cost_model, self.sizer,
            self.net, self.segment.symbol_for, master_pid=master_pid,
            first_races_only=config.first_races_only,
            fast_path=config.detector_fast_path,
            coarse_filter=config.coarse_filter)

    @property
    def detector(self) -> Optional[RaceDetector]:
        """The race detector, owned by the coordinator role (it migrates
        with the role on failover)."""
        return self.coordinator.detector

    # ------------------------------------------------------------------ #
    # Running applications.
    # ------------------------------------------------------------------ #
    def run(self, app: Callable[..., Any], *args: Any) -> RunResult:
        """Run ``app(env, *args)`` on every simulated process (SPMD) and
        return the collected result.  A final barrier is inserted after the
        application returns so the last epoch is always race-checked."""
        if self._ran:
            raise SynchronizationError("a CVM instance runs one application once")
        self._ran = True
        try:
            app_name = getattr(app, "__name__", repr(app))
            if self.trace_enforcer is not None:
                self._verify_trace_header(app_name)
            for pid in range(self.config.nprocs):
                proc = self.scheduler.spawn(self._proc_main, app, pid, args)
                self.nodes.append(Node(pid, self.config, proc.clock, self.store))
            if self.coordinator.failover:
                # Initial role journal (the analogue of the generation-0 node
                # checkpoints): a coordinator death before the first barrier
                # migrates the pre-application detector state.
                self.coordinator.journal_state(
                    self.nodes[self.coordinator.pid].clock,
                    self.config.cost_model)
            if self._resume_mgr is not None and self._resume_gen == 0:
                # Resuming at the pre-application cut: install before the
                # generation-0 checkpoints re-record the (identical) state.
                for node in self.nodes:
                    self._install_resume(node)
            if self.checkpoints is not None:
                # Initial checkpoints (barrier generation 0): every node can
                # be recovered even if it dies before the first barrier.
                for node in self.nodes:
                    self._take_checkpoint(node, generation=0)
            self.scheduler.run()
            if self.trace_recorder is not None:
                self._flush_trace(app_name)
            elif self.trace_enforcer is not None:
                # A replay that finished without consuming the whole trace
                # means the executions disagree — fail, don't under-report.
                self.trace_enforcer.check_fully_consumed()
            return self._collect()
        finally:
            # Release the checkpoint directory's exclusive lock so a later
            # run (same process or not) can legitimately reuse it.
            if self.checkpoints is not None:
                self.checkpoints.close()

    # ------------------------------------------------------------------ #
    # Two-phase pipeline plumbing (--mode record / --mode detect-offline).
    # ------------------------------------------------------------------ #
    def _charge_record(self, node: Node) -> None:
        """One captured synchronization-order entry, on the acting pid's
        clock — the record run's only per-event online cost."""
        node.clock.advance(self.config.cost_model.record_entry,
                           CostCategory.RECORD)

    def _record_arrival(self, generation: int, pid: int) -> None:
        self._charge_record(self.nodes[pid])
        self.trace_recorder.on_barrier_arrival(generation, pid)

    def _record_delivery(self, tag: str, src: int, dst: int) -> None:
        from repro.replay.trace import SYNC_TAGS
        if tag not in SYNC_TAGS:
            return
        self._charge_record(self.nodes[src])
        self.trace_recorder.on_delivery(tag, src, dst)

    def _verify_trace_header(self, app_name: str) -> None:
        """Refuse to replay a trace recorded under a different execution
        configuration: the config digest pins every execution-shaping
        field (app, nprocs, seed, policy, network-fault schedule...), so
        a mismatch means the trace would steer a different program."""
        from repro.replay.trace import execution_digest
        trace = self.trace_enforcer.trace
        digest = execution_digest(self.config, app_name)
        if digest != trace.digest:
            raise ConfigError(
                "--mode detect-offline: the trace (--trace-file) was "
                "recorded under a different execution configuration: "
                f"recorded app={trace.app!r} nprocs={trace.nprocs} "
                f"seed={trace.seed} policy={trace.policy!r} "
                f"fault_seed={trace.fault_seed}; this run has "
                f"app={app_name!r} nprocs={self.config.nprocs} "
                f"seed={self.config.seed} policy={self.config.policy!r} "
                f"fault_seed={self.config.fault_seed} (config digest "
                f"{trace.digest} != {digest}); re-record with --mode "
                "record under this configuration or fix the flags")

    def _flush_trace(self, app_name: str) -> None:
        """End-of-run trace flush: finalize the header, frame and persist
        the file, and price the serialization on the coordinator's clock
        (it owns the run's durable artifacts, like the role journal)."""
        from repro.replay.trace import execution_digest, write_trace
        digest = execution_digest(self.config, app_name)
        trace = self.trace_recorder.build(app_name, self.config, digest)
        self.trace_bytes = write_trace(trace, self.config.trace_file)
        self.nodes[self.coordinator.pid].clock.advance(
            self.config.cost_model.record_flush_per_byte * self.trace_bytes,
            CostCategory.RECORD)

    def _two_phase_stats(self) -> Optional[Dict[str, int]]:
        if self.trace_recorder is not None:
            t = self.trace_recorder.trace
            return {"entries_recorded": self.trace_recorder.entries_recorded,
                    "lock_grants": t.total_grants,
                    "barrier_arrivals": t.total_arrivals,
                    "deliveries": len(t.deliveries),
                    "trace_bytes": self.trace_bytes}
        if self.trace_enforcer is not None:
            e = self.trace_enforcer
            return {"grants_replayed": e.grants_replayed,
                    "arrivals_verified": e.arrivals_verified,
                    "deliveries_verified": e.deliveries_verified}
        return None

    def _proc_main(self, app: Callable[..., Any], pid: int, args: tuple) -> Any:
        env = Env(self, pid)
        result = app(env, *args)
        self.barrier(pid)  # final flush: close and check the last epoch
        return result

    def _collect(self) -> RunResult:
        clocks = self.scheduler.clocks()
        return RunResult(
            config=self.config,
            races=list(self.detector.races) if self.detector else [],
            detector_stats=self.detector.stats if self.detector else None,
            traffic=self.transport.stats,
            ledgers=[c.ledger for c in clocks],
            runtime_cycles=max(c.now for c in clocks),
            results=self.scheduler.results(),
            intervals_created=self.store.total_created,
            barriers_completed=self.barrier_state.barriers_completed,
            lock_acquires=sum(s.acquires for s in self.locks.values()),
            shared_instr_calls=sum(n.shared_instr_calls for n in self.nodes),
            private_instr_calls=sum(n.private_instr_calls for n in self.nodes),
            memory_kbytes=self.segment.high_water_kbytes,
            access_trace=self.access_trace,
            protocol_stats=self.protocol.stats(),
            lock_stats={lid: (st.acquires, st.contended)
                        for lid, st in sorted(self.locks.items())},
            crash_stats=self.crash_stats,
            unverifiable=(list(self.detector.unverifiable)
                          if self.detector else []),
            failover_stats=self.coordinator.stats,
            sharding_stats=self.sharding_stats,
            record_stats=self._two_phase_stats(),
        )

    # ------------------------------------------------------------------ #
    # Crash injection, recovery and checkpoints.
    #
    # The simulation models crashes *by accounting*: the deterministic
    # scheduler guarantees that re-executing a node from its last
    # barrier-consistent state reproduces exactly the same computation, so
    # a recovered run's Python state needs no rewinding — a crash costs
    # virtual time (restart + state restoration + re-execution debt),
    # recovery traffic, and, when checkpointing is off, the node's
    # current-epoch detection metadata (its word bitmaps never leave the
    # node until the bitmap round, so they die with it; the page-level
    # notices survive on already-sent synchronization messages).  With
    # ``crash_recovery=False`` the crash is fail-stop instead: the
    # simulated process unwinds with :class:`NodeCrashed` and the
    # survivors' next barrier deadlocks.
    # ------------------------------------------------------------------ #
    def _maybe_crash(self, pid: int, kind: str,
                     generation: Optional[int] = None) -> None:
        """Evaluate one potential crash point for ``pid``.  No-op without a
        crash plan; one crash per node per epoch (a node with a pending
        unrecovered crash is immune until its next barrier)."""
        if self._crasher is None:
            return
        node = self.nodes[pid]
        if node.crashed is not None:
            self.crash_stats.pending_crash_skips += 1
            return
        doomed = (generation is not None
                  and self._crasher.scheduled_at(pid, generation))
        if not doomed:
            doomed = self._crasher.decide(pid, kind)
        if not doomed:
            return
        role = self.coordinator
        if pid == role.pid and (not role.failover or self.config.nprocs < 2):
            # Without failover the coordinator runs the detector and the
            # recovery protocol and cannot crash; with nprocs=1 there is
            # no possible successor either way.  Count the suppression so
            # rate sweeps can report how often immunity mattered.
            self.crash_stats.master_crashes_suppressed += 1
            return
        self._crash_node(node, kind)

    def _crash_node(self, node: Node, kind: str) -> None:
        node.crashed = CrashRecord(kind=kind, time=node.clock.now,
                                   epoch=node.epoch)
        self.crash_stats.record_crash(kind)
        if not self.config.crash_recovery:
            raise NodeCrashed(node.pid, kind, node.clock.now)

    def _charge_node_recovery(self, node: Node) -> None:
        """Recovery accounting, run at the crashed node's next barrier
        arrival (all charges under ``CostCategory.RECOVERY``, which stays
        out of the overhead breakdown).

        With checkpointing: restore the latest snapshot (restore cost
        proportional to its serialized size) and re-execute from the
        checkpoint cut — determinism regenerates the post-checkpoint
        metadata exactly, so nothing is lost.  Without: refetch every valid
        page copy from its manager over ``self.net`` — the reliable
        channel when faults are enabled, so recovery traffic survives a
        lossy network too — re-execute the whole epoch, and mark the
        node's current-epoch intervals *lost* — their bitmaps are
        unrecoverable and the detector degrades those checks to explicit
        unverifiable reports.
        """
        rec = node.crashed
        clock = node.clock
        cm = self.config.cost_model
        clock.advance(cm.crash_restart, CostCategory.RECOVERY)
        if self.checkpoints is not None:
            snap = self.checkpoints.latest(node.pid)
            nbytes = snap.nbytes if snap is not None else 0
            clock.advance(cm.checkpoint_restore_per_byte * nbytes,
                          CostCategory.RECOVERY)
            restart_point = node.last_checkpoint_time
            self.crash_stats.recoveries_from_checkpoint += 1
        else:
            for page_id in sorted(node.pages):
                copy = node.pages[page_id]
                if not copy.valid:
                    continue
                src = self.directory.manager_of(page_id)
                if src == node.pid:
                    continue
                msg = self.net.send(
                    "recovery_page", src, node.pid, None,
                    self.sizer.ints(2) + self.sizer.page_data(), clock,
                    category=CostCategory.RECOVERY, fragmentable=True)
                clock.wait_until(msg.arrival_time)
            table = self.store.by_pid().get(node.pid, {})
            for stored in table.values():
                if stored.epoch == node.epoch and not stored.lost:
                    stored.lost = True
                    self.crash_stats.intervals_lost += 1
            if not node.current.lost:
                node.current.lost = True
                self.crash_stats.intervals_lost += 1
            restart_point = node.epoch_start_time
            self.crash_stats.recoveries_without_checkpoint += 1
        # Re-execution debt: the work between the restart point and the
        # crash is done twice; the second pass is recovery overhead.
        clock.advance(max(0.0, rec.time - restart_point),
                      CostCategory.RECOVERY)

    def _install_resume(self, node: Node) -> None:
        """Validate and install one node's restored snapshot at the resume
        cut.

        Deterministic re-execution has brought the node to exactly the
        state the checkpoint captured, so the freshly-computed snapshot
        must equal the stored one byte for byte — anything else means the
        directory came from a different app/params/flags and resuming
        would silently diverge.  The restored (deserialized) objects are
        then actually installed, so the remainder of the run exercises the
        restore path end to end."""
        snap = self._resume_mgr.at_generation(node.pid, self._resume_gen)
        current = snapshot_node(node, self.store, self._resume_gen,
                                coordinator=self._coordinator_section(node.pid))
        if current != snap:
            raise CheckpointError(
                f"resume state diverged for P{node.pid} at generation "
                f"{self._resume_gen}: the checkpoint directory was not "
                "produced by an equivalent run (same application, "
                "parameters, process count and flags)")
        restore_node(snap, node, self.store)
        self.resumed_nodes += 1

    def _coordinator_section(self, pid: int) -> Optional[Dict[str, Any]]:
        """Coordinator section for ``pid``'s snapshot: present only under
        failover (so failover-off checkpoints stay byte-identical to
        builds without the coordinator subsystem)."""
        if not self.coordinator.failover:
            return None
        return self.coordinator.snapshot_section(pid)

    def _take_checkpoint(self, node: Node, generation: int) -> None:
        snap = self.checkpoints.take(
            node, self.store, generation,
            coordinator=self._coordinator_section(node.pid))
        node.clock.advance(
            self.config.cost_model.checkpoint_write_per_byte * snap.nbytes,
            CostCategory.RECOVERY)
        node.last_checkpoint_time = node.clock.now
        self.crash_stats.checkpoints_written += 1
        self.crash_stats.checkpoint_bytes += snap.nbytes

    # ------------------------------------------------------------------ #
    # Interval helpers.
    # ------------------------------------------------------------------ #
    def _close_interval(self, node: Node) -> Interval:
        closed = node.close_interval()
        self.protocol.on_interval_closed(node, closed)
        return closed

    def _consistency_payload(self, have: VectorClock,
                             upto: VectorClock) -> Tuple[List[Interval], int, int]:
        """Interval records a process with clock ``have`` is missing up to
        horizon ``upto``; returns (records, body bytes, read-notice bytes)."""
        recs = [rec for rec in intervals_unseen_by(self.store.by_pid(),
                                                   have, upto)
                if not rec.is_empty]
        with_reads = self.config.detection
        body = self.sizer.vector_clock()
        read_bytes = 0
        for rec in recs:
            body += rec.wire_size(self.sizer, with_reads)
            if with_reads:
                read_bytes += rec.read_notice_wire_size(self.sizer)
        return recs, body, read_bytes

    def _charge_digests(self, recs: Sequence[Interval], clock) -> None:
        """Two-level filter carriage: price the coarse digests
        piggy-backed on this consistency payload's notice lists (one per
        write notice and, with detection, per read notice).  Charged in
        cycles on the shipping side under ``CostCategory.COARSE_FILTER``
        — message bodies are *not* inflated, so every filter-off wire
        figure (fragment counts, per-tag byte totals, Table 3's overhead
        fraction) is untouched.  No-op unless detection and the filter
        are both on."""
        if not self._coarse:
            return
        nbytes = 0
        for rec in recs:
            nbytes += rec.digest_wire_size(self.sizer)
        if nbytes:
            clock.advance(self.config.cost_model.cycles_per_byte * nbytes,
                          CostCategory.COARSE_FILTER)
            self.transport.stats.add_digest_bytes(nbytes)

    def _apply_consistency(self, node: Node, recs: List[Interval],
                           horizon: VectorClock) -> None:
        """Acquire-side application: invalidate per write notices, then
        merge the horizon clock."""
        for rec in recs:
            self.protocol.apply_write_notice(node, rec)
        node.vc.observe(horizon)

    # ------------------------------------------------------------------ #
    # Locks.
    # ------------------------------------------------------------------ #
    def _lock_state(self, lid: int) -> LockState:
        st = self.locks.get(lid)
        if st is None:
            st = self.locks[lid] = LockState(lid, lid % self.config.nprocs)
        return st

    def lock_acquire(self, pid: int, lid: int) -> None:
        node = self.nodes[pid]
        self.scheduler.yield_control(pid)
        if self._crasher is not None:
            self._maybe_crash(pid, "send")  # the lock-request send
        st = self._lock_state(lid)
        if self.lock_order is not None:
            # Replay enforcement gates only the free-lock fast path: when
            # the lock is held, the queue hand-off in ``_pick_next_waiter``
            # follows the recorded order instead.  A bounded spin converts
            # divergence (the recorded acquirer never shows up — possible
            # when a data race influenced synchronization control flow,
            # the §6.1 caveat about general races) into a clear error
            # instead of a livelock.
            from repro.errors import ReplayError
            spins = 0
            while (st.holder is None and not st.queue
                   and not self.lock_order.may_acquire(lid, pid)):
                spins += 1
                if not self.scheduler.others_ready(pid) or spins > 20_000:
                    raise ReplayError(
                        f"replay diverged: P{pid} must wait for "
                        f"P{self.lock_order.expected_next(lid)} to acquire "
                        f"lock {lid} first, but that grant never happens")
                self.scheduler.yield_control(pid)
        self._close_interval(node)
        if st.holder is None and not st.queue:
            st.holder = pid
            st.acquires += 1
            if self.lock_order is not None:
                self.lock_order.record_grant(lid, pid)
                if self.trace_recorder is not None:
                    self._charge_record(node)
            self._charge_idle_lock_acquire(node, st)
            if st.last_release_vc is not None:
                recs, _body, _rb = self._consistency_payload(
                    node.vc, st.last_release_vc)
                self._apply_consistency(node, recs, st.last_release_vc)
        else:
            st.queue.append(pid)
            st.contended += 1
            self.scheduler.block(pid, f"lock {lid}")
            grant = st.grant_box.pop(pid)
            node.clock.wait_until(grant.arrival_time)
            recs, _body, _rb = self._consistency_payload(
                node.vc, grant.release_vc)
            self._apply_consistency(node, recs, grant.release_vc)
        node.open_interval(f"lock({lid}) acquire")

    def _charge_idle_lock_acquire(self, node: Node, st: LockState) -> None:
        """Message accounting for acquiring an idle lock: request to the
        manager, forward to the last releaser, grant (with piggybacked
        consistency data) back to the requester."""
        sizer = self.sizer
        clock = node.clock
        granter = st.last_releaser if st.last_releaser is not None else st.manager
        if st.manager != node.pid:
            self.net.send("lock_request", node.pid, st.manager, None,
                                sizer.ints(3), clock)
        if granter not in (st.manager, node.pid):
            self.net.send("lock_forward", st.manager, granter, None,
                                sizer.ints(3) + sizer.vector_clock(), clock)
        if granter != node.pid:
            horizon = st.last_release_vc
            if horizon is not None:
                grant_recs, body, read_bytes = self._consistency_payload(
                    node.vc, horizon)
            else:
                grant_recs, body, read_bytes = [], sizer.vector_clock(), 0
            msg = self.net.send("lock_grant", granter, node.pid, None,
                                      body, clock, fragmentable=self.config.fragmentable_messages)
            if read_bytes:
                self.transport.stats.add_read_notice_bytes(read_bytes)
            self._charge_digests(grant_recs, clock)
            clock.wait_until(msg.arrival_time)

    def lock_release(self, pid: int, lid: int) -> None:
        node = self.nodes[pid]
        if self._crasher is not None:
            self._maybe_crash(pid, "send")  # the grant/release send
        st = self._lock_state(lid)
        if st.holder != pid:
            raise SynchronizationError(
                f"P{pid} released lock {lid} held by {st.holder}")
        self._close_interval(node)
        st.last_releaser = pid
        st.last_release_vc = node.vc.copy()
        node.open_interval(f"lock({lid}) release")
        if st.queue:
            nxt = self._pick_next_waiter(st)
            st.holder = nxt
            st.acquires += 1
            if self.lock_order is not None:
                self.lock_order.record_grant(lid, nxt)
                if self.trace_recorder is not None:
                    self._charge_record(node)  # the releaser does the work
            grant_recs, body, read_bytes = self._consistency_payload(
                self.nodes[nxt].vc, st.last_release_vc)
            msg = self.net.send("lock_grant", pid, nxt, None, body,
                                      node.clock, fragmentable=self.config.fragmentable_messages)
            if read_bytes:
                self.transport.stats.add_read_notice_bytes(read_bytes)
            self._charge_digests(grant_recs, node.clock)
            st.grant_box[nxt] = GrantInfo(pid, st.last_release_vc,
                                          msg.arrival_time)
            self.scheduler.unblock(nxt)
        else:
            st.holder = None
        self._maybe_consolidate(node)
        self.scheduler.yield_control(pid)

    def _pick_next_waiter(self, st: LockState) -> int:
        """FIFO normally; under replay enforcement, the recorded acquirer
        (who must already be queued, else we fall back to FIFO and the
        controller flags the divergence at its next check)."""
        if self.lock_order is not None:
            expected = self.lock_order.expected_next(st.lid)
            if expected is not None and expected in st.queue:
                st.queue.remove(expected)
                return expected
        return st.queue.popleft()

    # ------------------------------------------------------------------ #
    # Events (one-shot flags: CVM's generalized synchronization).
    # ------------------------------------------------------------------ #
    def _event_state(self, eid: int) -> EventState:
        ev = self.events.get(eid)
        if ev is None:
            ev = self.events[eid] = EventState(eid)
        return ev

    def event_set(self, pid: int, eid: int) -> None:
        """Release half of an event: close the interval, record the
        consistency horizon, wake any waiters."""
        node = self.nodes[pid]
        if self._crasher is not None:
            self._maybe_crash(pid, "send")  # the event_set send
        ev = self._event_state(eid)
        if ev.is_set:
            raise SynchronizationError(
                f"event {eid} set twice (P{ev.setter}, then P{pid})")
        self._close_interval(node)
        ev.is_set = True
        ev.setter = pid
        ev.set_vc = node.vc.copy()
        node.open_interval(f"event({eid}) set")
        msg = self.net.send(
            "event_set", pid, (pid + 1) % self.config.nprocs, None,
            self.sizer.ints(2) + self.sizer.vector_clock(), node.clock)
        ev.set_time = msg.arrival_time
        for waiter in ev.waiters:
            self.scheduler.unblock(waiter)
        ev.waiters.clear()
        self.scheduler.yield_control(pid)

    def event_wait(self, pid: int, eid: int) -> None:
        """Acquire half: block until the event is set, then apply the
        setter's consistency information (write-notice invalidations plus
        the horizon clock)."""
        node = self.nodes[pid]
        ev = self._event_state(eid)
        self._close_interval(node)
        if not ev.is_set:
            ev.waiters.append(pid)
            self.scheduler.block(pid, f"event {eid}")
        node.clock.wait_until(ev.set_time)
        recs, _body, read_bytes = self._consistency_payload(node.vc,
                                                            ev.set_vc)
        if read_bytes:
            self.transport.stats.add_read_notice_bytes(read_bytes)
        self._charge_digests(recs, node.clock)
        self._apply_consistency(node, recs, ev.set_vc)
        node.open_interval(f"event({eid}) wait")

    # ------------------------------------------------------------------ #
    # Barrier.
    # ------------------------------------------------------------------ #
    def barrier(self, pid: int) -> None:
        node = self.nodes[pid]
        self.scheduler.yield_control(pid)
        bar = self.barrier_state
        if self._crasher is not None:
            self._maybe_crash(pid, "barrier", generation=bar.generation)
            if node.crashed is not None:
                # The node died earlier this epoch (or right here): it is
                # recovered before it can arrive, so its arrival message —
                # and the arrival time the master sees — carries the full
                # recovery cost.
                self._charge_node_recovery(node)
        closed = self._close_interval(node)
        horizon = node.vc.copy()
        node.open_interval("barrier arrival")
        master_node = self.nodes[bar.master]
        if pid != bar.master:
            recs, body, read_bytes = self._consistency_payload(
                master_node.vc, horizon)
            msg = self.net.send("barrier_arrival", pid, bar.master,
                                      None, body, node.clock,
                                      fragmentable=self.config.fragmentable_messages)
            if read_bytes:
                self.transport.stats.add_read_notice_bytes(read_bytes)
            self._charge_digests(recs, node.clock)
            self._apply_consistency(master_node, recs, horizon)
            arrival_now = msg.arrival_time
        else:
            arrival_now = node.clock.now
        if bar.failover:
            # The closing horizon is what a new coordinator would have to
            # re-solicit from this process if the master dies this epoch.
            bar.horizons[pid] = horizon
        last = bar.arrive(pid, arrival_now)
        if not last:
            self.scheduler.block(pid, f"barrier gen {bar.generation}")
        else:
            self._barrier_master_work()
            for other in range(self.config.nprocs):
                if other != pid:
                    self.scheduler.unblock(other)
        self._barrier_depart(pid)

    def _barrier_master_work(self) -> None:
        """Runs in the last arriver's thread but on the *coordinator's*
        virtual clock — detection overhead is serialized at the master
        (§6.2).  If the coordinator itself is among this epoch's crashed
        nodes and failover is enabled, the survivors first elect a
        replacement and migrate the detection state to it; the analysis
        then proceeds on the new coordinator's clock."""
        bar = self.barrier_state
        role = self.coordinator
        if (role.failover and self.config.nprocs > 1
                and self.nodes[role.pid].crashed is not None):
            self._coordinator_failover(bar)
        master_node = self.nodes[bar.master]
        master_clock = master_node.clock
        if self._crasher is not None:
            self._declare_deaths(bar, master_clock)
        master_clock.wait_until(max(bar.arrival_times.values()))
        if role.detector is not None:
            epoch_recs = role.collect_epoch(self.store, self.epoch)
            if self.config.sharded_detection:
                self._run_sharded_detection(role, epoch_recs, master_clock)
            else:
                role.run_detection(epoch_recs, self.epoch, master_clock)
        # Release payloads: one per process, carrying what it is missing.
        # The write notices are applied (invalidating stale copies) here,
        # *before* the checked epoch's records are discarded below; the
        # blocked processes are not running, so mutating their page tables
        # is safe, and their departure only needs the horizon clock.
        release_vc = master_node.vc.copy()
        for other in range(self.config.nprocs):
            if other == bar.master:
                bar.release_box[other] = (release_vc, master_clock.now)
                continue
            recs, body, read_bytes = self._consistency_payload(
                self.nodes[other].vc, release_vc)
            msg = self.net.send("barrier_release", bar.master, other,
                                      None, body, master_clock,
                                      fragmentable=self.config.fragmentable_messages)
            if read_bytes:
                self.transport.stats.add_read_notice_bytes(read_bytes)
            self._charge_digests(recs, master_clock)
            for rec in recs:
                self.protocol.apply_write_notice(self.nodes[other], rec)
            bar.release_box[other] = (release_vc, msg.arrival_time)
        if role.failover:
            # Journal the role state after every completed detection pass:
            # a coordinator death next epoch restores from here, so the
            # journal is never staler than the last barrier-consistent cut.
            role.journal_state(master_clock, self.config.cost_model)
        # The epoch is fully checked: discard its trace information
        # (bitmaps, notices).  Also sweep the previous epoch's stragglers
        # (the empty arrival intervals closed at departure).
        self.store.discard_epoch(self.epoch)
        if self.epoch > 0:
            self.store.discard_epoch(self.epoch - 1)
        self.epoch += 1
        bar.reset_for_next_generation()

    # ------------------------------------------------------------------ #
    # Sharded detection (``--sharded-detection``): scatter the epoch's
    # pair blocks to shard owners, compute in parallel on the owners'
    # clocks, tree-reduce the candidate reports to the coordinator, and
    # commit there through the centralized dedup state — byte-identical
    # reports, with the coordinator's serialized detection share spread
    # over the live pids.  All protocol traffic under SHARDED_DETECT.
    # ------------------------------------------------------------------ #
    def _run_sharded_detection(self, role: CoordinatorRole,
                               epoch_recs: List[Interval],
                               master_clock) -> None:
        """One epoch's detection, sharded when possible.

        Falls back to the centralized engine — soundly and without having
        mutated any detector state — when the epoch has nothing to shard,
        when a shard owner crashes during the sharded phase, or when a
        sharding exchange exhausts the reliable channel's retry budget.
        The fallback re-runs the full pass on the coordinator's clock;
        virtual time already spent on the abandoned sharded phase stays
        spent (honest wasted work), but verdicts and detector statistics
        come out exactly as if sharding had been off for this epoch.
        """
        bar = self.barrier_state
        det = role.detector
        sh = self.sharding_stats
        crashed = [p for p in range(self.config.nprocs)
                   if self.nodes[p].crashed is not None]
        owners = bar.shard_owners(crashed, self.config.detection_shards)
        plan = det.plan_shards(epoch_recs, owners)
        if plan is None:
            sh.epochs_centralized += 1
            role.run_detection(epoch_recs, self.epoch, master_clock)
            return
        # Mid-phase owner deaths.  One crash point per live owner with a
        # non-empty shard, on the independent "detect" schedule (so the
        # access/send/barrier schedules of non-sharded runs are
        # unperturbed).  Evaluated only under crash_recovery: a fail-stop
        # raise here would unwind the last arriver's thread, not the
        # owner's.  Any hit abandons the sharded phase for this epoch —
        # the crashed owner recovers exactly like a barrier-arrival crash,
        # and the coordinator, after waiting out its detection timeout,
        # re-runs the full pass locally.
        if self._crasher is not None and self.config.crash_recovery:
            dead_owners = []
            for pid in owners[1:]:
                if not plan.shards[pid].blocks:
                    continue
                node = self.nodes[pid]
                if node.crashed is not None:
                    self.crash_stats.pending_crash_skips += 1
                    continue
                if self._crasher.decide(pid, "detect"):
                    self._crash_node(node, "detect")
                    self._charge_node_recovery(node)
                    dead_owners.append(pid)
            if dead_owners:
                master_clock.wait_until(
                    master_clock.now + self.config.crash_detect_timeout)
                sh.fallbacks_owner_crash += 1
                role.run_detection(epoch_recs, self.epoch, master_clock)
                return
        try:
            results, items, staged = self._sharded_phases(det, plan,
                                                          master_clock)
        except RetryExhaustedError:
            sh.fallbacks_network += 1
            role.run_detection(epoch_recs, self.epoch, master_clock)
            return
        det.commit_sharded(plan, results, items, self.epoch, master_clock)
        # Counters for the sharded phases are staged and folded in only
        # now that the epoch committed: an abandoned phase (a fallback
        # above) must not leave dispatched-shard or shipped-record counts
        # behind for work whose results were thrown away.
        sh.merge(staged)
        sh.epochs_sharded += 1

    def _sharded_phases(self, det, plan, master_clock):
        """The three distributed phases of one sharded epoch; returns
        ``(shard results, fully merged candidate items, staged stats)``.

        Counters are accumulated in a *staged* :class:`ShardingStats`
        that the caller merges only after ``commit_sharded`` succeeds: a
        ``RetryExhaustedError`` mid-phase abandons the epoch, and
        counters incremented before the failing send would otherwise
        survive the fallback and overcount (shards "dispatched" whose
        results were discarded, records "shipped" that the fallback never
        used).

        1. *Scatter*: the block assignments fan out along a binary tree
           rooted at the coordinator (log-depth, not serialized on the
           coordinator's clock).  Each edge also carries the partner
           interval records the owners in its subtree have not observed
           — the coordinator already holds the epoch's full record set
           (it arrived on the barrier messages) and learned every
           arriver's clock the same way, so shipping the deltas downhill
           costs zero extra messages, where a fetch round would cost
           O(owners x partners) round trips per epoch.
        2. *Compute*: each owner, on its own clock, runs the pruned pair
           search for its blocks and fetches the bitmaps its check
           entries name (request/reply pairs, overlapped like the
           centralized engine's bitmap round).
        3. *Reduce*: candidate items flow back along the mirrored binary
           tree (owners at distance ``step`` merge pairwise), ending at
           the coordinator with the globally key-sorted stream.

        RetryExhaustedError from any exchange propagates to the caller's
        centralized fallback.
        """
        sizer = self.sizer
        sh = ShardingStats()  # staged; merged by the caller on commit
        cat = CostCategory.SHARDED_DETECT
        coord = plan.owners[0]
        active = [coord] + [pid for pid in plan.owners[1:]
                            if plan.shards[pid].blocks]
        clocks = {pid: self.nodes[pid].clock for pid in active}
        sh.shards_dispatched += sum(
            1 for pid in active if plan.shards[pid].blocks)
        n = len(active)
        with_reads = self.config.detection
        # Per-owner record deltas: what each owner's own clock has not
        # observed of the partner pids its blocks name.  The records are
        # physically in the global store (the simulation models placement
        # by accounting); what is priced is their wire metadata riding
        # the scatter tree below.
        missing: Dict[int, List[Interval]] = {}
        for pid in active[1:]:
            node_vc = self.nodes[pid].vc
            partners = sorted({x for blk in plan.shards[pid].blocks
                               for x in blk if x != pid})
            recs = [rec for q in partners for rec in plan.by_pid[q]
                    if not rec.is_empty
                    and not precedes(q, rec.index, node_vc)]
            missing[pid] = recs
            sh.records_shipped += len(recs)
        # Phase 1: binary-tree scatter of assignments + record deltas.
        steps = []
        step = 1
        while step < n:
            steps.append(step)
            step *= 2
        for step in reversed(steps):
            i = 0
            while i + step < n:
                src, dst = active[i], active[i + step]
                subtree = active[i + step:min(i + 2 * step, n)]
                nblocks = sum(len(plan.shards[p].blocks) for p in subtree)
                body = sizer.ints(3 + 2 * len(subtree) + 2 * nblocks)
                # Each edge ships the union of its subtree's deltas, every
                # record once, plus one horizon clock per owner.
                edge_recs = {}
                for p in subtree:
                    body += sizer.vector_clock()
                    for rec in missing[p]:
                        edge_recs[(rec.pid, rec.index)] = rec
                for rec in edge_recs.values():
                    body += rec.wire_size(sizer, with_reads)
                msg = self.net.send("detect_shard", src, dst, None, body,
                                    clocks[src], category=cat,
                                    fragmentable=True)
                self._charge_digests(list(edge_recs.values()), clocks[src])
                clocks[dst].wait_until(msg.arrival_time)
                sh.scatter_messages += 1
                sh.bytes_scattered += msg.nbytes
                i += 2 * step
        # Phase 2: shard compute, per owner on its own clock.
        results = []
        buffers = {}
        for pid in active:
            shard = plan.shards[pid]
            clock = clocks[pid]
            res = det.compute_shard(shard, plan, self.epoch, clock)
            sh.bitmap_fetch_messages += res.fetch_messages
            sh.bitmap_fetch_bytes += res.fetch_bytes
            results.append(res)
            buffers[pid] = res.items
        # Phase 3: binary tree-reduce of the candidate items, mirroring
        # the scatter tree; the coordinator (index 0) absorbs the final
        # merges on the master clock.
        step = 1
        while step < n:
            i = 0
            while i + step < n:
                dst, src = active[i], active[i + step]
                msg = self.net.send(
                    "shard_reduce", src, dst, len(buffers[src]),
                    det.shard_reduce_bytes(buffers[src]), clocks[src],
                    category=cat, fragmentable=True)
                clocks[dst].wait_until(msg.arrival_time)
                sh.reduce_messages += 1
                sh.bytes_reduced += msg.nbytes
                buffers[dst] = det.merge_shard_items(buffers[dst],
                                                     buffers[src])
                i += 2 * step
            step *= 2
        return results, buffers[coord], sh

    def _coordinator_failover(self, bar: BarrierState) -> None:
        """Election plus detection-state migration, run before the barrier
        analysis when the coordinator is among this epoch's crashed nodes.

        Protocol (all charges and traffic under ``CostCategory.FAILOVER``,
        which stays out of the overhead breakdown):

        1. The survivors time out on the coordinator's silence past the
           last live arrival (``election_timeout``, overlapping — not
           stacking with — the death-declaration timeout) and hold the
           deterministic rank election: lowest live pid wins.
        2. Each survivor sends its vote to the winner; the winner announces
           the outcome to the rest.
        3. The winner fetches the coordinator-state journal from stable
           storage, pays the restore cost, and rebuilds the detector from
           it (:meth:`CoordinatorRole.install_from_journal`); the barrier
           master is reassigned so release and death-declaration run here.
        4. The closing epoch's in-flight interval/write-notice metadata is
           re-solicited from every process's recorded arrival horizon —
           the same payloads the old master absorbed on the arrival
           messages — so the new coordinator's clock dominates every
           arrival before ``release_vc`` is computed.  The records
           themselves live in the global store (they are regenerated
           deterministically by recovery re-execution), which is why the
           crash-free race reports come out byte-identical.
        """
        role = self.coordinator
        cm = self.config.cost_model
        old = role.pid
        live = [p for p in range(self.config.nprocs)
                if self.nodes[p].crashed is None]
        winner = elect_coordinator(old, live, self.config.nprocs)
        new_node = self.nodes[winner]
        clock = new_node.clock
        live_arrivals = [t for p, t in bar.arrival_times.items()
                         if self.nodes[p].crashed is None]
        start = max(live_arrivals) if live_arrivals else clock.now
        clock.wait_until(start + self.config.election_timeout)
        for p in sorted(bar.arrival_times):
            if p == winner or self.nodes[p].crashed is not None:
                continue
            msg = self.net.send("election_vote", p, winner, None,
                                self.sizer.ints(3), clock,
                                category=CostCategory.FAILOVER)
            clock.wait_until(msg.arrival_time)
        for p in sorted(bar.arrival_times):
            if p == winner or p == old or self.nodes[p].crashed is not None:
                continue
            self.net.send("coordinator_announce", winner, p, None,
                          self.sizer.ints(2), clock,
                          category=CostCategory.FAILOVER)
        journal = role.journal_json
        if journal is None:
            journal = CoordinatorRole.frame_journal(role.state_json())
        jbytes = len(journal.encode("utf-8"))
        msg = self.net.send("coordinator_state", old, winner, None,
                            self.sizer.ints(2) + jbytes, clock,
                            category=CostCategory.FAILOVER,
                            fragmentable=True)
        clock.wait_until(msg.arrival_time)
        clock.advance(cm.checkpoint_restore_per_byte * jbytes,
                      CostCategory.FAILOVER)
        role.install_from_journal(
            winner,
            fallback_state=self._checkpointed_coordinator_state(old))
        bar.reassign_master(winner)
        # Delta re-solicitation: each survivor resends only its *own*
        # records past the winner's pre-election clock (snapshotted in
        # ``vc0`` — the evolving clock must not be consulted, or a reply
        # that merely *names* another pid's horizon entry would silently
        # suppress that pid's still-unsent records).  The union over all
        # survivors equals the full-payload protocol's applied set — every
        # foreign record a horizon names is its owner's own record in some
        # other reply — and write-notice application is order-insensitive
        # and idempotent, so page state, invalidation counts and the
        # merged clock come out identical, for a fraction of the bytes.
        vc0 = new_node.vc.copy()
        with_reads = self.config.detection
        tables = self.store.by_pid()
        for p in sorted(bar.horizons):
            if p == winner:
                continue
            horizon = bar.horizons[p]
            table = tables.get(p, {})
            recs = [table[idx]
                    for idx in range(vc0[p] + 1, horizon[p] + 1)
                    if idx in table and not table[idx].is_empty]
            body = self.sizer.vector_clock()
            for rec in recs:
                body += rec.wire_size(self.sizer, with_reads)
            self.net.send("resolicit_request", winner, p, None,
                          self.sizer.ints(2) + self.sizer.vector_clock(),
                          clock, category=CostCategory.FAILOVER)
            msg = self.net.send("resolicit_reply", p, winner, len(recs),
                                body, clock,
                                category=CostCategory.FAILOVER,
                                fragmentable=True)
            self._charge_digests(recs, clock)
            clock.wait_until(msg.arrival_time)
            self._apply_consistency(new_node, recs, horizon)
            role.stats.records_resolicited += len(recs)

    def _checkpointed_coordinator_state(self, pid: int):
        """The dead coordinator's detector state as of its last barrier
        checkpoint, or None when checkpointing is off or no snapshot holds
        a coordinator section.  This is the durable fallback
        :meth:`CoordinatorRole.install_from_journal` restores from when
        the journal tail turns out torn or corrupt."""
        if self.checkpoints is None:
            return None
        snap = self.checkpoints.latest(pid)
        if snap is None:
            return None
        section = snap.data.get("coordinator")
        if not section:
            return None
        return section.get("state")

    def _declare_deaths(self, bar: BarrierState, master_clock) -> None:
        """Master-side half of the recovery protocol, run before the
        barrier analysis: any process with a pending crash missed the
        deadline, so the master waits out its virtual-time timeout past the
        last live arrival, declares the silent nodes dead, and sends each a
        recovery request over ``self.net`` — the reliable channel when
        faults are enabled, so recovery survives the same lossy network as
        everything else.  The dead node's effective arrival is then whatever is
        later — its self-recovered arrival, or recovery triggered by the
        master's request plus the node's crash-to-arrival span."""
        crashed = [p for p in range(self.config.nprocs)
                   if self.nodes[p].crashed is not None]
        if not crashed:
            return
        live = [t for p, t in bar.arrival_times.items() if p not in crashed]
        deadline = ((max(live) if live else master_clock.now)
                    + self.config.crash_detect_timeout)
        master_clock.wait_until(deadline)
        for p in sorted(crashed):
            bar.declare_dead(p)
            self.crash_stats.deaths_declared += 1
            rec = self.nodes[p].crashed
            msg = self.net.send(
                "recovery_request", bar.master, p, None,
                self.sizer.ints(2), master_clock,
                category=CostCategory.RECOVERY)
            arrived = bar.arrival_times[p]
            bar.arrival_times[p] = max(
                arrived, msg.arrival_time + (arrived - rec.time))
        self._migrate_lock_managers(bar, set(crashed), master_clock)

    def _migrate_lock_managers(self, bar: BarrierState, dead: set,
                               master_clock) -> None:
        """Re-home every lock whose static manager pid was just declared
        dead onto the lowest live pid.

        The static ``lid % nprocs`` assignment never moved before: a
        manager death left its locks pointed at a node that is silent for
        the rest of the recovery window, stranding every blocked waiter's
        request/forward exchange at a dead endpoint.  The master (which
        has just declared the deaths) ships each managed lock's queue and
        prepared-grant state (``grant_box`` — grants a releaser prepared
        for waiters that have not consumed them yet) to the new manager in
        one handoff message, priced under RECOVERY like the rest of the
        death-declaration protocol.  Race verdicts are vector-clock
        structural, so the re-homing changes traffic and virtual time only
        — reports stay byte-identical to the crash-free run's."""
        if not dead:
            return
        live = [p for p in range(self.config.nprocs) if p not in dead]
        if not live:
            return
        new_mgr = live[0]
        for lid in sorted(self.locks):
            st = self.locks[lid]
            if st.manager not in dead:
                continue
            st.manager = new_mgr
            self.crash_stats.locks_migrated += 1
            if new_mgr != bar.master:
                # Lock id + holder + queue snapshot + prepared grants
                # (pid + vector clock each).
                body = (self.sizer.ints(3 + len(st.queue))
                        + len(st.grant_box)
                        * (self.sizer.ints(1) + self.sizer.vector_clock()))
                self.net.send("lock_migrate", bar.master, new_mgr, None,
                              body, master_clock,
                              category=CostCategory.RECOVERY)

    def _barrier_depart(self, pid: int) -> None:
        node = self.nodes[pid]
        bar = self.barrier_state
        release_vc, arrival_time = bar.release_box.pop(pid)
        node.clock.wait_until(arrival_time)
        self._close_interval(node)  # the (empty) arrival interval
        # Write notices were already applied by the master's release pass;
        # departing only merges the horizon clock.
        node.vc.observe(release_vc)
        node.epoch = self.epoch
        node.open_interval("barrier depart")
        # The departure is the epoch's consistent cut: a recovered node's
        # crash is fully absorbed here, and (when enabled) each node
        # checkpoints itself before touching the new epoch.
        node.crashed = None
        node.epoch_start_time = node.clock.now
        if (self._resume_mgr is not None
                and bar.barriers_completed == self._resume_gen):
            self._install_resume(node)
        if self.checkpoints is not None:
            self._take_checkpoint(node, generation=bar.barriers_completed)

    # ------------------------------------------------------------------ #
    # Consolidation between barriers (§6.3).
    # ------------------------------------------------------------------ #
    def _maybe_consolidate(self, node: Node) -> None:
        limit = self.config.consolidation_interval
        if limit <= 0 or self.detector is None:
            return
        if node.intervals_in_current_epoch() >= limit:
            self.consolidate(node.pid)

    def consolidate(self, pid: int) -> int:
        """Race-check and garbage-collect intervals that are already
        ordered before every process's current view — they can never be
        concurrent with anything created later, so they can be retired
        without global synchronization.  Returns how many were retired."""
        if self.detector is None:
            return 0
        node = self.nodes[pid]
        current = self.store.epoch_intervals(self.epoch)
        if not current:
            return 0
        self.detector.run_epoch(current, self.epoch, node.clock)
        retired = 0
        for rec in current:
            if all(other.vc[rec.pid] >= rec.index for other in self.nodes):
                table = self.store.by_pid().get(rec.pid, {})
                if rec.index in table:
                    del table[rec.index]
                    retired += 1
        return retired


class Env:
    """Per-process application handle: the DSM API plus the analysis
    routine of the paper's instrumentation (access classification, bitmap
    maintenance, cost accounting)."""

    def __init__(self, system: CVM, pid: int):
        self.system = system
        self.pid = pid
        self.config = system.config
        self.nprocs = system.config.nprocs
        self._node = system.nodes[pid]
        self._clock = self._node.clock
        self._cm = system.config.cost_model
        self._psz = system.config.page_size_words
        self._accesses_since_yield = 0
        # Pre-resolved fast-path facts.
        self._detect = system.config.detection
        self._diff_writes = system.config.diff_write_detection
        self._proc_call = (0.0 if system.config.inline_instrumentation
                           else self._cm.proc_call)
        # Tracing and pc-watching are both fixed before run() (the config
        # is frozen; replay attribution installs its watch on the system
        # before starting the second run), so _after_access can skip the
        # per-word dict lookups entirely on the common path.
        self._trace = system.config.track_access_trace
        self._watching = system.pc_watch is not None
        #: Crash injector (None in the default, crash-free configuration —
        #: the per-access hook then costs one attribute test).
        self._crasher = system._crasher
        # --- access-engine dispatch (chosen once per configuration) ----- #
        # Three engines share identical virtual-time arithmetic (every
        # ledger, bitmap, counter and message is byte-identical across
        # them; see docs/performance.md):
        #  * fast (default): fused clock charges via advance_split, bound
        #    protocol/scheduler attributes, single-page ranges without
        #    chunk materialization;
        #  * scalar (access_fast_path=False): the paper's literal per-word
        #    instrumentation chain, one analysis call per word — the
        #    reference engine and the old side of bench_endtoend.py;
        #  * general: tracing, pc-watching or crash injection is active —
        #    the chunked class-level methods below, which evaluate those
        #    hooks exactly where the crash/trace semantics require.
        self._segwords = system.config.segment_words
        self._ensure_readable = system.protocol.ensure_readable
        self._ensure_writable = system.protocol.ensure_writable
        cm = self._cm
        if self._proc_call:
            self._instr_parts: Tuple[Tuple[CostCategory, float], ...] = (
                (CostCategory.BASE, cm.plain_access),
                (CostCategory.PROC_CALL, self._proc_call),
                (CostCategory.ACCESS_CHECK, cm.access_check_shared))
        else:
            self._instr_parts = (
                (CostCategory.BASE, cm.plain_access),
                (CostCategory.ACCESS_CHECK, cm.access_check_shared))
        total = 0.0
        for _cat, cycles in self._instr_parts:
            total += cycles
        self._instr_total = total
        general = (self._trace or self._watching
                   or self._crasher is not None)
        if not general:
            if system.config.access_fast_path:
                self.load = self._load_fast_detect if self._detect \
                    else self._load_fast_plain
                self.store = self._store_fast_detect \
                    if self._detect and not self._diff_writes \
                    else self._store_fast_plain
                self.load_range = self._load_range_fast
                self.store_range = self._store_range_fast
            else:
                self.load_range = self._load_range_scalar
                self.store_range = self._store_range_scalar

    # ------------------------------------------------------------------ #
    # Allocation.
    # ------------------------------------------------------------------ #
    def malloc(self, nwords: int, name: Optional[str] = None,
               page_aligned: bool = False) -> int:
        """Allocate shared memory.  Named allocations are idempotent across
        processes (the SPMD idiom: every process asks for ``"grid"`` and
        gets the same address)."""
        seg = self.system.segment
        if name is not None:
            try:
                return seg.lookup(name).addr
            except AllocationError:
                pass
        return seg.malloc(nwords, name=name, page_aligned=page_aligned)

    def symbol_for(self, addr: int) -> str:
        return self.system.segment.symbol_for(addr)

    # ------------------------------------------------------------------ #
    # Shared accesses (single word).
    # ------------------------------------------------------------------ #
    def load(self, addr: int, site: Optional[str] = None) -> Any:
        node = self._node
        if not 0 <= addr < self.config.segment_words:
            raise SegmentationFault(self.pid, addr)
        page, off = addr // self._psz, addr % self._psz
        copy = self.system.protocol.ensure_readable(node, page)
        self._clock.advance(self._cm.plain_access, CostCategory.BASE)
        if self._detect:
            node.shared_instr_calls += 1
            if self._proc_call:
                self._clock.advance(self._proc_call, CostCategory.PROC_CALL)
            self._clock.advance(self._cm.access_check_shared,
                                CostCategory.ACCESS_CHECK)
            node.current.record_read(page, off)
        self._after_access(addr, 1, False, site)
        return copy.data[off]

    def store(self, addr: int, value: Any, site: Optional[str] = None) -> None:
        node = self._node
        if not 0 <= addr < self.config.segment_words:
            raise SegmentationFault(self.pid, addr)
        page, off = addr // self._psz, addr % self._psz
        copy = self.system.protocol.ensure_writable(node, page, off)
        copy.data[off] = value
        self._clock.advance(self._cm.plain_access, CostCategory.BASE)
        if self._detect and not self._diff_writes:
            # §6.5 diff mode dispenses with store instrumentation entirely.
            node.shared_instr_calls += 1
            if self._proc_call:
                self._clock.advance(self._proc_call, CostCategory.PROC_CALL)
            self._clock.advance(self._cm.access_check_shared,
                                CostCategory.ACCESS_CHECK)
            node.current.record_write(page, off)
        self._after_access(addr, 1, True, site)

    # ------------------------------------------------------------------ #
    # Shared accesses (contiguous ranges — the vectorized fast path).
    # ------------------------------------------------------------------ #
    def load_range(self, addr: int, count: int,
                   site: Optional[str] = None) -> List[Any]:
        if count <= 0:
            return []
        self.system.segment.check_range(addr, count)
        out: List[Any] = []
        node = self._node
        for page, off, n in self._page_chunks(addr, count):
            copy = self.system.protocol.ensure_readable(node, page)
            out.extend(copy.data[off:off + n])
            if self._detect:
                node.current.record_read(page, off, n)
        self._charge_bulk(count, instrumented=self._detect)
        self._after_access(addr, count, False, site)
        return out

    def store_range(self, addr: int, values: Sequence[Any],
                    site: Optional[str] = None) -> None:
        count = len(values)
        if count == 0:
            return
        self.system.segment.check_range(addr, count)
        node = self._node
        taken = 0
        for page, off, n in self._page_chunks(addr, count):
            copy = self.system.protocol.ensure_writable(node, page, off)
            copy.data[off:off + n] = values[taken:taken + n]
            taken += n
            if self._detect and not self._diff_writes:
                node.current.record_write(page, off, n)
        self._charge_bulk(count,
                          instrumented=self._detect and not self._diff_writes)
        self._after_access(addr, count, True, site)

    # ------------------------------------------------------------------ #
    # Fast engine (default; no trace/watch/crash hooks active): fused
    # charges, bound attributes, no chunk materialization for the common
    # single-page range.  Arithmetic is identical to the scalar engine —
    # see VirtualClock.advance_split for the exactness argument.
    # ------------------------------------------------------------------ #
    def _load_fast_detect(self, addr: int,
                          site: Optional[str] = None) -> Any:
        node = self._node
        if not 0 <= addr < self._segwords:
            raise SegmentationFault(self.pid, addr)
        page, off = divmod(addr, self._psz)
        copy = self._ensure_readable(node, page)
        node.shared_instr_calls += 1
        self._clock.advance_split(self._instr_total, self._instr_parts)
        node.current.record_read(page, off)
        n = self._accesses_since_yield + 1
        if n >= YIELD_EVERY:
            self._accesses_since_yield = 0
            self.system.scheduler.yield_control(self.pid)
        else:
            self._accesses_since_yield = n
        return copy.data[off]

    def _load_fast_plain(self, addr: int,
                         site: Optional[str] = None) -> Any:
        node = self._node
        if not 0 <= addr < self._segwords:
            raise SegmentationFault(self.pid, addr)
        page, off = divmod(addr, self._psz)
        copy = self._ensure_readable(node, page)
        self._clock.advance(self._cm.plain_access, CostCategory.BASE)
        n = self._accesses_since_yield + 1
        if n >= YIELD_EVERY:
            self._accesses_since_yield = 0
            self.system.scheduler.yield_control(self.pid)
        else:
            self._accesses_since_yield = n
        return copy.data[off]

    def _store_fast_detect(self, addr: int, value: Any,
                           site: Optional[str] = None) -> None:
        node = self._node
        if not 0 <= addr < self._segwords:
            raise SegmentationFault(self.pid, addr)
        page, off = divmod(addr, self._psz)
        copy = self._ensure_writable(node, page, off)
        copy.data[off] = value
        node.shared_instr_calls += 1
        self._clock.advance_split(self._instr_total, self._instr_parts)
        node.current.record_write(page, off)
        n = self._accesses_since_yield + 1
        if n >= YIELD_EVERY:
            self._accesses_since_yield = 0
            self.system.scheduler.yield_control(self.pid)
        else:
            self._accesses_since_yield = n

    def _store_fast_plain(self, addr: int, value: Any,
                          site: Optional[str] = None) -> None:
        node = self._node
        if not 0 <= addr < self._segwords:
            raise SegmentationFault(self.pid, addr)
        page, off = divmod(addr, self._psz)
        copy = self._ensure_writable(node, page, off)
        copy.data[off] = value
        self._clock.advance(self._cm.plain_access, CostCategory.BASE)
        n = self._accesses_since_yield + 1
        if n >= YIELD_EVERY:
            self._accesses_since_yield = 0
            self.system.scheduler.yield_control(self.pid)
        else:
            self._accesses_since_yield = n

    def _load_range_fast(self, addr: int, count: int,
                         site: Optional[str] = None) -> List[Any]:
        if count <= 0:
            return []
        self.system.segment.check_range(addr, count)
        node = self._node
        psz = self._psz
        page, off = divmod(addr, psz)
        n = psz - off
        detect = self._detect
        if count <= n:  # common case: the whole range on one page
            copy = self._ensure_readable(node, page)
            out = copy.data[off:off + count]
            if detect:
                node.current.record_read(page, off, count)
        else:
            out = []
            remaining = count
            while True:
                copy = self._ensure_readable(node, page)
                take = n if n < remaining else remaining
                out += copy.data[off:off + take]
                if detect:
                    node.current.record_read(page, off, take)
                remaining -= take
                if not remaining:
                    break
                page += 1
                off = 0
                n = psz
        if detect:
            node.shared_instr_calls += count
            self._charge_bulk_fused(count)
        else:
            self._clock.advance(self._cm.plain_access * count,
                                CostCategory.BASE)
        self._accesses_since_yield += count
        if self._accesses_since_yield >= YIELD_EVERY:
            self._accesses_since_yield = 0
            self.system.scheduler.yield_control(self.pid)
        return out

    def _store_range_fast(self, addr: int, values: Sequence[Any],
                          site: Optional[str] = None) -> None:
        count = len(values)
        if count == 0:
            return
        self.system.segment.check_range(addr, count)
        node = self._node
        psz = self._psz
        page, off = divmod(addr, psz)
        n = psz - off
        record = self._detect and not self._diff_writes
        if count <= n:  # common case: no slicing of ``values`` at all
            copy = self._ensure_writable(node, page, off)
            copy.data[off:off + count] = values
            if record:
                node.current.record_write(page, off, count)
        else:
            taken = 0
            remaining = count
            while True:
                copy = self._ensure_writable(node, page, off)
                take = n if n < remaining else remaining
                copy.data[off:off + take] = values[taken:taken + take]
                if record:
                    node.current.record_write(page, off, take)
                taken += take
                remaining -= take
                if not remaining:
                    break
                page += 1
                off = 0
                n = psz
        if record:
            node.shared_instr_calls += count
            self._charge_bulk_fused(count)
        else:
            self._clock.advance(self._cm.plain_access * count,
                                CostCategory.BASE)
        self._accesses_since_yield += count
        if self._accesses_since_yield >= YIELD_EVERY:
            self._accesses_since_yield = 0
            self.system.scheduler.yield_control(self.pid)

    # ------------------------------------------------------------------ #
    # Scalar reference engine (access_fast_path=False): the paper's
    # literal instrumentation, one full analysis chain per word.  Kept for
    # the equivalence suite and as the old side of bench_endtoend.py.
    # ------------------------------------------------------------------ #
    def _load_range_scalar(self, addr: int, count: int,
                           site: Optional[str] = None) -> List[Any]:
        if count <= 0:
            return []
        self.system.segment.check_range(addr, count)
        node = self._node
        clock = self._clock
        cm = self._cm
        detect = self._detect
        proc_call = self._proc_call
        ensure = self._ensure_readable
        psz = self._psz
        out: List[Any] = []
        for a in range(addr, addr + count):
            page, off = a // psz, a % psz
            copy = ensure(node, page)
            clock.advance(cm.plain_access, CostCategory.BASE)
            if detect:
                node.shared_instr_calls += 1
                if proc_call:
                    clock.advance(proc_call, CostCategory.PROC_CALL)
                clock.advance(cm.access_check_shared,
                              CostCategory.ACCESS_CHECK)
                node.current.record_read(page, off)
            out.append(copy.data[off])
        self._after_access(addr, count, False, site)
        return out

    def _store_range_scalar(self, addr: int, values: Sequence[Any],
                            site: Optional[str] = None) -> None:
        count = len(values)
        if count == 0:
            return
        self.system.segment.check_range(addr, count)
        node = self._node
        clock = self._clock
        cm = self._cm
        record = self._detect and not self._diff_writes
        proc_call = self._proc_call
        ensure = self._ensure_writable
        psz = self._psz
        for i, a in enumerate(range(addr, addr + count)):
            page, off = a // psz, a % psz
            copy = ensure(node, page, off)
            copy.data[off] = values[i]
            clock.advance(cm.plain_access, CostCategory.BASE)
            if record:
                node.shared_instr_calls += 1
                if proc_call:
                    clock.advance(proc_call, CostCategory.PROC_CALL)
                clock.advance(cm.access_check_shared,
                              CostCategory.ACCESS_CHECK)
                node.current.record_write(page, off)
        self._after_access(addr, count, True, site)

    def _page_chunks(self, addr: int, count: int) -> List[Tuple[int, int, int]]:
        """Split [addr, addr+count) into (page, offset, length) chunks.
        The common single-page case is computed without looping."""
        psz = self._psz
        page, off = addr // psz, addr % psz
        n = psz - off
        if count <= n:
            return [(page, off, count)]
        chunks = [(page, off, n)]
        count -= n
        page += 1
        while count >= psz:
            chunks.append((page, 0, psz))
            page += 1
            count -= psz
        if count:
            chunks.append((page, 0, count))
        return chunks

    def _charge_bulk(self, count: int, instrumented: bool) -> None:
        self._clock.advance(self._cm.plain_access * count, CostCategory.BASE)
        if instrumented:
            self._node.shared_instr_calls += count
            if self._proc_call:
                self._clock.advance(self._proc_call * count,
                                    CostCategory.PROC_CALL)
            self._clock.advance(self._cm.access_check_shared * count,
                                CostCategory.ACCESS_CHECK)

    def _charge_bulk_fused(self, count: int) -> None:
        """Bulk charge for ``count`` instrumented accesses as one fused
        clock advance; the per-category parts are the same products
        ``_charge_bulk`` computes, so ledgers come out bit-identical."""
        cm = self._cm
        base = cm.plain_access * count
        acs = cm.access_check_shared * count
        if self._proc_call:
            pc = self._proc_call * count
            self._clock.advance_split(
                base + pc + acs,
                ((CostCategory.BASE, base), (CostCategory.PROC_CALL, pc),
                 (CostCategory.ACCESS_CHECK, acs)))
        else:
            self._clock.advance_split(
                base + acs,
                ((CostCategory.BASE, base), (CostCategory.ACCESS_CHECK, acs)))

    def _after_access(self, addr: int, count: int, is_write: bool,
                      site: Optional[str]) -> None:
        if self._trace or self._watching:
            system = self.system
            if self._trace:
                system.access_trace.append(TraceEvent(
                    self.pid, self._node.vc[self.pid], addr, count, is_write))
            if self._watching:
                for w in range(addr, addr + count):
                    hits = system.pc_watch.get(w)
                    if hits is not None:
                        hits.append((self.pid, self._node.vc[self.pid],
                                     site or "<unknown site>", is_write))
        if self._crasher is not None:
            self.system._maybe_crash(self.pid, "access")
        self._accesses_since_yield += count
        if self._accesses_since_yield >= YIELD_EVERY:
            self._accesses_since_yield = 0
            self.system.scheduler.yield_control(self.pid)

    # ------------------------------------------------------------------ #
    # Private work (instrumented-but-private accesses, pure compute).
    # ------------------------------------------------------------------ #
    def private_accesses(self, count: int) -> None:
        """Model ``count`` loads/stores that static analysis could not
        prove private, so they are instrumented — and at run time turn out
        to reference private data.  The paper's Table 3 shows these
        dominate the runtime calls to the analysis routines."""
        if count <= 0:
            return
        self._clock.advance(self._cm.plain_access * count, CostCategory.BASE)
        if self._detect:
            self._node.private_instr_calls += count
            if self._proc_call:
                self._clock.advance(self._proc_call * count,
                                    CostCategory.PROC_CALL)
            self._clock.advance(self._cm.access_check_private * count,
                                CostCategory.ACCESS_CHECK)

    def compute(self, units: float) -> None:
        """Charge pure computation (uninstrumented work)."""
        if units > 0:
            self._clock.advance(self._cm.compute_unit * units,
                                CostCategory.BASE)

    def pause(self, times: int = 1) -> None:
        """Yield to the scheduler ``times`` times — models local work long
        enough for other processes to proceed.  Purely a scheduling hint:
        it creates *no* happens-before ordering, which is exactly what the
        weak-memory example programs need (they must let another process
        run first without synchronizing with it)."""
        for _ in range(times):
            self.system.scheduler.yield_control(self.pid)

    # ------------------------------------------------------------------ #
    # Synchronization.
    # ------------------------------------------------------------------ #
    def lock(self, lid: int) -> None:
        self.system.lock_acquire(self.pid, lid)

    def unlock(self, lid: int) -> None:
        self.system.lock_release(self.pid, lid)

    @contextlib.contextmanager
    def locked(self, lid: int):
        self.lock(lid)
        try:
            yield
        finally:
            self.unlock(lid)

    def barrier(self) -> None:
        self.system.barrier(self.pid)

    def set_event(self, eid: int) -> None:
        """Signal a one-shot event (a release: accesses before the set
        happen-before accesses after any wait that observes it)."""
        self.system.event_set(self.pid, eid)

    def wait_event(self, eid: int) -> None:
        """Wait for a one-shot event (the matching acquire)."""
        self.system.event_wait(self.pid, eid)
