"""The shared data segment: allocation and symbol resolution.

CVM allocates all shared memory dynamically from a single shared segment —
that is what lets the instrumentation statically discard every access made
through the static-data base register (§5.1).  The allocator here is a
simple first-fit free-list over word addresses.  Named allocations populate
a symbol table; the race reporter uses it to turn a racy shared-segment
address into ``variable + offset``, the "reference identification" of §6.1.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AllocationError, SegmentationFault


@dataclass(frozen=True)
class Allocation:
    """One allocated block."""

    name: str
    addr: int
    nwords: int

    @property
    def end(self) -> int:
        return self.addr + self.nwords


class SharedSegment:
    """Word-addressed shared segment with a first-fit allocator."""

    def __init__(self, segment_words: int, page_size_words: int):
        if segment_words <= 0 or segment_words % page_size_words != 0:
            raise ValueError("segment must be a positive multiple of pages")
        self.segment_words = segment_words
        self.page_size_words = page_size_words
        #: Sorted list of free (addr, nwords) holes.
        self._free: List[Tuple[int, int]] = [(0, segment_words)]
        #: Allocations sorted by address (for bisect lookups).
        self._allocs: List[Allocation] = []
        self._alloc_starts: List[int] = []
        self._by_name: Dict[str, Allocation] = {}
        self._anon_counter = 0

    # ------------------------------------------------------------------ #
    # Allocation.
    # ------------------------------------------------------------------ #
    def malloc(self, nwords: int, name: Optional[str] = None,
               page_aligned: bool = False) -> int:
        """Allocate ``nwords`` words; returns the word address.

        Page alignment is available for data structures that the
        application wants to keep from false-sharing with neighbours (the
        apps use it for per-processor slabs, as real CVM programs do).
        """
        if nwords <= 0:
            raise AllocationError(f"allocation size must be positive, got {nwords}")
        if name is not None and name in self._by_name:
            raise AllocationError(f"duplicate allocation name {name!r}")
        align = self.page_size_words if page_aligned else 1
        for i, (addr, size) in enumerate(self._free):
            aligned = -(-addr // align) * align
            pad = aligned - addr
            if size >= pad + nwords:
                # Carve [aligned, aligned+nwords) out of the hole.
                del self._free[i]
                if pad:
                    self._free.insert(i, (addr, pad))
                    i += 1
                rest = size - pad - nwords
                if rest:
                    self._free.insert(i, (aligned + nwords, rest))
                return self._install(aligned, nwords, name)
        raise AllocationError(
            f"shared segment exhausted: cannot allocate {nwords} words")

    def _install(self, addr: int, nwords: int, name: Optional[str]) -> int:
        if name is None:
            name = f"__anon{self._anon_counter}"
            self._anon_counter += 1
        alloc = Allocation(name, addr, nwords)
        pos = bisect.bisect_left(self._alloc_starts, addr)
        self._allocs.insert(pos, alloc)
        self._alloc_starts.insert(pos, addr)
        self._by_name[name] = alloc
        return addr

    def free(self, addr: int) -> None:
        """Release a block (coalescing with adjacent holes)."""
        pos = bisect.bisect_left(self._alloc_starts, addr)
        if pos >= len(self._allocs) or self._allocs[pos].addr != addr:
            raise AllocationError(f"free of unallocated address {addr}")
        alloc = self._allocs.pop(pos)
        self._alloc_starts.pop(pos)
        del self._by_name[alloc.name]
        bisect.insort(self._free, (alloc.addr, alloc.nwords))
        self._coalesce()

    def _coalesce(self) -> None:
        merged: List[Tuple[int, int]] = []
        for addr, size in sorted(self._free):
            if merged and merged[-1][0] + merged[-1][1] == addr:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((addr, size))
        self._free = merged

    # ------------------------------------------------------------------ #
    # Lookup.
    # ------------------------------------------------------------------ #
    def block_of(self, addr: int) -> Allocation:
        """The allocation containing ``addr``; raises
        :class:`SegmentationFault` (pid -1, resolved by callers) if none."""
        pos = bisect.bisect_right(self._alloc_starts, addr) - 1
        if pos >= 0:
            alloc = self._allocs[pos]
            if alloc.addr <= addr < alloc.end:
                return alloc
        raise SegmentationFault(-1, addr)

    def check_range(self, addr: int, nwords: int) -> None:
        """Validate that [addr, addr+nwords) lies inside one allocation."""
        alloc = self.block_of(addr)
        if addr + nwords > alloc.end:
            raise SegmentationFault(
                -1, addr + nwords - 1,
                f"range runs off the end of {alloc.name!r}")

    def symbol_for(self, addr: int) -> str:
        """Human-readable ``name[+offset]`` for an address, or the raw
        address when it falls in no allocation (e.g. already freed)."""
        try:
            alloc = self.block_of(addr)
        except SegmentationFault:
            return f"0x{addr:x}"
        off = addr - alloc.addr
        return alloc.name if off == 0 else f"{alloc.name}+{off}"

    def lookup(self, name: str) -> Allocation:
        alloc = self._by_name.get(name)
        if alloc is None:
            raise AllocationError(f"no allocation named {name!r}")
        return alloc

    # ------------------------------------------------------------------ #
    # Metrics.
    # ------------------------------------------------------------------ #
    @property
    def allocated_words(self) -> int:
        return sum(a.nwords for a in self._allocs)

    @property
    def allocated_kbytes(self) -> float:
        """Shared-segment footprint in kbytes (8-byte words) — Table 1's
        "Memory Size" column."""
        return self.allocated_words * 8 / 1024.0

    @property
    def high_water_kbytes(self) -> float:
        """Highest address ever handed out, in kbytes."""
        if not self._allocs:
            return 0.0
        return max(a.end for a in self._allocs) * 8 / 1024.0

    def page_of(self, addr: int) -> int:
        return addr // self.page_size_words

    def page_offset(self, addr: int) -> int:
        return addr % self.page_size_words
