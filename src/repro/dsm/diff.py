"""Twin/diff machinery for the multi-writer LRC protocol.

In CVM's multi-writer protocol, a writer twins a page at its first write
after gaining write permission; at release time the modified page is
compared word-by-word against the twin and the differences are encoded as a
*diff*.  Faulting processes fetch and apply the diffs of every writer whose
interval happens-before their current view.

§6.5 of the paper observes that these diffs double as write-access records:
a system on the multi-writer protocol can skip store instrumentation and
derive write bitmaps from diffs — at the price of missing races in which a
value is overwritten with itself (the diff is empty there).  That trade-off
is reproduced by :func:`diff_to_bitmap` plus the
``diff_write_detection`` configuration flag.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.bitmap import Bitmap

#: A diff is a list of (word offset, new value) pairs, offset-sorted.
Diff = List[Tuple[int, int]]


def create_diff(twin: Sequence[int], current: Sequence[int]) -> Diff:
    """Word-by-word comparison of a page against its twin."""
    if len(twin) != len(current):
        raise ValueError("twin/page length mismatch")
    return [(i, cur) for i, (old, cur) in enumerate(zip(twin, current))
            if old != cur]


def apply_diff(data: List[int], diff: Diff) -> None:
    """Apply a diff to a page copy, in place."""
    n = len(data)
    for offset, value in diff:
        if not 0 <= offset < n:
            raise ValueError(f"diff offset {offset} outside page of {n} words")
        data[offset] = value


def diff_to_bitmap(diff: Diff, page_size_words: int) -> Bitmap:
    """Write bitmap derived from a diff (§6.5 write-detection mode).

    Words overwritten with an identical value do not appear in the diff and
    therefore are *not* set — the weaker guarantee the paper describes.
    """
    bm = Bitmap(page_size_words)
    for offset, _value in diff:
        bm.set(offset)
    return bm


def diff_wire_words(diff: Diff) -> int:
    """Number of changed words, used for wire-size accounting."""
    return len(diff)
