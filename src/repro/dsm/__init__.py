"""CVM-analogue distributed shared memory substrate.

This package reimplements, over the deterministic simulator, the parts of
the Coherent Virtual Machine (CVM) that the paper's race detector leverages:

* page-based shared memory with a global allocator and symbol table,
* lazy release consistency in both the single-writer protocol the paper's
  prototype used and the multi-writer (twin/diff) protocol its §6.5
  extension targets,
* *intervals* delimited by acquire/release operations, identified by vector
  timestamps and carrying write notices (and, with detection enabled, read
  notices),
* a lock manager and barrier master whose messages piggyback consistency
  information, exactly the channel the detector rides on.

The public entry point is :class:`repro.dsm.cvm.CVM`.
"""

from repro.dsm.config import DsmConfig
from repro.dsm.cvm import CVM, Env, RunResult
from repro.dsm.interval import Interval
from repro.dsm.vector_clock import VectorClock

__all__ = ["CVM", "DsmConfig", "Env", "Interval", "RunResult", "VectorClock"]
