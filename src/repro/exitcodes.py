"""Process exit codes of the single-run CLI (and fleet workers).

The mapping lets any shell caller — CI scripts, the fleet supervisor, a
cron wrapper — classify a run's outcome without parsing stdout:

====  =========================================================
code  meaning
====  =========================================================
0     clean run, no data races detected
1     run completed and data races were found (the product, not
      an error — mirrors ``grep``)
2     configuration error: the flag combination or input can
      never work; retrying is pointless
3     runtime failure or degraded result (crash, protocol error,
      replay divergence, unreadable trace...); possibly transient
4     wall-clock deadline exceeded (``--deadline``)
====  =========================================================

The fleet supervisor's retry policy keys off exactly these classes:
2 is permanently-failed, 3 and 4 are retried with backoff, and a worker
killed by a signal (negative returncode) counts toward the poison cap.
"""

from __future__ import annotations

EXIT_CLEAN = 0
EXIT_RACES = 1
EXIT_CONFIG = 2
EXIT_RUNTIME = 3
EXIT_TIMEOUT = 4


def classify_exception(exc: BaseException) -> int:
    """Exit code for an exception escaping a run.

    Order matters: :class:`~repro.errors.DeadlineExceeded` and
    :class:`~repro.errors.ConfigError` are both ``ReproError`` subclasses
    and must win over the generic runtime class; plain ``ValueError``
    covers :class:`~repro.dsm.config.DsmConfig`'s scalar validation.
    """
    from repro.errors import ConfigError, DeadlineExceeded, ReproError
    if isinstance(exc, DeadlineExceeded):
        return EXIT_TIMEOUT
    if isinstance(exc, (ConfigError, ValueError)):
        return EXIT_CONFIG
    if isinstance(exc, ReproError):
        return EXIT_RUNTIME
    return EXIT_RUNTIME
