"""AST for the miniature kernel language.

Application inner loops are written in this little C-like language and
compiled to the mini ISA, so that the instruction streams the ATOM-analogue
classifies are *derived from real programs* rather than invented counts.
The language distinguishes exactly the storage classes the paper's static
filter distinguishes:

* ``Local`` / ``LocalArr`` — stack storage (frame-pointer addressing);
* ``Static`` — statically allocated globals (global-pointer addressing);
* ``Deref`` — indirection through a pointer (dynamically allocated,
  potentially shared: these survive the filter and get instrumented);
* ``LocalArr`` with a non-constant index — stack data the compiler can no
  longer prove stack-resident once the address leaves the frame-pointer
  addressing mode; like the paper's basic-block-limited analysis, these
  are conservatively instrumented and account for the "false"
  instrumentations that dominate runtime analysis calls (§5.1, §6.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


class Expr:
    """Base class for expressions."""


@dataclass
class Const(Expr):
    value: int


@dataclass
class Local(Expr):
    """A scalar local variable (stack slot)."""

    name: str


@dataclass
class Param(Expr):
    """A function parameter (spilled to the frame at entry)."""

    name: str


@dataclass
class Static(Expr):
    """A statically-allocated global scalar."""

    name: str


@dataclass
class LocalArr(Expr):
    """Element of a stack-allocated array."""

    name: str
    index: Expr


@dataclass
class Deref(Expr):
    """``ptr[index]`` through a pointer value (dynamic, possibly shared)."""

    ptr: Expr
    index: Expr


@dataclass
class Bin(Expr):
    """Binary arithmetic/comparison: op in {+,-,*,/,&,|,^,<,==}."""

    op: str
    left: Expr
    right: Expr


@dataclass
class CallExpr(Expr):
    """Call a function and use its return value."""

    name: str
    args: Sequence[Expr] = ()


class Stmt:
    """Base class for statements."""


@dataclass
class Assign(Stmt):
    """``target = value`` where target is Local/Static/LocalArr/Deref."""

    target: Expr
    value: Expr


@dataclass
class For(Stmt):
    """``for (var = start; var < end; var += step) body``."""

    var: Local
    start: Expr
    end: Expr
    body: List[Stmt]
    step: int = 1


@dataclass
class While(Stmt):
    cond: Expr
    body: List[Stmt]


@dataclass
class If(Stmt):
    cond: Expr
    then: List[Stmt]
    orelse: List[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class KernelFunction:
    """One function: parameters, local declarations, body."""

    name: str
    params: Sequence[str] = ()
    locals_: Sequence[str] = ()
    #: (name, size) stack arrays.
    arrays: Sequence[Tuple[str, int]] = ()
    body: List[Stmt] = field(default_factory=list)


@dataclass
class KernelProgram:
    """A compilation unit: static globals plus functions."""

    name: str
    statics: Sequence[str] = ()
    functions: List[KernelFunction] = field(default_factory=list)
