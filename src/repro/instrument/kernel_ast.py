"""AST for the miniature kernel language.

Application inner loops are written in this little C-like language and
compiled to the mini ISA, so that the instruction streams the ATOM-analogue
classifies are *derived from real programs* rather than invented counts.
The language distinguishes exactly the storage classes the paper's static
filter distinguishes:

* ``Local`` / ``LocalArr`` — stack storage (frame-pointer addressing);
* ``Static`` — statically allocated globals (global-pointer addressing);
* ``Deref`` — indirection through a pointer (dynamically allocated,
  potentially shared: these survive the filter and get instrumented);
* ``LocalArr`` with a non-constant index — stack data the compiler can no
  longer prove stack-resident once the address leaves the frame-pointer
  addressing mode; like the paper's basic-block-limited analysis, these
  are conservatively instrumented and account for the "false"
  instrumentations that dominate runtime analysis calls (§5.1, §6.5).
* ``Field`` — access through a struct pointer (``p.next``): the offset is
  resolved at parse time against the struct table, the access itself is
  dynamic and therefore instrumented;
* ``New`` / ``Delete`` — dynamic shared-heap allocation, lowered to the
  per-pid bump/free-list allocator (``__heap_alloc`` / ``__heap_free``);
* ``AddrOf`` — the address of a declared variable; taking an address
  forces the variable to stay memory-homed under every register
  allocator, and accesses through the escaped pointer are conservatively
  instrumented;
* ``FuncRef`` / ``CallIndirect`` — first-class function values: a
  function-address constant (``Op.LA``) and a call through a register
  (``Op.CALLR``).

Every node carries an optional ``line`` (source line, 0 when built
programmatically); it is excluded from equality so hand-built and parsed
ASTs still compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


class Expr:
    """Base class for expressions."""


@dataclass
class Const(Expr):
    value: int


@dataclass
class Local(Expr):
    """A scalar local variable (stack slot)."""

    name: str


@dataclass
class Param(Expr):
    """A function parameter (spilled to the frame at entry)."""

    name: str


@dataclass
class Static(Expr):
    """A statically-allocated global scalar."""

    name: str


@dataclass
class LocalArr(Expr):
    """Element of a stack-allocated array."""

    name: str
    index: Expr


@dataclass
class Deref(Expr):
    """``ptr[index]`` through a pointer value (dynamic, possibly shared)."""

    ptr: Expr
    index: Expr


@dataclass
class Bin(Expr):
    """Binary arithmetic/comparison: op in {+,-,*,/,&,|,^,<,==}."""

    op: str
    left: Expr
    right: Expr


@dataclass
class CallExpr(Expr):
    """Call a function and use its return value."""

    name: str
    args: Sequence[Expr] = ()


@dataclass
class Field(Expr):
    """``obj.field`` through a struct pointer.

    The parser resolves ``offset`` against the struct table at parse
    time, so the compiler lowers this without any type knowledge: the
    effective address is ``value(obj) + offset``.
    """

    obj: Expr
    name: str
    offset: int = 0
    line: int = field(default=0, compare=False)


@dataclass
class AddrOf(Expr):
    """``&name`` — the address of a declared variable or array."""

    name: str
    line: int = field(default=0, compare=False)


@dataclass
class New(Expr):
    """``new Type`` or ``new [count]`` — shared-heap allocation.

    ``size`` is the word count (the struct's field count, resolved by
    the parser, or the bracketed expression); ``struct`` names the type
    for diagnostics when the allocation is typed.
    """

    size: Expr = None  # type: ignore[assignment]
    struct: Optional[str] = None
    line: int = field(default=0, compare=False)


@dataclass
class FuncRef(Expr):
    """A function used as a value (its address)."""

    name: str
    line: int = field(default=0, compare=False)


@dataclass
class CallIndirect(Expr):
    """Call through a function value: ``fnptr(args)``."""

    func: Expr = None  # type: ignore[assignment]
    args: Sequence[Expr] = ()
    line: int = field(default=0, compare=False)


class Stmt:
    """Base class for statements."""


@dataclass
class Assign(Stmt):
    """``target = value`` where target is Local/Static/LocalArr/Deref/
    Field."""

    target: Expr
    value: Expr
    line: int = field(default=0, compare=False)


@dataclass
class For(Stmt):
    """``for (var = start; var < end; var += step) body``."""

    var: Local
    start: Expr
    end: Expr
    body: List[Stmt]
    step: int = 1
    line: int = field(default=0, compare=False)


@dataclass
class While(Stmt):
    cond: Expr
    body: List[Stmt]
    line: int = field(default=0, compare=False)


@dataclass
class If(Stmt):
    cond: Expr
    then: List[Stmt]
    orelse: List[Stmt] = field(default_factory=list)
    line: int = field(default=0, compare=False)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None
    line: int = field(default=0, compare=False)


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    line: int = field(default=0, compare=False)


@dataclass
class Delete(Stmt):
    """``delete expr;`` — return a heap block to the free list."""

    target: Expr
    line: int = field(default=0, compare=False)


@dataclass
class StructDef:
    """A struct declaration: ordered one-word fields, with optional
    struct-typed fields (``next: Node``) so chained field access
    (``p.next.val``) type-checks."""

    name: str
    fields: Sequence[str] = ()
    #: field name -> struct type name, for struct-typed fields only.
    field_types: "dict" = field(default_factory=dict)
    line: int = field(default=0, compare=False)

    @property
    def size(self) -> int:
        return len(self.fields)

    def offset_of(self, fname: str) -> Optional[int]:
        for i, f in enumerate(self.fields):
            if f == fname:
                return i
        return None


@dataclass
class KernelFunction:
    """One function: parameters, local declarations, body."""

    name: str
    params: Sequence[str] = ()
    locals_: Sequence[str] = ()
    #: (name, size) stack arrays.
    arrays: Sequence[Tuple[str, int]] = ()
    body: List[Stmt] = field(default_factory=list)
    #: variable name -> struct type name, for pointer-typed declarations.
    var_types: "dict" = field(default_factory=dict, compare=False)
    line: int = field(default=0, compare=False)


@dataclass
class KernelProgram:
    """A compilation unit: static globals plus functions."""

    name: str
    statics: Sequence[str] = ()
    functions: List[KernelFunction] = field(default_factory=list)
    structs: Sequence[StructDef] = field(default=(), compare=False)
