"""Register allocation for the kernel compiler.

Two bindings share one interface (``take``/``give``):

* :class:`NaiveBinding` replays the historical expression-stack
  discipline of the deleted ``_RegPool`` — physical temporaries handed
  out lowest-index-first, returned LIFO — so the default pipeline's
  generated code (and therefore every paper table derived from it) is
  byte-identical to what the single-pass compiler always produced.  Its
  exhaustion error keeps the old contract, upgraded to name the function
  and source line.

* :class:`VirtualBinding` hands out unbounded virtual registers
  (``%0``, ``%1``, …); the compiler then emits three-address code with
  register-homed scalars, and :func:`bind_registers` lowers the virtual
  code onto the physical temporaries with a liveness-driven linear scan
  (Poletto & Sarkar), spilling to fresh frame slots when pressure
  exceeds the register file.

Why call-crossing virtual registers need no special handling: each
function activation in :mod:`repro.instrument.machine` owns a private
register file (``_call`` builds a fresh ``regs`` dict per frame), so a
callee can never clobber a caller's temporaries.  Calls here are not a
kill site — which is precisely what lets register-homed loop variables
survive the call-heavy kernels and cuts their load/store traffic.

Spill code is deliberately fp-relative (``ld/st …(fp)``): the static
filter classifies every spill access as stack-private, so better
register allocation never inflates the instrumented-access counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import CompileError
from repro.instrument.isa import (ALU_OPS, FP, TEMP_REGS, Function,
                                  Instruction, Op)

#: Physical registers linear scan may assign.  The last two temporaries
#: are reserved as spill scratch so a spilled operand can always be
#: materialized without evicting a live value.
SPILL_SCRATCH: Tuple[str, ...] = TEMP_REGS[-2:]
ALLOCATABLE: Tuple[str, ...] = TEMP_REGS[:-2]

#: Virtual registers are ``%N`` — a prefix no physical register uses
#: (``v0`` is the return-value register, so a bare ``v`` would clash).
VREG_PREFIX = "%"


def is_vreg(reg: Optional[str]) -> bool:
    return bool(reg) and reg.startswith(VREG_PREFIX)


class NaiveBinding:
    """Expression-stack temporary binding (the historical discipline)."""

    #: Scalars stay memory-homed; every reference loads, every
    #: assignment stores — the paper-faithful unoptimized codegen.
    registers_variables = False

    def __init__(self, context: Callable[[], Tuple[str, int]]):
        self._free = list(reversed(TEMP_REGS))
        self._context = context

    def take(self) -> str:
        if not self._free:
            fn_name, line = self._context()
            where = f" at line {line}" if line else ""
            raise CompileError(
                f"function {fn_name!r}{where}: expression too deep: "
                "out of temporary registers")
        return self._free.pop()

    def give(self, reg: str) -> None:
        if reg in TEMP_REGS:
            self._free.append(reg)


class VirtualBinding:
    """Unbounded virtual registers; bound later by linear scan."""

    registers_variables = True

    def __init__(self, context: Callable[[], Tuple[str, int]]):
        self._n = 0

    def take(self) -> str:
        reg = f"{VREG_PREFIX}{self._n}"
        self._n += 1
        return reg

    def give(self, reg: str) -> None:  # liveness decides lifetimes
        pass


# --------------------------------------------------------------------- #
# Dataflow: def/use sets, control flow, liveness.
# --------------------------------------------------------------------- #
def _def_use(ins: Instruction) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(defined, used) register names of one instruction."""
    op = ins.op
    if op is Op.ST:
        uses = tuple(r for r in (ins.reg, ins.base) if r)
        return (), uses
    if op is Op.LD:
        return ((ins.reg,) if ins.reg else ()), \
            ((ins.base,) if ins.base else ())
    if op in (Op.LI, Op.LA):
        return ((ins.reg,) if ins.reg else ()), ()
    if op is Op.MOV:
        return ((ins.reg,) if ins.reg else ()), ins.srcs
    if op in ALU_OPS:
        return ((ins.reg,) if ins.reg else ()), ins.srcs
    if op in (Op.BEQZ, Op.BNEZ, Op.CALLR):
        return (), ins.srcs
    return (), ()


def _blocks_and_successors(
        code: Sequence[Instruction]
) -> Tuple[List[Tuple[int, int]], Dict[int, List[int]]]:
    """Basic blocks of a linear instruction list and the CFG over them."""
    starts = {0}
    labels: Dict[str, int] = {}
    for i, ins in enumerate(code):
        if ins.op is Op.LABEL:
            starts.add(i)
            labels[ins.target] = i
        if ins.op in (Op.BEQZ, Op.BNEZ, Op.J, Op.RET) and i + 1 < len(code):
            starts.add(i + 1)
    ordered = sorted(starts)
    blocks = [(s, e) for s, e in
              zip(ordered, ordered[1:] + [len(code)]) if s < e]
    block_of = {}
    for bi, (s, e) in enumerate(blocks):
        for i in range(s, e):
            block_of[i] = bi
    succs: Dict[int, List[int]] = {bi: [] for bi in range(len(blocks))}
    for bi, (s, e) in enumerate(blocks):
        last = code[e - 1]
        if last.op is Op.RET:
            continue
        if last.op is Op.J:
            succs[bi].append(block_of[labels[last.target]])
            continue
        if last.op in (Op.BEQZ, Op.BNEZ):
            succs[bi].append(block_of[labels[last.target]])
        if e < len(code):
            succs[bi].append(block_of[e])
    return blocks, succs


def _liveness(code: Sequence[Instruction]
              ) -> Tuple[List[Set[str]], List[Set[str]]]:
    """Per-block (live_in, live_out) of virtual registers (fixpoint)."""
    blocks, succs = _blocks_and_successors(code)
    gen: List[Set[str]] = []
    kill: List[Set[str]] = []
    for s, e in blocks:
        g: Set[str] = set()
        k: Set[str] = set()
        for i in range(s, e):
            defs, uses = _def_use(code[i])
            for u in uses:
                if is_vreg(u) and u not in k:
                    g.add(u)
            for d in defs:
                if is_vreg(d):
                    k.add(d)
        gen.append(g)
        kill.append(k)
    live_in = [set() for _ in blocks]  # type: List[Set[str]]
    live_out = [set() for _ in blocks]  # type: List[Set[str]]
    changed = True
    while changed:
        changed = False
        for bi in range(len(blocks) - 1, -1, -1):
            out: Set[str] = set()
            for sb in succs[bi]:
                out |= live_in[sb]
            inn = gen[bi] | (out - kill[bi])
            if out != live_out[bi] or inn != live_in[bi]:
                live_out[bi], live_in[bi] = out, inn
                changed = True
    return live_in, live_out


@dataclass
class Interval:
    """Live interval of one virtual register over instruction indices."""

    vreg: str
    start: int
    end: int


def live_intervals(code: Sequence[Instruction]) -> List[Interval]:
    """Conservative linear-scan intervals: [first, last] position where
    the vreg is defined, used, or live across a block boundary."""
    blocks, _succs = _blocks_and_successors(code)
    live_in, live_out = _liveness(code)
    lo: Dict[str, int] = {}
    hi: Dict[str, int] = {}

    def touch(v: str, pos: int) -> None:
        if v not in lo or pos < lo[v]:
            lo[v] = pos
        if v not in hi or pos > hi[v]:
            hi[v] = pos

    for bi, (s, e) in enumerate(blocks):
        for v in live_in[bi]:
            touch(v, s)
        for v in live_out[bi]:
            touch(v, e - 1)
        for i in range(s, e):
            defs, uses = _def_use(code[i])
            for r in defs + tuple(uses):
                if is_vreg(r):
                    touch(r, i)
    out = [Interval(v, lo[v], hi[v]) for v in lo]
    out.sort(key=lambda iv: (iv.start, iv.end, iv.vreg))
    return out


# --------------------------------------------------------------------- #
# Linear scan (Poletto & Sarkar) with spill slots.
# --------------------------------------------------------------------- #
@dataclass
class AllocationReport:
    """What binding one function cost."""

    function: str
    vregs: int = 0
    spilled: int = 0
    spill_slots: int = 0


def _scan(intervals: List[Interval],
          registers: Sequence[str]) -> Tuple[Dict[str, str], Dict[str, int]]:
    """Assign each interval a register or a spill-slot index."""
    assign: Dict[str, str] = {}
    slots: Dict[str, int] = {}
    free = list(reversed(registers))  # pop() yields registers[0] first
    active: List[Interval] = []      # sorted by end
    next_slot = 0
    for iv in intervals:
        # Expire intervals that ended before this one starts.
        while active and active[0].end < iv.start:
            free.append(assign[active.pop(0).vreg])
        if free:
            assign[iv.vreg] = free.pop()
        else:
            # Spill the interval with the furthest end.
            victim = active[-1]
            if victim.end > iv.end:
                assign[iv.vreg] = assign.pop(victim.vreg)
                slots[victim.vreg] = next_slot
                active.pop()
            else:
                slots[iv.vreg] = next_slot
                next_slot += 1
                continue
            next_slot += 1
        active.append(iv)
        active.sort(key=lambda a: a.end)
    return assign, slots


def bind_registers(fn: Function,
                   registers: Sequence[str] = ALLOCATABLE,
                   scratch: Sequence[str] = SPILL_SCRATCH
                   ) -> Tuple[Function, AllocationReport]:
    """Lower a virtual-register function onto physical registers.

    Returns the rewritten function (spill slots appended to the frame)
    and a report.  Functions with no virtual registers pass through
    untouched.
    """
    code = list(fn.instructions)
    intervals = live_intervals(code)
    report = AllocationReport(fn.name, vregs=len(intervals))
    if not intervals:
        return fn, report
    assign, slots = _scan(intervals, registers)
    report.spilled = len(slots)
    report.spill_slots = len(set(slots.values()))
    slot_base = fn.frame_words

    out: List[Instruction] = []
    for ins in code:
        defs, uses = _def_use(ins)
        vregs_here = [r for r in set(defs) | set(uses) if is_vreg(r)]
        if not vregs_here:
            out.append(ins)
            continue
        mapping: Dict[str, str] = {}
        pre: List[Instruction] = []
        post: List[Instruction] = []
        scratch_free = list(scratch)
        # Sources first: spilled operands load into scratch.
        for r in uses:
            if not is_vreg(r) or r in mapping:
                continue
            if r in assign:
                mapping[r] = assign[r]
            else:
                if not scratch_free:  # pragma: no cover - 2 srcs max
                    raise CompileError(
                        f"{fn.name}: out of spill scratch registers")
                s = scratch_free.pop(0)
                mapping[r] = s
                pre.append(Instruction(
                    Op.LD, reg=s, base=FP,
                    offset=slot_base + slots[r], origin=ins.origin))
        for r in defs:
            if not is_vreg(r) or r in mapping:
                if is_vreg(r) and r in mapping and r in slots:
                    # Dest doubles as a spilled source: rewrite in the
                    # scratch it already occupies, then store back.
                    post.append(Instruction(
                        Op.ST, reg=mapping[r], base=FP,
                        offset=slot_base + slots[r], origin=ins.origin))
                continue
            if r in assign:
                mapping[r] = assign[r]
            else:
                s = scratch_free.pop(0) if scratch_free else scratch[0]
                mapping[r] = s
                post.append(Instruction(
                    Op.ST, reg=s, base=FP,
                    offset=slot_base + slots[r], origin=ins.origin))

        def sub(r: Optional[str]) -> Optional[str]:
            return mapping.get(r, r) if r else r

        out.extend(pre)
        out.append(Instruction(
            ins.op, reg=sub(ins.reg),
            srcs=tuple(sub(s) for s in ins.srcs), base=sub(ins.base),
            offset=ins.offset, imm=ins.imm, target=ins.target,
            origin=ins.origin))
        out.extend(post)

    frame = fn.frame_words + report.spill_slots
    return (Function(fn.name, out, fn.section, frame_words=frame), report)
