"""Compiler from the kernel language to the mini ISA.

Two register-allocation modes share one lowering:

* ``regalloc="naive"`` (default) — the paper-faithful single-pass code
  generation (no CSE, no register caching of memory values): every
  variable reference becomes a load and every assignment a store, with
  temporaries bound by the historical expression-stack discipline
  (:class:`repro.instrument.regalloc.NaiveBinding`).  This is what the
  unoptimized RISC code ATOM actually saw, and what every paper table is
  pinned to.

* ``regalloc="linear"`` — three-address code over unbounded virtual
  registers with scalar locals and parameters *register-homed* (no
  per-reference load/store traffic), bound onto the physical register
  file by the liveness-driven linear scan in
  :mod:`repro.instrument.regalloc`, spilling to fresh frame slots under
  pressure.  Variables whose address is taken (``&x``) stay
  memory-homed, as do arrays and statics.

Addressing-mode rules (what the static filter later keys on):

* scalar locals, params, const-indexed stack arrays → ``off(fp)``
* static globals → ``off(gp)``
* pointer dereferences and struct fields → compute address into a temp,
  ``field_offset(t)``
* variable-indexed stack arrays → the address is computed (``fp`` + index)
  into a temp register, so the frame-pointer provenance is lost to a
  basic-block-local analysis; the access is conservatively treated as
  potentially shared, exactly the paper's false-instrumentation source.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import CompileError
from repro.instrument import kernel_ast as K
from repro.instrument.isa import (ARG_REGS, FP, GP, RV, Function,
                                  Instruction, ObjectFile, Op, Section)
from repro.instrument.regalloc import (NaiveBinding, VirtualBinding,
                                       bind_registers)

_BINOPS = {
    "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV,
    "&": Op.AND, "|": Op.OR, "^": Op.XOR, "<": Op.SLT, "==": Op.SEQ,
}

#: The allocator intrinsics ``new``/``delete`` lower to.
HEAP_ALLOC = "__heap_alloc"
HEAP_FREE = "__heap_free"

REGALLOC_MODES = ("naive", "linear")


def _addressed_names(stmts) -> Set[str]:
    """Names whose address is taken anywhere in a statement list — these
    must stay memory-homed under every allocator."""
    out: Set[str] = set()

    def walk_expr(e: K.Expr) -> None:
        if isinstance(e, K.AddrOf):
            out.add(e.name)
        elif isinstance(e, K.Bin):
            walk_expr(e.left)
            walk_expr(e.right)
        elif isinstance(e, (K.LocalArr, K.Deref)):
            idx = e.index
            walk_expr(idx)
            if isinstance(e, K.Deref):
                walk_expr(e.ptr)
        elif isinstance(e, K.Field):
            walk_expr(e.obj)
        elif isinstance(e, K.CallExpr):
            for a in e.args:
                walk_expr(a)
        elif isinstance(e, K.CallIndirect):
            walk_expr(e.func)
            for a in e.args:
                walk_expr(a)
        elif isinstance(e, K.New):
            walk_expr(e.size)

    def walk_stmt(s: K.Stmt) -> None:
        if isinstance(s, K.Assign):
            walk_expr(s.target)
            walk_expr(s.value)
        elif isinstance(s, K.For):
            walk_expr(s.start)
            walk_expr(s.end)
            for sub in s.body:
                walk_stmt(sub)
        elif isinstance(s, K.While):
            walk_expr(s.cond)
            for sub in s.body:
                walk_stmt(sub)
        elif isinstance(s, K.If):
            walk_expr(s.cond)
            for sub in s.then:
                walk_stmt(sub)
            for sub in s.orelse:
                walk_stmt(sub)
        elif isinstance(s, K.Return):
            if s.value is not None:
                walk_expr(s.value)
        elif isinstance(s, K.ExprStmt):
            walk_expr(s.expr)
        elif isinstance(s, K.Delete):
            walk_expr(s.target)

    for s in stmts:
        walk_stmt(s)
    return out


class _FunctionCompiler:
    def __init__(self, program: K.KernelProgram, fn: K.KernelFunction,
                 static_offsets: Dict[str, int], regalloc: str = "naive"):
        self.program = program
        self.fn = fn
        self.static_offsets = static_offsets
        self.code: List[Instruction] = []
        self.cur_line = getattr(fn, "line", 0)
        self.regs = (VirtualBinding(self._context)
                     if regalloc == "linear"
                     else NaiveBinding(self._context))
        self.linear = self.regs.registers_variables
        self._label_counter = 0
        addressed = _addressed_names(fn.body) if self.linear else None
        # Frame layout: params first, then scalars, then arrays.  In
        # linear mode, scalars that never have their address taken get a
        # virtual-register home instead of a frame slot.
        self.frame: Dict[str, int] = {}
        self.array_base: Dict[str, int] = {}
        self.home: Dict[str, str] = {}
        slot = 0
        for p in fn.params:
            if self.linear and p not in addressed:
                self.home[p] = self.regs.take()
            else:
                self.frame[p] = slot
                slot += 1
        for name in fn.locals_:
            if name in self.frame or name in self.home:
                raise CompileError(f"{fn.name}: duplicate local {name!r}")
            if self.linear and name not in addressed:
                self.home[name] = self.regs.take()
            else:
                self.frame[name] = slot
                slot += 1
        for name, size in fn.arrays:
            if name in self.frame or name in self.array_base \
                    or name in self.home:
                raise CompileError(f"{fn.name}: duplicate array {name!r}")
            if size <= 0:
                raise CompileError(f"{fn.name}: array {name!r} size must be > 0")
            self.array_base[name] = slot
            slot += size
        self.frame_words = slot

    def _context(self) -> Tuple[str, int]:
        """(function, source line) for allocator diagnostics."""
        return self.fn.name, self.cur_line

    # ------------------------------------------------------------------ #
    def compile(self) -> Function:
        # Prologue: move incoming arguments to their homes (frame slots,
        # or registers in linear mode).
        for i, p in enumerate(self.fn.params):
            if i >= len(ARG_REGS):
                raise CompileError(f"{self.fn.name}: too many parameters")
            if p in self.home:
                self.emit(Op.MOV, reg=self.home[p], srcs=(ARG_REGS[i],),
                          origin=f"{self.fn.name}:prologue")
            else:
                self.emit(Op.ST, reg=ARG_REGS[i], base=FP,
                          offset=self.frame[p],
                          origin=f"{self.fn.name}:prologue")
        for stmt in self.fn.body:
            self.stmt(stmt)
        if not self.code or self.code[-1].op is not Op.RET:
            self.emit(Op.RET)
        return Function(self.fn.name, self.code, Section.APP,
                        frame_words=self.frame_words)

    def emit(self, op: Op, **kw) -> Instruction:
        ins = Instruction(op, **kw)
        self.code.append(ins)
        return ins

    def new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{self.fn.name}.{hint}{self._label_counter}"

    # ------------------------------------------------------------------ #
    # Expressions: return the register holding the value.
    # ------------------------------------------------------------------ #
    def expr(self, e: K.Expr, origin: str = "") -> str:
        line = getattr(e, "line", 0)
        if line:
            self.cur_line = line
        if isinstance(e, K.Const):
            r = self.regs.take()
            self.emit(Op.LI, reg=r, imm=e.value, origin=origin)
            return r
        if isinstance(e, (K.Local, K.Param)):
            home = self.home.get(e.name)
            if home is not None:
                return home
            slot = self.frame.get(e.name)
            if slot is None:
                raise CompileError(f"{self.fn.name}: unknown local {e.name!r}")
            r = self.regs.take()
            self.emit(Op.LD, reg=r, base=FP, offset=slot, origin=origin)
            return r
        if isinstance(e, K.Static):
            off = self.static_offsets.get(e.name)
            if off is None:
                raise CompileError(
                    f"{self.fn.name}: unknown static {e.name!r}")
            r = self.regs.take()
            self.emit(Op.LD, reg=r, base=GP, offset=off, origin=origin)
            return r
        if isinstance(e, K.LocalArr):
            return self._local_arr_load(e, origin)
        if isinstance(e, K.Deref):
            addr = self._address_of_deref(e, origin)
            dest = self.regs.take() if self.linear else addr
            self.emit(Op.LD, reg=dest, base=addr, offset=0, origin=origin)
            return dest
        if isinstance(e, K.Field):
            obj = self.expr(e.obj, origin)
            dest = self.regs.take() if self.linear else obj
            self.emit(Op.LD, reg=dest, base=obj, offset=e.offset,
                      origin=origin or f"{self.fn.name}:field.{e.name}")
            return dest
        if isinstance(e, K.AddrOf):
            return self._addr_of(e, origin)
        if isinstance(e, K.New):
            self._emit_args([e.size], origin)
            self.emit(Op.CALL, target=HEAP_ALLOC, origin=origin)
            r = self.regs.take()
            self.emit(Op.MOV, reg=r, srcs=(RV,), origin=origin)
            return r
        if isinstance(e, K.FuncRef):
            r = self.regs.take()
            self.emit(Op.LA, reg=r, target=e.name, origin=origin)
            return r
        if isinstance(e, K.Bin):
            op = _BINOPS.get(e.op)
            if op is None:
                raise CompileError(f"unknown operator {e.op!r}")
            left = self.expr(e.left, origin)
            right = self.expr(e.right, origin)
            if self.linear:
                dest = self.regs.take()
                self.emit(op, reg=dest, srcs=(left, right), origin=origin)
                return dest
            self.emit(op, reg=left, srcs=(left, right), origin=origin)
            self.regs.give(right)
            return left
        if isinstance(e, K.CallExpr):
            self._emit_call(e, origin)
            r = self.regs.take()
            self.emit(Op.MOV, reg=r, srcs=(RV,), origin=origin)
            return r
        if isinstance(e, K.CallIndirect):
            self._emit_call_indirect(e, origin)
            r = self.regs.take()
            self.emit(Op.MOV, reg=r, srcs=(RV,), origin=origin)
            return r
        raise CompileError(f"cannot compile expression {e!r}")

    def _local_arr_load(self, e: K.LocalArr, origin: str) -> str:
        base = self.array_base.get(e.name)
        if base is None:
            raise CompileError(f"{self.fn.name}: unknown array {e.name!r}")
        if isinstance(e.index, K.Const):
            # Constant index: stays fp-relative, provably stack.
            r = self.regs.take()
            self.emit(Op.LD, reg=r, base=FP, offset=base + e.index.value,
                      origin=origin)
            return r
        # Computed index: address leaves fp-relative form; the filter will
        # conservatively instrument this (it is in fact private).
        addr = self._local_arr_addr(e, base, origin)
        dest = self.regs.take() if self.linear else addr
        self.emit(Op.LD, reg=dest, base=addr, offset=0, origin=origin)
        return dest

    def _local_arr_addr(self, e: K.LocalArr, base: int, origin: str) -> str:
        """fp + base + index into a register (variable-indexed access)."""
        idx = self.expr(e.index, origin)
        tmp = self.regs.take()
        self.emit(Op.LI, reg=tmp, imm=base, origin=origin)
        if self.linear:
            s1 = self.regs.take()
            self.emit(Op.ADD, reg=s1, srcs=(idx, tmp), origin=origin)
            addr = self.regs.take()
            self.emit(Op.ADD, reg=addr, srcs=(s1, FP), origin=origin)
            return addr
        self.emit(Op.ADD, reg=idx, srcs=(idx, tmp), origin=origin)
        self.emit(Op.ADD, reg=idx, srcs=(idx, FP), origin=origin)
        self.regs.give(tmp)
        return idx

    def _address_of_deref(self, e: K.Deref, origin: str) -> str:
        ptr = self.expr(e.ptr, origin)
        idx = self.expr(e.index, origin)
        if self.linear:
            addr = self.regs.take()
            self.emit(Op.ADD, reg=addr, srcs=(ptr, idx), origin=origin)
            return addr
        self.emit(Op.ADD, reg=ptr, srcs=(ptr, idx), origin=origin)
        self.regs.give(idx)
        return ptr

    def _addr_of(self, e: K.AddrOf, origin: str) -> str:
        """&name — materialize a variable's address.  The address leaves
        fp/gp-relative form, so accesses through it are conservatively
        instrumented (the sound direction)."""
        if e.name in self.array_base:
            slot, base_reg = self.array_base[e.name], FP
        elif e.name in self.frame:
            slot, base_reg = self.frame[e.name], FP
        elif e.name in self.static_offsets:
            slot, base_reg = self.static_offsets[e.name], GP
        else:
            raise CompileError(
                f"{self.fn.name}: line {e.line}: cannot take the address "
                f"of {e.name!r} (register-homed or undeclared)")
        tmp = self.regs.take()
        self.emit(Op.LI, reg=tmp, imm=slot, origin=origin)
        if self.linear:
            dest = self.regs.take()
            self.emit(Op.ADD, reg=dest, srcs=(tmp, base_reg), origin=origin)
            return dest
        self.emit(Op.ADD, reg=tmp, srcs=(tmp, base_reg), origin=origin)
        return tmp

    def _emit_args(self, args, origin: str) -> None:
        if len(args) > len(ARG_REGS):
            raise CompileError(f"{self.fn.name}: too many arguments")
        arg_regs: List[str] = []
        for a in args:
            arg_regs.append(self.expr(a, origin))
        for i, r in enumerate(arg_regs):
            self.emit(Op.MOV, reg=ARG_REGS[i], srcs=(r,), origin=origin)
            self.regs.give(r)

    def _emit_call(self, e: K.CallExpr, origin: str) -> None:
        if len(e.args) > len(ARG_REGS):
            raise CompileError(f"call {e.name!r}: too many arguments")
        self._emit_args(e.args, origin)
        self.emit(Op.CALL, target=e.name, origin=origin)

    def _emit_call_indirect(self, e: K.CallIndirect, origin: str) -> None:
        if len(e.args) > len(ARG_REGS):
            raise CompileError(
                f"{self.fn.name}: indirect call: too many arguments")
        freg = self.expr(e.func, origin)
        self._emit_args(e.args, origin)
        self.emit(Op.CALLR, srcs=(freg,), origin=origin)
        self.regs.give(freg)

    # ------------------------------------------------------------------ #
    # Statements.
    # ------------------------------------------------------------------ #
    def stmt(self, s: K.Stmt) -> None:
        line = getattr(s, "line", 0)
        if line:
            self.cur_line = line
        origin = f"{self.fn.name}:{type(s).__name__}"
        if isinstance(s, K.Assign):
            self._assign(s, origin)
        elif isinstance(s, K.For):
            self._for(s, origin)
        elif isinstance(s, K.While):
            self._while(s, origin)
        elif isinstance(s, K.If):
            self._if(s, origin)
        elif isinstance(s, K.Return):
            if s.value is not None:
                r = self.expr(s.value, origin)
                self.emit(Op.MOV, reg=RV, srcs=(r,), origin=origin)
                self.regs.give(r)
            self.emit(Op.RET, origin=origin)
        elif isinstance(s, K.ExprStmt):
            if isinstance(s.expr, K.CallExpr):
                self._emit_call(s.expr, origin)
            elif isinstance(s.expr, K.CallIndirect):
                self._emit_call_indirect(s.expr, origin)
            else:
                r = self.expr(s.expr, origin)
                self.regs.give(r)
        elif isinstance(s, K.Delete):
            self._emit_args([s.target], origin)
            self.emit(Op.CALL, target=HEAP_FREE, origin=origin)
        else:
            raise CompileError(f"cannot compile statement {s!r}")

    def _assign(self, s: K.Assign, origin: str) -> None:
        value = self.expr(s.value, origin)
        t = s.target
        if isinstance(t, (K.Local, K.Param)):
            home = self.home.get(t.name)
            if home is not None:
                self.emit(Op.MOV, reg=home, srcs=(value,), origin=origin)
                return
            slot = self.frame.get(t.name)
            if slot is None:
                raise CompileError(f"{self.fn.name}: unknown local {t.name!r}")
            self.emit(Op.ST, reg=value, base=FP, offset=slot, origin=origin)
        elif isinstance(t, K.Static):
            off = self.static_offsets.get(t.name)
            if off is None:
                raise CompileError(f"{self.fn.name}: unknown static {t.name!r}")
            self.emit(Op.ST, reg=value, base=GP, offset=off, origin=origin)
        elif isinstance(t, K.LocalArr):
            base = self.array_base.get(t.name)
            if base is None:
                raise CompileError(f"{self.fn.name}: unknown array {t.name!r}")
            if isinstance(t.index, K.Const):
                self.emit(Op.ST, reg=value, base=FP,
                          offset=base + t.index.value, origin=origin)
            else:
                addr = self._local_arr_addr(t, base, origin)
                self.emit(Op.ST, reg=value, base=addr, offset=0,
                          origin=origin)
                self.regs.give(addr)
        elif isinstance(t, K.Deref):
            addr = self._address_of_deref(t, origin)
            self.emit(Op.ST, reg=value, base=addr, offset=0, origin=origin)
            self.regs.give(addr)
        elif isinstance(t, K.Field):
            obj = self.expr(t.obj, origin)
            self.emit(Op.ST, reg=value, base=obj, offset=t.offset,
                      origin=origin or f"{self.fn.name}:field.{t.name}")
            self.regs.give(obj)
        else:
            raise CompileError(f"cannot assign to {t!r}")
        self.regs.give(value)

    def _for(self, s: K.For, origin: str) -> None:
        # var = start
        self._assign(K.Assign(s.var, s.start), origin)
        head = self.new_label("for_head")
        done = self.new_label("for_done")
        self.emit(Op.LABEL, target=head)
        cond = self.expr(K.Bin("<", s.var, s.end), origin)
        self.emit(Op.BEQZ, srcs=(cond,), target=done, origin=origin)
        self.regs.give(cond)
        for sub in s.body:
            self.stmt(sub)
        self._assign(K.Assign(s.var, K.Bin("+", s.var, K.Const(s.step))),
                     origin)
        self.emit(Op.J, target=head, origin=origin)
        self.emit(Op.LABEL, target=done)

    def _while(self, s: K.While, origin: str) -> None:
        head = self.new_label("while_head")
        done = self.new_label("while_done")
        self.emit(Op.LABEL, target=head)
        cond = self.expr(s.cond, origin)
        self.emit(Op.BEQZ, srcs=(cond,), target=done, origin=origin)
        self.regs.give(cond)
        for sub in s.body:
            self.stmt(sub)
        self.emit(Op.J, target=head, origin=origin)
        self.emit(Op.LABEL, target=done)

    def _if(self, s: K.If, origin: str) -> None:
        els = self.new_label("else")
        done = self.new_label("endif")
        cond = self.expr(s.cond, origin)
        self.emit(Op.BEQZ, srcs=(cond,), target=els, origin=origin)
        self.regs.give(cond)
        for sub in s.then:
            self.stmt(sub)
        self.emit(Op.J, target=done, origin=origin)
        self.emit(Op.LABEL, target=els)
        for sub in s.orelse:
            self.stmt(sub)
        self.emit(Op.LABEL, target=done)


def compile_kernel(program: K.KernelProgram,
                   regalloc: str = "naive") -> ObjectFile:
    """Compile a kernel program into an object file (APP section).

    ``regalloc`` selects the register allocator: ``"naive"`` (the
    paper-faithful expression-stack discipline) or ``"linear"``
    (liveness-driven linear scan with register-homed scalars).
    """
    if regalloc not in REGALLOC_MODES:
        raise CompileError(
            f"unknown regalloc mode {regalloc!r}; expected one of "
            f"{REGALLOC_MODES}")
    static_offsets = {name: i for i, name in enumerate(program.statics)}
    obj = ObjectFile(program.name)
    seen = set()
    for fn in program.functions:
        if fn.name in seen:
            raise CompileError(f"duplicate function {fn.name!r}")
        seen.add(fn.name)
        compiled = _FunctionCompiler(program, fn, static_offsets,
                                     regalloc=regalloc).compile()
        if regalloc == "linear":
            compiled, _report = bind_registers(compiled)
        obj.add(compiled)
    return obj
