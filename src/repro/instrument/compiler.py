"""Compiler from the kernel language to the mini ISA.

Deliberately naive single-pass code generation (no CSE, no register
caching of memory values): every variable reference becomes a load and
every assignment a store, with the addressing mode determined by the
storage class.  That is faithful to what matters here — the *classifiable
addressing discipline* of the emitted loads and stores — and mirrors the
unoptimized RISC code ATOM actually saw.

Addressing-mode rules (what the static filter later keys on):

* scalar locals, params, const-indexed stack arrays → ``off(fp)``
* static globals → ``off(gp)``
* pointer dereferences → compute address into a temp, ``0(t)``
* variable-indexed stack arrays → the address is computed (``fp`` + index)
  into a temp register, so the frame-pointer provenance is lost to a
  basic-block-local analysis; the access is conservatively treated as
  potentially shared, exactly the paper's false-instrumentation source.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.instrument import kernel_ast as K
from repro.instrument.isa import (ARG_REGS, FP, GP, RV, TEMP_REGS, Function,
                                  Instruction, ObjectFile, Op, Section)

_BINOPS = {
    "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV,
    "&": Op.AND, "|": Op.OR, "^": Op.XOR, "<": Op.SLT, "==": Op.SEQ,
}


class _RegPool:
    """Temporary-register allocator (expression stack discipline)."""

    def __init__(self) -> None:
        self._free = list(reversed(TEMP_REGS))

    def take(self) -> str:
        if not self._free:
            raise CompileError(
                "expression too deep: out of temporary registers")
        return self._free.pop()

    def give(self, reg: str) -> None:
        if reg in TEMP_REGS:
            self._free.append(reg)


class _FunctionCompiler:
    def __init__(self, program: K.KernelProgram, fn: K.KernelFunction,
                 static_offsets: Dict[str, int]):
        self.program = program
        self.fn = fn
        self.static_offsets = static_offsets
        self.code: List[Instruction] = []
        self.regs = _RegPool()
        self._label_counter = 0
        # Frame layout: params first, then scalars, then arrays.
        self.frame: Dict[str, int] = {}
        self.array_base: Dict[str, int] = {}
        slot = 0
        for p in fn.params:
            self.frame[p] = slot
            slot += 1
        for name in fn.locals_:
            if name in self.frame:
                raise CompileError(f"{fn.name}: duplicate local {name!r}")
            self.frame[name] = slot
            slot += 1
        for name, size in fn.arrays:
            if name in self.frame or name in self.array_base:
                raise CompileError(f"{fn.name}: duplicate array {name!r}")
            if size <= 0:
                raise CompileError(f"{fn.name}: array {name!r} size must be > 0")
            self.array_base[name] = slot
            slot += size
        self.frame_words = slot

    # ------------------------------------------------------------------ #
    def compile(self) -> Function:
        # Prologue: spill incoming arguments to their frame slots.
        for i, p in enumerate(self.fn.params):
            if i >= len(ARG_REGS):
                raise CompileError(f"{self.fn.name}: too many parameters")
            self.emit(Op.ST, reg=ARG_REGS[i], base=FP,
                      offset=self.frame[p], origin=f"{self.fn.name}:prologue")
        for stmt in self.fn.body:
            self.stmt(stmt)
        if not self.code or self.code[-1].op is not Op.RET:
            self.emit(Op.RET)
        return Function(self.fn.name, self.code, Section.APP,
                        frame_words=self.frame_words)

    def emit(self, op: Op, **kw) -> Instruction:
        ins = Instruction(op, **kw)
        self.code.append(ins)
        return ins

    def new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{self.fn.name}.{hint}{self._label_counter}"

    # ------------------------------------------------------------------ #
    # Expressions: return the register holding the value.
    # ------------------------------------------------------------------ #
    def expr(self, e: K.Expr, origin: str = "") -> str:
        if isinstance(e, K.Const):
            r = self.regs.take()
            self.emit(Op.LI, reg=r, imm=e.value, origin=origin)
            return r
        if isinstance(e, (K.Local, K.Param)):
            slot = self.frame.get(e.name)
            if slot is None:
                raise CompileError(f"{self.fn.name}: unknown local {e.name!r}")
            r = self.regs.take()
            self.emit(Op.LD, reg=r, base=FP, offset=slot, origin=origin)
            return r
        if isinstance(e, K.Static):
            off = self.static_offsets.get(e.name)
            if off is None:
                raise CompileError(
                    f"{self.fn.name}: unknown static {e.name!r}")
            r = self.regs.take()
            self.emit(Op.LD, reg=r, base=GP, offset=off, origin=origin)
            return r
        if isinstance(e, K.LocalArr):
            return self._local_arr_load(e, origin)
        if isinstance(e, K.Deref):
            addr = self._address_of_deref(e, origin)
            self.emit(Op.LD, reg=addr, base=addr, offset=0, origin=origin)
            return addr
        if isinstance(e, K.Bin):
            op = _BINOPS.get(e.op)
            if op is None:
                raise CompileError(f"unknown operator {e.op!r}")
            left = self.expr(e.left, origin)
            right = self.expr(e.right, origin)
            self.emit(op, reg=left, srcs=(left, right), origin=origin)
            self.regs.give(right)
            return left
        if isinstance(e, K.CallExpr):
            self._emit_call(e, origin)
            r = self.regs.take()
            self.emit(Op.MOV, reg=r, srcs=(RV,), origin=origin)
            return r
        raise CompileError(f"cannot compile expression {e!r}")

    def _local_arr_load(self, e: K.LocalArr, origin: str) -> str:
        base = self.array_base.get(e.name)
        if base is None:
            raise CompileError(f"{self.fn.name}: unknown array {e.name!r}")
        if isinstance(e.index, K.Const):
            # Constant index: stays fp-relative, provably stack.
            r = self.regs.take()
            self.emit(Op.LD, reg=r, base=FP, offset=base + e.index.value,
                      origin=origin)
            return r
        # Computed index: address leaves fp-relative form; the filter will
        # conservatively instrument this (it is in fact private).
        idx = self.expr(e.index, origin)
        tmp = self.regs.take()
        self.emit(Op.LI, reg=tmp, imm=base, origin=origin)
        self.emit(Op.ADD, reg=idx, srcs=(idx, tmp), origin=origin)
        self.emit(Op.ADD, reg=idx, srcs=(idx, FP), origin=origin)
        self.regs.give(tmp)
        self.emit(Op.LD, reg=idx, base=idx, offset=0, origin=origin)
        return idx

    def _address_of_deref(self, e: K.Deref, origin: str) -> str:
        ptr = self.expr(e.ptr, origin)
        idx = self.expr(e.index, origin)
        self.emit(Op.ADD, reg=ptr, srcs=(ptr, idx), origin=origin)
        self.regs.give(idx)
        return ptr

    def _emit_call(self, e: K.CallExpr, origin: str) -> None:
        if len(e.args) > len(ARG_REGS):
            raise CompileError(f"call {e.name!r}: too many arguments")
        arg_regs: List[str] = []
        for a in e.args:
            arg_regs.append(self.expr(a, origin))
        for i, r in enumerate(arg_regs):
            self.emit(Op.MOV, reg=ARG_REGS[i], srcs=(r,), origin=origin)
            self.regs.give(r)
        self.emit(Op.CALL, target=e.name, origin=origin)

    # ------------------------------------------------------------------ #
    # Statements.
    # ------------------------------------------------------------------ #
    def stmt(self, s: K.Stmt) -> None:
        origin = f"{self.fn.name}:{type(s).__name__}"
        if isinstance(s, K.Assign):
            self._assign(s, origin)
        elif isinstance(s, K.For):
            self._for(s, origin)
        elif isinstance(s, K.While):
            self._while(s, origin)
        elif isinstance(s, K.If):
            self._if(s, origin)
        elif isinstance(s, K.Return):
            if s.value is not None:
                r = self.expr(s.value, origin)
                self.emit(Op.MOV, reg=RV, srcs=(r,), origin=origin)
                self.regs.give(r)
            self.emit(Op.RET, origin=origin)
        elif isinstance(s, K.ExprStmt):
            if isinstance(s.expr, K.CallExpr):
                self._emit_call(s.expr, origin)
            else:
                r = self.expr(s.expr, origin)
                self.regs.give(r)
        else:
            raise CompileError(f"cannot compile statement {s!r}")

    def _assign(self, s: K.Assign, origin: str) -> None:
        value = self.expr(s.value, origin)
        t = s.target
        if isinstance(t, (K.Local, K.Param)):
            slot = self.frame.get(t.name)
            if slot is None:
                raise CompileError(f"{self.fn.name}: unknown local {t.name!r}")
            self.emit(Op.ST, reg=value, base=FP, offset=slot, origin=origin)
        elif isinstance(t, K.Static):
            off = self.static_offsets.get(t.name)
            if off is None:
                raise CompileError(f"{self.fn.name}: unknown static {t.name!r}")
            self.emit(Op.ST, reg=value, base=GP, offset=off, origin=origin)
        elif isinstance(t, K.LocalArr):
            base = self.array_base.get(t.name)
            if base is None:
                raise CompileError(f"{self.fn.name}: unknown array {t.name!r}")
            if isinstance(t.index, K.Const):
                self.emit(Op.ST, reg=value, base=FP,
                          offset=base + t.index.value, origin=origin)
            else:
                idx = self.expr(t.index, origin)
                tmp = self.regs.take()
                self.emit(Op.LI, reg=tmp, imm=base, origin=origin)
                self.emit(Op.ADD, reg=idx, srcs=(idx, tmp), origin=origin)
                self.emit(Op.ADD, reg=idx, srcs=(idx, FP), origin=origin)
                self.regs.give(tmp)
                self.emit(Op.ST, reg=value, base=idx, offset=0, origin=origin)
                self.regs.give(idx)
        elif isinstance(t, K.Deref):
            addr = self._address_of_deref(t, origin)
            self.emit(Op.ST, reg=value, base=addr, offset=0, origin=origin)
            self.regs.give(addr)
        else:
            raise CompileError(f"cannot assign to {t!r}")
        self.regs.give(value)

    def _for(self, s: K.For, origin: str) -> None:
        # var = start
        self._assign(K.Assign(s.var, s.start), origin)
        head = self.new_label("for_head")
        done = self.new_label("for_done")
        self.emit(Op.LABEL, target=head)
        cond = self.expr(K.Bin("<", s.var, s.end), origin)
        self.emit(Op.BEQZ, srcs=(cond,), target=done, origin=origin)
        self.regs.give(cond)
        for sub in s.body:
            self.stmt(sub)
        self._assign(K.Assign(s.var, K.Bin("+", s.var, K.Const(s.step))),
                     origin)
        self.emit(Op.J, target=head, origin=origin)
        self.emit(Op.LABEL, target=done)

    def _while(self, s: K.While, origin: str) -> None:
        head = self.new_label("while_head")
        done = self.new_label("while_done")
        self.emit(Op.LABEL, target=head)
        cond = self.expr(s.cond, origin)
        self.emit(Op.BEQZ, srcs=(cond,), target=done, origin=origin)
        self.regs.give(cond)
        for sub in s.body:
            self.stmt(sub)
        self.emit(Op.J, target=head, origin=origin)
        self.emit(Op.LABEL, target=done)

    def _if(self, s: K.If, origin: str) -> None:
        els = self.new_label("else")
        done = self.new_label("endif")
        cond = self.expr(s.cond, origin)
        self.emit(Op.BEQZ, srcs=(cond,), target=els, origin=origin)
        self.regs.give(cond)
        for sub in s.then:
            self.stmt(sub)
        self.emit(Op.J, target=done, origin=origin)
        self.emit(Op.LABEL, target=els)
        for sub in s.orelse:
            self.stmt(sub)
        self.emit(Op.LABEL, target=done)


def compile_kernel(program: K.KernelProgram) -> ObjectFile:
    """Compile a kernel program into an object file (APP section)."""
    static_offsets = {name: i for i, name in enumerate(program.statics)}
    obj = ObjectFile(program.name)
    seen = set()
    for fn in program.functions:
        if fn.name in seen:
            raise CompileError(f"duplicate function {fn.name!r}")
        seen.add(fn.name)
        obj.add(_FunctionCompiler(program, fn, static_offsets).compile())
    return obj
