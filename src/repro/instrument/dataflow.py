"""Enhanced static filter: basic-block register-provenance tracking.

The paper's filter keys on addressing modes alone, so any stack or static
access whose address was *computed* into a general register gets
conservatively instrumented; §5.1 measures the consequence (most run-time
analysis calls are for private data) and §6.5 promises that better
reference tracking "would allow us to eliminate many of these 'false'
instrumentations".

This module implements that promised analysis at basic-block scope: a
forward dataflow over each block tracking, per register, where its value
came from —

* ``STACK``   — derived from the frame pointer (fp/sp plus constants),
* ``STATIC``  — derived from the global pointer,
* ``HEAP``    — the result of ``malloc`` (provably dynamic, hence
  *potentially shared*: still instrumented, but now knowingly),
* ``CONST``   — an immediate,
* ``UNKNOWN`` — anything else (loaded from memory, call results,
  mixed arithmetic).

A load/store through a ``STACK``- or ``STATIC``-classed register is then
statically private even though its addressing mode is not fp/gp-relative.
Provenance dies at block boundaries (labels, branch targets) and calls
clobber the temporaries — the same conservatism the paper describes for
its own block-local tracking.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.instrument.atom import AccessClass, InstrumentationReport, classify
from repro.instrument.isa import (ARG_REGS, FP, GP, RV, SP, STACK_BASES,
                                  STATIC_BASES, BinaryImage, Function,
                                  Instruction, Op, Section)


class Provenance(enum.Enum):
    STACK = "stack"
    STATIC = "static"
    HEAP = "heap"
    CONST = "const"
    UNKNOWN = "unknown"


#: Calls whose return value is provably a fresh heap pointer.
HEAP_ALLOCATORS = frozenset({"malloc", "__heap_alloc"})


def _combine(a: Provenance, b: Provenance) -> Provenance:
    """Provenance of ``a op b`` for address arithmetic.

    Pointer + constant keeps the pointer's provenance.  Pointer +
    UNKNOWN keeps it too, under the frame/segment-bounded-indexing
    assumption every practical binary analyzer makes: an index added to
    a frame-pointer- or global-pointer-derived base stays within stack or
    static storage (well-formed code does not reach shared memory by
    offsetting the frame pointer).  Mixing two pointers degrades to
    UNKNOWN, which the filter instruments — the sound direction for race
    detection.
    """
    if a is Provenance.CONST:
        return b
    if b is Provenance.CONST:
        return a
    pointers = {Provenance.STACK, Provenance.STATIC, Provenance.HEAP}
    if a in pointers and b in pointers:
        return Provenance.UNKNOWN
    if a in pointers:
        return a  # pointer + unknown index
    if b in pointers:
        return b
    return Provenance.UNKNOWN


def split_basic_blocks(fn: Function) -> List[Tuple[int, int]]:
    """[start, end) instruction index ranges of the function's blocks.

    A block starts at function entry and at every label; it ends after a
    branch/jump/return or before the next label.
    """
    starts = {0}
    for i, ins in enumerate(fn.instructions):
        if ins.op is Op.LABEL:
            starts.add(i)
        if ins.op in (Op.BEQZ, Op.BNEZ, Op.J, Op.RET) and \
                i + 1 < len(fn.instructions):
            starts.add(i + 1)
    ordered = sorted(starts)
    return [(s, e) for s, e in zip(ordered, ordered[1:] + [len(fn.instructions)])
            if s < e]


class _BlockState:
    """Per-register provenance inside one basic block."""

    def __init__(self) -> None:
        self.regs: Dict[str, Provenance] = {}

    def get(self, reg: Optional[str]) -> Provenance:
        if reg in STACK_BASES:
            return Provenance.STACK
        if reg in STATIC_BASES:
            return Provenance.STATIC
        if reg is None:
            return Provenance.UNKNOWN
        return self.regs.get(reg, Provenance.UNKNOWN)

    def set(self, reg: Optional[str], prov: Provenance) -> None:
        if reg is not None and reg not in STACK_BASES \
                and reg not in STATIC_BASES:
            self.regs[reg] = prov

    def clobber_caller_saved(self) -> None:
        """A call invalidates temporaries and argument registers; only
        the provenance of nothing survives in this simple model."""
        self.regs.clear()


def classify_with_provenance(fn: Function,
                             last_call_target: Dict[int, str]
                             ) -> Dict[int, AccessClass]:
    """Classification of every memory instruction (by index) in ``fn``
    using block-local provenance.  Non-APP sections fall back to the
    plain section rules."""
    out: Dict[int, AccessClass] = {}
    if fn.section is not Section.APP:
        for i, ins in enumerate(fn.instructions):
            if ins.is_memory:
                out[i] = classify(fn, ins)
        return out

    for start, end in split_basic_blocks(fn):
        state = _BlockState()
        for i in range(start, end):
            ins = fn.instructions[i]
            op = ins.op
            if ins.is_memory:
                prov = state.get(ins.base)
                if prov is Provenance.STACK:
                    out[i] = AccessClass.STACK
                elif prov is Provenance.STATIC:
                    out[i] = AccessClass.STATIC
                else:
                    out[i] = AccessClass.INSTRUMENTED
                if op is Op.LD:
                    state.set(ins.reg, Provenance.UNKNOWN)
            elif op is Op.LI:
                state.set(ins.reg, Provenance.CONST)
            elif op is Op.MOV:
                state.set(ins.reg, state.get(ins.srcs[0]))
            elif op in (Op.ADD, Op.SUB):
                state.set(ins.reg, _combine(state.get(ins.srcs[0]),
                                            state.get(ins.srcs[1])))
            elif op in (Op.MUL, Op.DIV, Op.AND, Op.OR, Op.XOR,
                        Op.SLT, Op.SEQ):
                state.set(ins.reg, Provenance.UNKNOWN)
            elif op is Op.LA:
                # A function address is a code pointer: loads/stores
                # through it would be malformed, so stay conservative.
                state.set(ins.reg, Provenance.UNKNOWN)
            elif op is Op.CALL:
                state.clobber_caller_saved()
                if ins.target in HEAP_ALLOCATORS:
                    state.set(RV, Provenance.HEAP)
                else:
                    state.set(RV, Provenance.UNKNOWN)
            elif op is Op.CALLR:
                # The callee is unknown statically: clobber everything
                # and assume nothing about the return value.
                state.clobber_caller_saved()
                state.set(RV, Provenance.UNKNOWN)
    return out


class ProvenanceFilter:
    """Drop-in enhanced analyzer comparable to
    :class:`~repro.instrument.atom.AtomRewriter.analyze`."""

    def analyze(self, image: BinaryImage) -> InstrumentationReport:
        report = InstrumentationReport(f"{image.name}+provenance")
        for name in sorted(image.functions):
            fn = image.functions[name]
            classes = classify_with_provenance(fn, {})
            for i, ins in enumerate(fn.instructions):
                report.total_instructions += 1
                if ins.is_memory:
                    report.counts[classes[i]] += 1
        return report


@dataclass
class FilterComparison:
    """Side-by-side of the paper's addressing-mode filter and the
    provenance filter — quantifying §6.5's promised improvement."""

    binary: str
    baseline_instrumented: int
    provenance_instrumented: int

    @property
    def eliminated_extra(self) -> int:
        return self.baseline_instrumented - self.provenance_instrumented

    @property
    def reduction(self) -> float:
        if self.baseline_instrumented == 0:
            return 0.0
        return self.eliminated_extra / self.baseline_instrumented


def compare_filters(image: BinaryImage) -> FilterComparison:
    from repro.instrument.atom import AtomRewriter
    base = AtomRewriter().analyze(image)
    enhanced = ProvenanceFilter().analyze(image)
    return FilterComparison(image.name, base.instrumented,
                            enhanced.instrumented)
