"""Parser for the kernel language: C-like text → kernel AST.

The compiler consumes an AST (:mod:`repro.instrument.kernel_ast`); this
module provides the matching concrete syntax, so kernels can be written as
source text::

    static threshold, above;

    func scan(data, n) {
        local i, v, sum;
        sum = 0;
        for (i = 0; i < n; i += 1) {
            v = data[i];
            sum = sum + v;
            if (threshold < v) { above = above + 1; }
        }
        return sum;
    }

    func main(n) {
        local p;
        p = malloc(n);
        return scan(p, n);
    }

Semantics notes:

* ``static`` declares globals (gp-addressed);
* ``local x, y;`` declares scalars (fp-addressed), ``array buf[8];``
  declares a stack array;
* ``name[expr]`` is a stack-array element if ``name`` was declared with
  ``array``, otherwise a pointer dereference through the scalar/param
  ``name`` — the distinction that decides instrumentation;
* operators: ``* / `` bind tighter than ``+ -``, then ``& | ^``, then
  ``< ==``; parentheses as usual.  (A deliberate small language: no
  unary minus — write ``0 - x``.)
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from repro.errors import CompileError
from repro.instrument import kernel_ast as K

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<num>\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op>\+=|==|[{}()\[\];,=+\-*/&|^<])
""", re.VERBOSE)

KEYWORDS = frozenset({"func", "static", "local", "array", "for", "while",
                      "if", "else", "return"})


def tokenize(text: str) -> List[Tuple[str, str, int]]:
    """(kind, value, line) triples; kind in {num, name, kw, op}."""
    out: List[Tuple[str, str, int]] = []
    pos, line = 0, 1
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise CompileError(
                f"line {line}: cannot tokenize {text[pos:pos + 12]!r}")
        pos = m.end()
        if m.lastgroup == "ws":
            line += m.group().count("\n")
            continue
        kind = m.lastgroup
        value = m.group()
        if kind == "name" and value in KEYWORDS:
            kind = "kw"
        out.append((kind, value, line))
    out.append(("eof", "", line))
    return out


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0
        self.statics: List[str] = []
        # Per-function scopes, filled while parsing a function body.
        self.params: List[str] = []
        self.locals_: List[str] = []
        self.arrays: List[Tuple[str, int]] = []

    # -- token helpers -------------------------------------------------- #
    def peek(self) -> Tuple[str, str, int]:
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str, int]:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        k, v, line = self.next()
        if k != kind or (value is not None and v != value):
            want = value or kind
            raise CompileError(f"line {line}: expected {want!r}, got {v!r}")
        return v

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        k, v, _ = self.peek()
        if k == kind and (value is None or v == value):
            self.pos += 1
            return True
        return False

    # -- grammar --------------------------------------------------------- #
    def parse_program(self, name: str) -> K.KernelProgram:
        functions: List[K.KernelFunction] = []
        while self.peek()[0] != "eof":
            if self.accept("kw", "static"):
                self.statics.append(self.expect("name"))
                while self.accept("op", ","):
                    self.statics.append(self.expect("name"))
                self.expect("op", ";")
            elif self.accept("kw", "func"):
                functions.append(self.parse_function())
            else:
                _k, v, line = self.peek()
                raise CompileError(
                    f"line {line}: expected 'func' or 'static', got {v!r}")
        return K.KernelProgram(name, statics=tuple(self.statics),
                               functions=functions)

    def parse_function(self) -> K.KernelFunction:
        fname = self.expect("name")
        self.expect("op", "(")
        self.params, self.locals_, self.arrays = [], [], []
        if not self.accept("op", ")"):
            self.params.append(self.expect("name"))
            while self.accept("op", ","):
                self.params.append(self.expect("name"))
            self.expect("op", ")")
        body = self.parse_block()
        return K.KernelFunction(fname, params=tuple(self.params),
                                locals_=tuple(self.locals_),
                                arrays=tuple(self.arrays), body=body)

    def parse_block(self) -> List[K.Stmt]:
        self.expect("op", "{")
        stmts: List[K.Stmt] = []
        while not self.accept("op", "}"):
            stmt = self.parse_stmt()
            if stmt is not None:
                stmts.append(stmt)
        return stmts

    def parse_stmt(self) -> Optional[K.Stmt]:
        if self.accept("kw", "local"):
            self.locals_.append(self.expect("name"))
            while self.accept("op", ","):
                self.locals_.append(self.expect("name"))
            self.expect("op", ";")
            return None
        if self.accept("kw", "array"):
            aname = self.expect("name")
            self.expect("op", "[")
            size = int(self.expect("num"))
            self.expect("op", "]")
            self.expect("op", ";")
            self.arrays.append((aname, size))
            return None
        if self.accept("kw", "for"):
            return self.parse_for()
        if self.accept("kw", "while"):
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            return K.While(cond, self.parse_block())
        if self.accept("kw", "if"):
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            then = self.parse_block()
            orelse: List[K.Stmt] = []
            if self.accept("kw", "else"):
                orelse = self.parse_block()
            return K.If(cond, then, orelse)
        if self.accept("kw", "return"):
            if self.accept("op", ";"):
                return K.Return(None)
            value = self.parse_expr()
            self.expect("op", ";")
            return K.Return(value)
        # assignment or expression statement
        expr = self.parse_expr()
        if self.accept("op", "="):
            if not isinstance(expr, (K.Local, K.Param, K.Static,
                                     K.LocalArr, K.Deref)):
                raise CompileError(
                    f"line {self.peek()[2]}: cannot assign to this target")
            value = self.parse_expr()
            self.expect("op", ";")
            return K.Assign(expr, value)
        self.expect("op", ";")
        return K.ExprStmt(expr)

    def parse_for(self) -> K.For:
        self.expect("op", "(")
        var_name = self.expect("name")
        var = self._name_ref(var_name)
        if not isinstance(var, K.Local):
            raise CompileError("for-loop variable must be a declared local")
        self.expect("op", "=")
        start = self.parse_expr()
        self.expect("op", ";")
        cond_name = self.expect("name")
        if cond_name != var_name:
            raise CompileError(
                f"for-loop condition must test {var_name!r}")
        self.expect("op", "<")
        end = self.parse_expr()
        self.expect("op", ";")
        step_name = self.expect("name")
        if step_name != var_name:
            raise CompileError(f"for-loop step must update {var_name!r}")
        self.expect("op", "+=")
        step = int(self.expect("num"))
        self.expect("op", ")")
        return K.For(var, start, end, self.parse_block(), step=step)

    # -- expressions (precedence climbing) ------------------------------- #
    _LEVELS: Sequence[Sequence[str]] = (("<", "=="), ("&", "|", "^"),
                                        ("+", "-"), ("*", "/"))

    def parse_expr(self, level: int = 0) -> K.Expr:
        if level == len(self._LEVELS):
            return self.parse_primary()
        ops = self._LEVELS[level]
        left = self.parse_expr(level + 1)
        while True:
            k, v, _ = self.peek()
            if k == "op" and v in ops:
                self.next()
                right = self.parse_expr(level + 1)
                left = K.Bin(v, left, right)
            else:
                return left

    def parse_primary(self) -> K.Expr:
        k, v, line = self.next()
        if k == "num":
            return K.Const(int(v))
        if k == "op" and v == "(":
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        if k != "name":
            raise CompileError(f"line {line}: unexpected {v!r} in expression")
        # call?
        if self.accept("op", "("):
            args: List[K.Expr] = []
            if not self.accept("op", ")"):
                args.append(self.parse_expr())
                while self.accept("op", ","):
                    args.append(self.parse_expr())
                self.expect("op", ")")
            return K.CallExpr(v, tuple(args))
        # index?
        if self.accept("op", "["):
            index = self.parse_expr()
            self.expect("op", "]")
            if any(name == v for name, _size in self.arrays):
                return K.LocalArr(v, index)
            return K.Deref(self._name_ref(v), index)
        return self._name_ref(v)

    def _name_ref(self, name: str) -> K.Expr:
        if name in self.locals_:
            return K.Local(name)
        if name in self.params:
            return K.Param(name)
        if name in self.statics:
            return K.Static(name)
        raise CompileError(f"undeclared name {name!r}")


def parse_kernel(text: str, name: str = "kernel") -> K.KernelProgram:
    """Parse kernel-language source into a :class:`KernelProgram`."""
    return _Parser(text).parse_program(name)


def compile_source(text: str, name: str = "kernel"):
    """Parse and compile in one step; returns an ObjectFile."""
    from repro.instrument.compiler import compile_kernel
    return compile_kernel(parse_kernel(text, name))
