"""Parser for the kernel language: C-like text → kernel AST.

The compiler consumes an AST (:mod:`repro.instrument.kernel_ast`); this
module provides the matching concrete syntax, so kernels can be written as
source text::

    struct Node { val; next: Node; }
    static threshold, above;

    func scan(data, n) {
        local i, v, sum;
        sum = 0;
        for (i = 0; i < n; i += 1) {
            v = data[i];
            sum = sum + v;
            if (threshold < v) { above = above + 1; }
        }
        return sum;
    }

    func main(n) {
        local p, head: Node;
        p = malloc(n);
        head = new Node;
        head.val = scan(p, n);
        return head.val;
    }

Semantics notes:

* ``static`` declares globals (gp-addressed);
* ``local x, y;`` declares scalars (fp-addressed), ``array buf[8];``
  declares a stack array;
* ``struct Name { f1; f2: Other; }`` declares a record of one-word
  fields; a declaration ``local p: Name;`` types the pointer ``p`` so
  ``p.f1`` resolves its field offset at parse time (structs must be
  declared before a variable of their type is field-accessed);
* ``name[expr]`` is a stack-array element if ``name`` was declared with
  ``array``, otherwise a pointer dereference through the scalar/param
  ``name`` — the distinction that decides instrumentation;
* ``new Name`` / ``new [expr]`` allocate from the shared heap
  (``__heap_alloc``), ``delete expr;`` frees (``__heap_free``);
* ``&name`` takes the address of a declared variable or array;
* a bare function name is a function value; calling through a declared
  variable (``fn(x)`` where ``fn`` is a local/param/static) is an
  indirect call;
* operators: ``* / `` bind tighter than ``+ -``, then ``& | ^``, then
  ``< ==``; parentheses as usual.  (A deliberate small language: no
  unary minus — write ``0 - x``.)

Every diagnostic carries the source line, column and the offending
token.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CompileError
from repro.instrument import kernel_ast as K

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<num>\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op>\+=|==|[{}()\[\];,=+\-*/&|^<.:])
""", re.VERBOSE)

KEYWORDS = frozenset({"func", "static", "local", "array", "for", "while",
                      "if", "else", "return", "struct", "new", "delete"})


class Token(tuple):
    """A ``(kind, value, line)`` triple that also knows its column.

    Subclassing ``tuple`` keeps the long-standing 3-way unpacking
    (``for kind, value, line in tokens``) working while diagnostics can
    read ``tok.col``.
    """

    def __new__(cls, kind: str, value: str, line: int, col: int = 0):
        tok = super().__new__(cls, (kind, value, line))
        tok.col = col
        return tok

    @property
    def kind(self) -> str:
        return self[0]

    @property
    def value(self) -> str:
        return self[1]

    @property
    def line(self) -> int:
        return self[2]

    def describe(self) -> str:
        """``line L, col C`` position prefix for diagnostics."""
        return f"line {self[2]}, col {self.col}"


def tokenize(text: str) -> List[Token]:
    """(kind, value, line) triples; kind in {num, name, kw, op}."""
    out: List[Token] = []
    pos, line, line_start = 0, 1, 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            col = pos - line_start + 1
            raise CompileError(
                f"line {line}, col {col}: cannot tokenize "
                f"{text[pos:pos + 12]!r}")
        col = pos - line_start + 1
        pos = m.end()
        if m.lastgroup == "ws":
            nl = m.group().count("\n")
            if nl:
                line += nl
                line_start = m.start() + m.group().rindex("\n") + 1
            continue
        kind = m.lastgroup
        value = m.group()
        if kind == "name" and value in KEYWORDS:
            kind = "kw"
        out.append(Token(kind, value, line, col))
    out.append(Token("eof", "", line, pos - line_start + 1))
    return out


def _prescan(tokens: Sequence[Token]) -> Tuple[set, set]:
    """Names of all declared functions and structs, so forward references
    (a function value used before its definition, a struct type named in
    an earlier declaration) resolve in one pass."""
    funcs, structs = set(), set()
    for i, tok in enumerate(tokens[:-1]):
        if tok[0] == "kw" and tokens[i + 1][0] == "name":
            if tok[1] == "func":
                funcs.add(tokens[i + 1][1])
            elif tok[1] == "struct":
                structs.add(tokens[i + 1][1])
    return funcs, structs


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0
        self.statics: List[str] = []
        self.static_types: Dict[str, str] = {}
        self.structs: Dict[str, K.StructDef] = {}
        self.func_names, self.struct_names = _prescan(self.tokens)
        # Per-function scopes, filled while parsing a function body.
        self.params: List[str] = []
        self.locals_: List[str] = []
        self.arrays: List[Tuple[str, int]] = []
        self.var_types: Dict[str, str] = {}

    # -- token helpers -------------------------------------------------- #
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def error(self, tok: Token, message: str) -> CompileError:
        shown = tok[1] if tok[0] != "eof" else "<end of input>"
        return CompileError(f"{tok.describe()}: {message} "
                            f"(at {shown!r})")

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        tok = self.next()
        k, v, _line = tok
        if k != kind or (value is not None and v != value):
            want = value or kind
            raise self.error(tok, f"expected {want!r}")
        return v

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        k, v, _ = self.peek()
        if k == kind and (value is None or v == value):
            self.pos += 1
            return True
        return False

    # -- declarations ---------------------------------------------------- #
    def _type_annotation(self) -> Optional[str]:
        """Parse an optional ``: StructName`` suffix on a declaration."""
        if not self.accept("op", ":"):
            return None
        tok = self.peek()
        tname = self.expect("name")
        if tname not in self.struct_names:
            raise self.error(tok, f"unknown struct type {tname!r}")
        return tname

    def _declare(self, names: List[str], types: Dict[str, str],
                 what: str) -> None:
        tok = self.peek()
        name = self.expect("name")
        if name in self.locals_ or name in self.params \
                or any(name == a for a, _s in self.arrays) \
                or (what == "static" and name in self.statics):
            raise self.error(tok, f"duplicate {what} {name!r}")
        names.append(name)
        tname = self._type_annotation()
        if tname is not None:
            types[name] = tname

    # -- grammar --------------------------------------------------------- #
    def parse_program(self, name: str) -> K.KernelProgram:
        functions: List[K.KernelFunction] = []
        while self.peek()[0] != "eof":
            if self.accept("kw", "static"):
                self._declare(self.statics, self.static_types, "static")
                while self.accept("op", ","):
                    self._declare(self.statics, self.static_types, "static")
                self.expect("op", ";")
            elif self.accept("kw", "struct"):
                self.parse_struct()
            elif self.accept("kw", "func"):
                functions.append(self.parse_function())
            else:
                tok = self.peek()
                raise self.error(
                    tok, "expected 'func', 'static' or 'struct'")
        return K.KernelProgram(name, statics=tuple(self.statics),
                               functions=functions,
                               structs=tuple(self.structs.values()))

    def parse_struct(self) -> None:
        tok = self.peek()
        sname = self.expect("name")
        if sname in self.structs:
            raise self.error(tok, f"duplicate struct {sname!r}")
        self.expect("op", "{")
        fields: List[str] = []
        field_types: Dict[str, str] = {}
        while not self.accept("op", "}"):
            ftok = self.peek()
            fname = self.expect("name")
            if fname in fields:
                raise self.error(ftok, f"duplicate field {fname!r} "
                                       f"in struct {sname!r}")
            fields.append(fname)
            ftype = self._type_annotation()
            if ftype is not None:
                field_types[fname] = ftype
            self.expect("op", ";")
        if not fields:
            raise self.error(tok, f"struct {sname!r} has no fields")
        self.structs[sname] = K.StructDef(sname, tuple(fields),
                                          field_types, line=tok[2])

    def parse_function(self) -> K.KernelFunction:
        ftok = self.peek()
        fname = self.expect("name")
        self.expect("op", "(")
        self.params, self.locals_, self.arrays = [], [], []
        self.var_types = {}
        if not self.accept("op", ")"):
            self._declare(self.params, self.var_types, "parameter")
            while self.accept("op", ","):
                self._declare(self.params, self.var_types, "parameter")
            self.expect("op", ")")
        body = self.parse_block()
        return K.KernelFunction(fname, params=tuple(self.params),
                                locals_=tuple(self.locals_),
                                arrays=tuple(self.arrays), body=body,
                                var_types=dict(self.var_types),
                                line=ftok[2])

    def parse_block(self) -> List[K.Stmt]:
        self.expect("op", "{")
        stmts: List[K.Stmt] = []
        while not self.accept("op", "}"):
            if self.peek()[0] == "eof":
                raise self.error(self.peek(), "expected '}'")
            stmt = self.parse_stmt()
            if stmt is not None:
                stmts.append(stmt)
        return stmts

    def parse_stmt(self) -> Optional[K.Stmt]:
        start = self.peek()
        stmt = self._parse_stmt_inner()
        if stmt is not None and not getattr(stmt, "line", 0):
            stmt.line = start[2]
        return stmt

    def _parse_stmt_inner(self) -> Optional[K.Stmt]:
        if self.accept("kw", "local"):
            self._declare(self.locals_, self.var_types, "local")
            while self.accept("op", ","):
                self._declare(self.locals_, self.var_types, "local")
            self.expect("op", ";")
            return None
        if self.accept("kw", "array"):
            atok = self.peek()
            aname = self.expect("name")
            if aname in self.locals_ or aname in self.params \
                    or any(aname == a for a, _s in self.arrays):
                raise self.error(atok, f"duplicate array {aname!r}")
            self.expect("op", "[")
            size = int(self.expect("num"))
            self.expect("op", "]")
            self.expect("op", ";")
            self.arrays.append((aname, size))
            return None
        if self.accept("kw", "delete"):
            tok = self.peek()
            target = self.parse_expr()
            self.expect("op", ";")
            return K.Delete(target, line=tok[2])
        if self.accept("kw", "for"):
            return self.parse_for()
        if self.accept("kw", "while"):
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            return K.While(cond, self.parse_block())
        if self.accept("kw", "if"):
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            then = self.parse_block()
            orelse: List[K.Stmt] = []
            if self.accept("kw", "else"):
                orelse = self.parse_block()
            return K.If(cond, then, orelse)
        if self.accept("kw", "return"):
            if self.accept("op", ";"):
                return K.Return(None)
            value = self.parse_expr()
            self.expect("op", ";")
            return K.Return(value)
        # assignment or expression statement
        tok = self.peek()
        expr = self.parse_expr()
        if self.accept("op", "="):
            if not isinstance(expr, (K.Local, K.Param, K.Static,
                                     K.LocalArr, K.Deref, K.Field)):
                raise self.error(tok, "cannot assign to this target")
            value = self.parse_expr()
            self.expect("op", ";")
            return K.Assign(expr, value)
        self.expect("op", ";")
        return K.ExprStmt(expr)

    def parse_for(self) -> K.For:
        self.expect("op", "(")
        vtok = self.peek()
        var_name = self.expect("name")
        var = self._name_ref(var_name, vtok)
        if not isinstance(var, K.Local):
            raise self.error(
                vtok, "for-loop variable must be a declared local")
        self.expect("op", "=")
        start = self.parse_expr()
        self.expect("op", ";")
        ctok = self.peek()
        cond_name = self.expect("name")
        if cond_name != var_name:
            raise self.error(
                ctok, f"for-loop condition must test {var_name!r}")
        self.expect("op", "<")
        end = self.parse_expr()
        self.expect("op", ";")
        stok = self.peek()
        step_name = self.expect("name")
        if step_name != var_name:
            raise self.error(
                stok, f"for-loop step must update {var_name!r}")
        self.expect("op", "+=")
        step = int(self.expect("num"))
        self.expect("op", ")")
        return K.For(var, start, end, self.parse_block(), step=step)

    # -- expressions (precedence climbing) ------------------------------- #
    _LEVELS: Sequence[Sequence[str]] = (("<", "=="), ("&", "|", "^"),
                                        ("+", "-"), ("*", "/"))

    def parse_expr(self, level: int = 0) -> K.Expr:
        if level == len(self._LEVELS):
            expr, _stype = self.parse_postfix()
            return expr
        ops = self._LEVELS[level]
        left = self.parse_expr(level + 1)
        while True:
            k, v, _ = self.peek()
            if k == "op" and v in ops:
                self.next()
                right = self.parse_expr(level + 1)
                left = K.Bin(v, left, right)
            else:
                return left

    def parse_postfix(self) -> Tuple[K.Expr, Optional[str]]:
        """A primary followed by any number of ``.field`` accesses.

        Returns ``(expr, struct_type)`` where the type, when known,
        lets a chained access (``p.next.val``) resolve its offset."""
        expr, stype = self.parse_primary()
        while True:
            dot = self.peek()
            if not self.accept("op", "."):
                return expr, stype
            ftok = self.peek()
            fname = self.expect("name")
            if stype is None:
                raise self.error(
                    dot, f"field access .{fname}: expression has no "
                         "declared struct type")
            sdef = self.structs.get(stype)
            if sdef is None:
                raise self.error(
                    dot, f"struct {stype!r} is not defined yet "
                         "(declare structs before use)")
            offset = sdef.offset_of(fname)
            if offset is None:
                raise self.error(
                    ftok, f"struct {stype!r} has no field {fname!r}")
            expr = K.Field(expr, fname, offset, line=ftok[2])
            stype = sdef.field_types.get(fname)

    def parse_primary(self) -> Tuple[K.Expr, Optional[str]]:
        tok = self.next()
        k, v, line = tok
        if k == "num":
            return K.Const(int(v)), None
        if k == "op" and v == "(":
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner, None
        if k == "op" and v == "&":
            ntok = self.peek()
            name = self.expect("name")
            if not (name in self.locals_ or name in self.params
                    or name in self.statics
                    or any(name == a for a, _s in self.arrays)):
                raise self.error(
                    ntok, f"cannot take the address of undeclared "
                          f"name {name!r}")
            return K.AddrOf(name, line=line), self.var_types.get(
                name, self.static_types.get(name))
        if k == "kw" and v == "new":
            if self.accept("op", "["):
                count = self.parse_expr()
                self.expect("op", "]")
                return K.New(count, None, line=line), None
            stok = self.peek()
            sname = self.expect("name")
            sdef = self.structs.get(sname)
            if sdef is None:
                raise self.error(
                    stok, f"new: unknown struct {sname!r} (structs must "
                          "be defined before they are allocated)")
            return (K.New(K.Const(sdef.size), sname, line=line), sname)
        if k != "name":
            raise self.error(tok, "unexpected token in expression")
        # call?
        if self.accept("op", "("):
            args: List[K.Expr] = []
            if not self.accept("op", ")"):
                args.append(self.parse_expr())
                while self.accept("op", ","):
                    args.append(self.parse_expr())
                self.expect("op", ")")
            if v in self.locals_ or v in self.params or v in self.statics:
                # Calling through a declared variable: indirect call.
                return (K.CallIndirect(self._name_ref(v, tok),
                                       tuple(args), line=line), None)
            return K.CallExpr(v, tuple(args)), None
        # index?
        if self.accept("op", "["):
            index = self.parse_expr()
            self.expect("op", "]")
            if any(name == v for name, _size in self.arrays):
                return K.LocalArr(v, index), None
            return K.Deref(self._name_ref(v, tok), index), None
        if v in self.func_names and not (
                v in self.locals_ or v in self.params or v in self.statics):
            # A bare function name is a function value.
            return K.FuncRef(v, line=line), None
        ref = self._name_ref(v, tok)
        return ref, self.var_types.get(v, self.static_types.get(v))

    def _name_ref(self, name: str, tok: Token) -> K.Expr:
        if name in self.locals_:
            return K.Local(name)
        if name in self.params:
            return K.Param(name)
        if name in self.statics:
            return K.Static(name)
        raise self.error(tok, f"undeclared name {name!r}")


def parse_kernel(text: str, name: str = "kernel") -> K.KernelProgram:
    """Parse kernel-language source into a :class:`KernelProgram`."""
    return _Parser(text).parse_program(name)


def compile_source(text: str, name: str = "kernel", regalloc: str = "naive"):
    """Parse and compile in one step; returns an ObjectFile."""
    from repro.instrument.compiler import compile_kernel
    return compile_kernel(parse_kernel(text, name), regalloc=regalloc)
