"""Assembler / disassembler for the mini ISA.

A human-readable text format for compiled and synthetic code, round-
trippable through :func:`assemble` / :func:`disassemble`.  Used by the
toolchain tests, by the CLI's ``disasm`` command, and whenever a kernel's
generated code needs eyeballing (e.g. verifying which loads the static
filter will instrument).

Format::

    .func main section=app frame=3
        st a0, 0(fp)
        li t0, 5
        add t1, t0, t0
        beqz t1, main.else1
        call __race_analysis
    main.else1:
        ret
    .endfunc
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional

from repro.errors import InstrumentationError
from repro.instrument.isa import (ALU_OPS, BinaryImage, Function,
                                  Instruction, ObjectFile, Op, Section)

_SECTION_BY_NAME = {s.value: s for s in Section}

_MEM_RE = re.compile(
    r"^(ld|st)\s+([a-z]\w*)\s*,\s*(-?\d+)\(([a-z]\w*)\)$")
_LI_RE = re.compile(r"^li\s+([a-z]\w*)\s*,\s*(-?\d+)$")
_MOV_RE = re.compile(r"^mov\s+([a-z]\w*)\s*,\s*([a-z]\w*)$")
_ALU_RE = re.compile(
    r"^(add|sub|mul|div|and|or|xor|slt|seq)\s+([a-z]\w*)\s*,\s*"
    r"([a-z]\w*)\s*,\s*([a-z]\w*)$")
_BRANCH_RE = re.compile(r"^(beqz|bnez)\s+([a-z]\w*)\s*,\s*(\S+)$")
_J_RE = re.compile(r"^j\s+(\S+)$")
_CALL_RE = re.compile(r"^call\s+(\S+)$")
_CALLR_RE = re.compile(r"^callr\s+([a-z%]\w*)$")
_LA_RE = re.compile(r"^la\s+([a-z]\w*)\s*,\s*(\S+)$")
_LABEL_RE = re.compile(r"^(\S+):$")
_FUNC_RE = re.compile(
    r"^\.func\s+(\S+)\s+section=(\w+)(?:\s+frame=(\d+))?$")


def disassemble_instruction(ins: Instruction) -> str:
    """One instruction in assembler syntax (labels as ``name:``)."""
    if ins.op is Op.LABEL:
        return f"{ins.target}:"
    return ins.render()


def disassemble_function(fn: Function) -> str:
    lines = [f".func {fn.name} section={fn.section.value} "
             f"frame={fn.frame_words}"]
    for ins in fn.instructions:
        text = disassemble_instruction(ins)
        indent = "" if ins.op is Op.LABEL else "    "
        lines.append(indent + text)
    lines.append(".endfunc")
    return "\n".join(lines)


def disassemble(image_or_obj) -> str:
    """Disassemble a BinaryImage or ObjectFile to text."""
    if isinstance(image_or_obj, BinaryImage):
        functions: Iterable[Function] = (
            image_or_obj.functions[n] for n in sorted(image_or_obj.functions))
    else:
        functions = image_or_obj.functions
    return "\n\n".join(disassemble_function(fn) for fn in functions)


def assemble_line(line: str) -> Instruction:
    """Parse one (stripped, non-directive) assembler line."""
    m = _MEM_RE.match(line)
    if m:
        op, reg, offset, base = m.groups()
        return Instruction(Op.LD if op == "ld" else Op.ST, reg=reg,
                           base=base, offset=int(offset))
    m = _LI_RE.match(line)
    if m:
        return Instruction(Op.LI, reg=m.group(1), imm=int(m.group(2)))
    m = _MOV_RE.match(line)
    if m:
        return Instruction(Op.MOV, reg=m.group(1), srcs=(m.group(2),))
    m = _ALU_RE.match(line)
    if m:
        op, dst, a, b = m.groups()
        return Instruction(Op(op), reg=dst, srcs=(a, b))
    m = _BRANCH_RE.match(line)
    if m:
        op, src, target = m.groups()
        return Instruction(Op(op), srcs=(src,), target=target)
    m = _J_RE.match(line)
    if m:
        return Instruction(Op.J, target=m.group(1))
    m = _CALLR_RE.match(line)
    if m:
        return Instruction(Op.CALLR, srcs=(m.group(1),))
    m = _LA_RE.match(line)
    if m:
        return Instruction(Op.LA, reg=m.group(1), target=m.group(2))
    m = _CALL_RE.match(line)
    if m:
        return Instruction(Op.CALL, target=m.group(1))
    m = _LABEL_RE.match(line)
    if m:
        return Instruction(Op.LABEL, target=m.group(1))
    if line == "ret":
        return Instruction(Op.RET)
    if line == "nop":
        return Instruction(Op.NOP)
    raise InstrumentationError(f"cannot assemble line: {line!r}")


def assemble(text: str, name: str = "assembled") -> ObjectFile:
    """Assemble a full listing (one or more ``.func`` blocks)."""
    obj = ObjectFile(name)
    current: Optional[Dict] = None
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _FUNC_RE.match(line)
        if m:
            if current is not None:
                raise InstrumentationError("nested .func")
            fname, section, frame = m.groups()
            if section not in _SECTION_BY_NAME:
                raise InstrumentationError(f"unknown section {section!r}")
            current = {"name": fname,
                       "section": _SECTION_BY_NAME[section],
                       "frame": int(frame or 0),
                       "code": []}
            continue
        if line == ".endfunc":
            if current is None:
                raise InstrumentationError(".endfunc without .func")
            obj.add(Function(current["name"], current["code"],
                             current["section"],
                             frame_words=current["frame"]))
            current = None
            continue
        if current is None:
            raise InstrumentationError(
                f"instruction outside .func: {line!r}")
        current["code"].append(assemble_line(line))
    if current is not None:
        raise InstrumentationError(f"unterminated .func {current['name']!r}")
    return obj
