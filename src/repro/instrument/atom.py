"""The ATOM-analogue binary rewriter and static filter (paper §5.1).

Given a linked binary, classify every load and store:

1. instructions in library sections → not instrumented (applications do
   not pass shared pointers into libraries);
2. instructions in the CVM runtime → not instrumented;
3. frame-pointer (or stack-pointer) relative accesses → stack data;
4. global-pointer relative accesses → statically allocated data, which in
   a CVM program cannot be shared (all shared memory is dynamic);
5. everything else *might* reference shared memory → instrument: insert a
   call to the analysis routine before the access.

The rewriter also reproduces ATOM's restriction that instrumentation is a
procedure call, not inlined code — the "Proc Call" overhead bar of
Figure 3; :func:`AtomRewriter.instrument` inserts a real ``call
__race_analysis`` instruction that the interpreter executes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.instrument.isa import (STACK_BASES, STATIC_BASES, BinaryImage,
                                  Function, Instruction, Op, Section)

#: Symbol of the inserted analysis routine.
ANALYSIS_SYMBOL = "__race_analysis"


class AccessClass(enum.Enum):
    """Table 2's columns."""

    STACK = "stack"
    STATIC = "static"
    LIBRARY = "library"
    CVM = "cvm"
    INSTRUMENTED = "instrumented"


def classify(fn: Function, ins: Instruction) -> AccessClass:
    """Static classification of one memory instruction."""
    if not ins.is_memory:
        raise ValueError(f"not a memory instruction: {ins.render()}")
    if fn.section is Section.LIBC:
        return AccessClass.LIBRARY
    if fn.section is Section.CVM:
        return AccessClass.CVM
    if ins.base in STACK_BASES:
        return AccessClass.STACK
    if ins.base in STATIC_BASES:
        return AccessClass.STATIC
    return AccessClass.INSTRUMENTED


@dataclass
class InstrumentationReport:
    """Static statistics for one binary (one row of Table 2)."""

    binary: str
    counts: Dict[AccessClass, int] = field(
        default_factory=lambda: {c: 0 for c in AccessClass})
    total_instructions: int = 0

    @property
    def total_memory_ops(self) -> int:
        return sum(self.counts.values())

    @property
    def instrumented(self) -> int:
        return self.counts[AccessClass.INSTRUMENTED]

    @property
    def eliminated_fraction(self) -> float:
        """Share of loads/stores statically proven non-shared — the paper
        reports >99% across all four applications."""
        total = self.total_memory_ops
        if total == 0:
            return 1.0
        return 1.0 - self.instrumented / total

    def row(self) -> Dict[str, int]:
        """Table 2 row: Stack / Static / Library / CVM / Inst."""
        return {
            "stack": self.counts[AccessClass.STACK],
            "static": self.counts[AccessClass.STATIC],
            "library": self.counts[AccessClass.LIBRARY],
            "cvm": self.counts[AccessClass.CVM],
            "instrumented": self.counts[AccessClass.INSTRUMENTED],
        }


class AtomRewriter:
    """Analyze and (optionally) rewrite binaries."""

    def analyze(self, image: BinaryImage) -> InstrumentationReport:
        """Classify every load/store without modifying the binary."""
        report = InstrumentationReport(image.name)
        for fn, ins in image.all_instructions():
            report.total_instructions += 1
            if ins.is_memory:
                report.counts[classify(fn, ins)] += 1
        return report

    def instrument(self, image: BinaryImage,
                   classifier=None) -> BinaryImage:
        """Produce a new binary with an analysis call inserted before each
        surviving load/store.  The call passes the effective-address base
        register so the analysis routine can test it against the shared
        segment at run time (the "Access Check").

        ``classifier`` optionally replaces the per-instruction addressing
        rules: a callable ``fn -> {instruction index: AccessClass}`` — the
        hook the enhanced provenance filter
        (:mod:`repro.instrument.dataflow`) plugs into.
        """
        out = BinaryImage(f"{image.name}+atom")
        for name in sorted(image.functions):
            fn = image.functions[name]
            if fn.section is not Section.APP:
                out.add(fn)  # libraries/CVM are never rewritten
                continue
            if classifier is not None:
                classes = classifier(fn)
            else:
                classes = {i: classify(fn, ins)
                           for i, ins in enumerate(fn.instructions)
                           if ins.is_memory}
            code: List[Instruction] = []
            for i, ins in enumerate(fn.instructions):
                if ins.is_memory and \
                        classes[i] is AccessClass.INSTRUMENTED:
                    code.append(Instruction(
                        Op.CALL, target=ANALYSIS_SYMBOL,
                        srcs=(ins.base or "", "ld" if ins.op is Op.LD else "st"),
                        offset=ins.offset, origin=ins.origin))
                code.append(ins)
            out.add(Function(fn.name, code, fn.section,
                             frame_words=fn.frame_words))
        out.entry = image.entry
        return out
