"""A miniature RISC instruction set with Alpha-flavoured conventions.

What matters for the paper's static filter is the *addressing discipline*:

* stack variables are addressed relative to the frame pointer ``fp``;
* statically allocated globals are addressed relative to the global
  pointer ``gp``;
* dynamically allocated (potentially shared) data is addressed through
  general registers holding pointers.

Everything else (ALU ops, branches, calls) exists so that compiled kernels
are real programs the interpreter can run, and so that instruction-count
ratios (memory ops vs. total) are realistic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

# Dedicated registers (by convention, like the Alpha calling standard).
FP = "fp"    # frame pointer: stack accesses
GP = "gp"    # global pointer: statically-allocated data
SP = "sp"    # stack pointer (alias class of fp for the filter)
RA = "ra"    # return address
ZERO = "zero"
#: Argument registers.
ARG_REGS = tuple(f"a{i}" for i in range(6))
#: Return-value register.
RV = "v0"
#: Caller-saved temporaries available to the code generator.
TEMP_REGS = tuple(f"t{i}" for i in range(12))

STACK_BASES = frozenset({FP, SP})
STATIC_BASES = frozenset({GP})

#: Base of the function-address space: ``Op.LA`` materializes
#: ``FUNC_BASE + index`` where the index is the symbol's rank in the
#: linked binary's sorted name order.  Well above every data region, so a
#: function address can never alias a stack/static/heap word.
FUNC_BASE = 1 << 20


class Op(enum.Enum):
    """Opcodes.  ``LD``/``ST`` are the only memory instructions."""

    LD = "ld"        # ld   rd, off(base)
    ST = "st"        # st   rs, off(base)
    LI = "li"        # li   rd, imm
    MOV = "mov"      # mov  rd, rs
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLT = "slt"      # set-less-than
    SEQ = "seq"      # set-equal
    BEQZ = "beqz"    # branch to label if rs == 0
    BNEZ = "bnez"
    J = "j"          # unconditional jump to label
    CALL = "call"    # call function by name
    CALLR = "callr"  # call through a register holding a function address
    LA = "la"        # la rd, symbol — load a function-address constant
    RET = "ret"
    LABEL = "label"  # pseudo-instruction
    NOP = "nop"

MEMORY_OPS = (Op.LD, Op.ST)
ALU_OPS = (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.AND, Op.OR, Op.XOR,
           Op.SLT, Op.SEQ)


class Section(enum.Enum):
    """Text sections — the unit the static filter's library rule works on."""

    APP = "app"
    LIBC = "library"
    CVM = "cvm"


@dataclass
class Instruction:
    """One instruction.

    For memory ops, ``base`` is the base register and ``offset`` the
    word displacement; ``reg`` is the data register.  For ALU ops,
    ``reg`` is the destination and ``srcs`` the operands.  ``imm`` holds
    immediates, ``target`` labels/callees.  ``origin`` carries the source
    position for diagnostics and PC attribution.
    """

    op: Op
    reg: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    base: Optional[str] = None
    offset: int = 0
    imm: Optional[int] = None
    target: Optional[str] = None
    origin: str = ""

    @property
    def is_memory(self) -> bool:
        return self.op in MEMORY_OPS

    def render(self) -> str:
        if self.op is Op.LD:
            return f"ld {self.reg}, {self.offset}({self.base})"
        if self.op is Op.ST:
            return f"st {self.reg}, {self.offset}({self.base})"
        if self.op is Op.LI:
            return f"li {self.reg}, {self.imm}"
        if self.op is Op.MOV:
            return f"mov {self.reg}, {self.srcs[0]}"
        if self.op in ALU_OPS:
            return f"{self.op.value} {self.reg}, {', '.join(self.srcs)}"
        if self.op in (Op.BEQZ, Op.BNEZ):
            return f"{self.op.value} {self.srcs[0]}, {self.target}"
        if self.op is Op.J:
            return f"j {self.target}"
        if self.op is Op.CALL:
            return f"call {self.target}"
        if self.op is Op.CALLR:
            return f"callr {self.srcs[0]}"
        if self.op is Op.LA:
            return f"la {self.reg}, {self.target}"
        if self.op is Op.LABEL:
            return f"{self.target}:"
        return self.op.value


@dataclass
class Function:
    """A compiled or synthetic function."""

    name: str
    instructions: List[Instruction]
    section: Section = Section.APP
    #: Number of stack words the frame uses (locals + spills).
    frame_words: int = 0

    @property
    def memory_instructions(self) -> List[Instruction]:
        return [ins for ins in self.instructions if ins.is_memory]

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class ObjectFile:
    """A set of functions destined for one section."""

    name: str
    functions: List[Function] = field(default_factory=list)

    def add(self, fn: Function) -> None:
        self.functions.append(fn)


@dataclass
class BinaryImage:
    """A linked executable: functions from all sections, call-resolvable."""

    name: str
    functions: Dict[str, Function] = field(default_factory=dict)
    entry: Optional[str] = None

    def add(self, fn: Function) -> None:
        if fn.name in self.functions:
            raise ValueError(f"duplicate symbol {fn.name!r}")
        self.functions[fn.name] = fn

    def all_instructions(self) -> Iterator[Tuple[Function, Instruction]]:
        for name in sorted(self.functions):
            fn = self.functions[name]
            for ins in fn.instructions:
                yield fn, ins

    # -- function addresses (first-class functions) -------------------- #
    def _address_table(self) -> Dict[str, int]:
        cached = getattr(self, "_fa_cache", None)
        if cached is not None and cached[0] == len(self.functions):
            return cached[1]
        table = {name: FUNC_BASE + i
                 for i, name in enumerate(sorted(self.functions))}
        self._fa_cache = (len(self.functions), table)
        return table

    def function_address(self, name: str) -> int:
        """The address ``Op.LA`` materializes for ``name``.

        Keyed on the *sorted symbol order*, which instrumentation and
        batching preserve (they rewrite bodies, never names), so function
        values survive every binary rewrite unchanged.
        """
        table = self._address_table()
        addr = table.get(name)
        if addr is None:
            raise KeyError(f"binary {self.name!r}: no function {name!r}")
        return addr

    def function_by_address(self, addr: int) -> Optional[str]:
        """Inverse of :meth:`function_address`; None for a bad address."""
        index = addr - FUNC_BASE
        names = sorted(self.functions)
        if 0 <= index < len(names):
            return names[index]
        return None

    def load_store_count(self) -> int:
        return sum(1 for _fn, ins in self.all_instructions() if ins.is_memory)

    def total_instructions(self) -> int:
        return sum(len(fn) for fn in self.functions.values())
