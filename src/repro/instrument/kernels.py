"""Kernel-language sources for the four applications' compute cores.

These are the mini-language analogues of the C sources whose binaries the
paper instrumented: the inner loops of FFT, SOR, TSP and Water, written
against dynamically-allocated (potentially shared) arrays via ``Deref``,
with loop counters and scratch in locals, lookup tables in statics, and
per-call scratch arrays on the stack.  Compiling and linking them yields
binaries whose load/store classification regenerates Table 2's structure:
a handful of app accesses survive the static filter while libraries and
the CVM runtime dominate raw counts.

Relative sizes follow the paper: Water has the largest instrumented
residue, then TSP, then FFT, then SOR; FFT and Water additionally link
``libm`` (their binaries carried ~125k library loads/stores vs ~49k for
SOR and TSP).
"""

from __future__ import annotations

from typing import Dict, List

from repro.instrument.kernel_ast import (Assign, Bin, CallExpr, Const, Deref,
                                         ExprStmt, For, If, KernelFunction,
                                         KernelProgram, Local, LocalArr,
                                         Param, Return, Static, While)


def _loop(var: str, end, body, start=Const(0), step: int = 1) -> For:
    return For(Local(var), start, end, body, step=step)


# --------------------------------------------------------------------- #
# FFT: 1D butterflies over a dynamically allocated complex array plus a
# blocked transpose (the phase that causes the false sharing the paper's
# Table 3 shows for FFT).
# --------------------------------------------------------------------- #
def fft_program() -> KernelProgram:
    data, twid, n, stride = Param("data"), Param("twiddles"), Param("n"), Param("stride")
    butterfly = KernelFunction(
        "fft_butterfly", params=("data", "twiddles", "n", "stride"),
        locals_=("i", "j", "ar", "ai", "br", "bi", "wr", "wi", "tr", "ti"),
        body=[
            _loop("i", Local("n"), [
                Assign(Local("j"), Bin("+", Local("i"), Local("stride"))),
                Assign(Local("ar"), Deref(data, Bin("*", Local("i"), Const(2)))),
                Assign(Local("ai"), Deref(data, Bin("+", Bin("*", Local("i"), Const(2)), Const(1)))),
                Assign(Local("br"), Deref(data, Bin("*", Local("j"), Const(2)))),
                Assign(Local("bi"), Deref(data, Bin("+", Bin("*", Local("j"), Const(2)), Const(1)))),
                Assign(Local("wr"), Deref(twid, Bin("*", Local("i"), Const(2)))),
                Assign(Local("wi"), Deref(twid, Bin("+", Bin("*", Local("i"), Const(2)), Const(1)))),
                Assign(Local("tr"), Bin("-", Bin("*", Local("br"), Local("wr")),
                                        Bin("*", Local("bi"), Local("wi")))),
                Assign(Local("ti"), Bin("+", Bin("*", Local("br"), Local("wi")),
                                        Bin("*", Local("bi"), Local("wr")))),
                Assign(Deref(data, Bin("*", Local("i"), Const(2))),
                       Bin("+", Local("ar"), Local("tr"))),
                Assign(Deref(data, Bin("+", Bin("*", Local("i"), Const(2)), Const(1))),
                       Bin("+", Local("ai"), Local("ti"))),
                Assign(Deref(data, Bin("*", Local("j"), Const(2))),
                       Bin("-", Local("ar"), Local("tr"))),
                Assign(Deref(data, Bin("+", Bin("*", Local("j"), Const(2)), Const(1))),
                       Bin("-", Local("ai"), Local("ti"))),
            ]),
        ])
    transpose = KernelFunction(
        "fft_transpose", params=("src", "dst", "rows", "cols"),
        locals_=("r", "c", "v"),
        body=[
            _loop("r", Local("rows"), [
                _loop("c", Local("cols"), [
                    Assign(Local("v"), Deref(Param("src"),
                                             Bin("+", Bin("*", Local("r"), Local("cols")), Local("c")))),
                    Assign(Deref(Param("dst"),
                                 Bin("+", Bin("*", Local("c"), Local("rows")), Local("r"))),
                           Local("v")),
                ]),
            ]),
        ])
    bitrev = KernelFunction(
        "fft_bit_reverse", params=("data", "n"),
        locals_=("i", "j", "bit", "t0", "t1"),
        arrays=(("perm", 32),),
        body=[
            _loop("i", Local("n"), [
                Assign(Local("j"), Const(0)),
                Assign(Local("bit"), Const(0)),
                While(Bin("<", Local("bit"), Const(5)), [
                    Assign(LocalArr("perm", Local("bit")), Local("j")),
                    Assign(Local("j"), Bin("+", Bin("*", Local("j"), Const(2)),
                                           Bin("&", Local("i"), Const(1)))),
                    Assign(Local("bit"), Bin("+", Local("bit"), Const(1))),
                ]),
                If(Bin("<", Local("i"), Local("j")), [
                    Assign(Local("t0"), Deref(Param("data"), Local("i"))),
                    Assign(Local("t1"), Deref(Param("data"), Local("j"))),
                    Assign(Deref(Param("data"), Local("i")), Local("t1")),
                    Assign(Deref(Param("data"), Local("j")), Local("t0")),
                ]),
            ]),
        ])
    scale = KernelFunction(
        "fft_scale", params=("data", "n"),
        locals_=("i",),
        body=[
            _loop("i", Local("n"), [
                Assign(Deref(Param("data"), Local("i")),
                       Bin("/", Deref(Param("data"), Local("i")), Static("fft_norm"))),
            ]),
        ])
    main = KernelFunction(
        "main", params=("n",), locals_=("p", "d", "t"),
        body=[
            Assign(Local("d"), CallExpr("malloc", (Bin("*", Local("n"), Const(2)),))),
            Assign(Local("t"), CallExpr("malloc", (Bin("*", Local("n"), Const(2)),))),
            ExprStmt(CallExpr("fft_bit_reverse", (Local("d"), Local("n")))),
            ExprStmt(CallExpr("fft_butterfly",
                              (Local("d"), Local("t"), Local("n"), Const(1)))),
            ExprStmt(CallExpr("fft_transpose",
                              (Local("d"), Local("t"), Const(8), Const(8)))),
            ExprStmt(CallExpr("fft_scale", (Local("d"), Local("n")))),
            Return(Const(0)),
        ])
    return KernelProgram("fft", statics=("fft_norm", "fft_log2n"),
                         functions=[butterfly, transpose, bitrev, scale, main])


# --------------------------------------------------------------------- #
# SOR: Jacobi relaxation — the smallest kernel (fewest instrumented ops).
# --------------------------------------------------------------------- #
def sor_program() -> KernelProgram:
    relax = KernelFunction(
        "sor_relax_row", params=("src", "dst", "cols", "row"),
        locals_=("c", "up", "down", "left", "right", "base"),
        body=[
            Assign(Local("base"), Bin("*", Local("row"), Local("cols"))),
            _loop("c", Bin("-", Local("cols"), Const(1)), [
                Assign(Local("up"), Deref(Param("src"),
                                          Bin("-", Bin("+", Local("base"), Local("c")), Local("cols")))),
                Assign(Local("down"), Deref(Param("src"),
                                            Bin("+", Bin("+", Local("base"), Local("c")), Local("cols")))),
                Assign(Local("left"), Deref(Param("src"),
                                            Bin("-", Bin("+", Local("base"), Local("c")), Const(1)))),
                Assign(Local("right"), Deref(Param("src"),
                                             Bin("+", Bin("+", Local("base"), Local("c")), Const(1)))),
                Assign(Deref(Param("dst"), Bin("+", Local("base"), Local("c"))),
                       Bin("/", Bin("+", Bin("+", Local("up"), Local("down")),
                                    Bin("+", Local("left"), Local("right"))),
                           Const(4))),
            ], start=Const(1)),
        ])
    init = KernelFunction(
        "sor_init", params=("grid", "n"), locals_=("i",),
        body=[
            _loop("i", Local("n"), [
                Assign(Deref(Param("grid"), Local("i")), Static("sor_seed")),
            ]),
        ])
    main = KernelFunction(
        "main", params=("rows", "cols"), locals_=("a", "b", "r"),
        body=[
            Assign(Local("a"), CallExpr("malloc",
                                        (Bin("*", Local("rows"), Local("cols")),))),
            Assign(Local("b"), CallExpr("malloc",
                                        (Bin("*", Local("rows"), Local("cols")),))),
            ExprStmt(CallExpr("sor_init",
                              (Local("a"), Bin("*", Local("rows"), Local("cols"))))),
            _loop("r", Bin("-", Local("rows"), Const(1)), [
                ExprStmt(CallExpr("sor_relax_row",
                                  (Local("a"), Local("b"), Local("cols"), Local("r")))),
            ], start=Const(1)),
            Return(Const(0)),
        ])
    return KernelProgram("sor", statics=("sor_seed",),
                         functions=[relax, init, main])


# --------------------------------------------------------------------- #
# TSP: branch-and-bound with a shared work queue and global bound —
# pointer-chasing code with many instrumented accesses per line.
# --------------------------------------------------------------------- #
def tsp_program() -> KernelProgram:
    dist = lambda i, j: Deref(Param("dmat"), Bin("+", Bin("*", i, Static("tsp_ncities")), j))  # noqa: E731
    tour_len = KernelFunction(
        "tsp_tour_length", params=("dmat", "tour", "k"),
        locals_=("i", "total", "a", "b"),
        body=[
            Assign(Local("total"), Const(0)),
            _loop("i", Bin("-", Local("k"), Const(1)), [
                Assign(Local("a"), Deref(Param("tour"), Local("i"))),
                Assign(Local("b"), Deref(Param("tour"), Bin("+", Local("i"), Const(1)))),
                Assign(Local("total"), Bin("+", Local("total"),
                                           dist(Local("a"), Local("b")))),
            ]),
            Return(Local("total")),
        ])
    expand = KernelFunction(
        "tsp_expand_node", params=("dmat", "queue", "qlen", "node"),
        locals_=("city", "len", "slot", "c"),
        arrays=(("visited", 24),),
        body=[
            _loop("c", Static("tsp_ncities"), [
                Assign(LocalArr("visited", Local("c")), Const(0)),
            ]),
            _loop("c", Static("tsp_ncities"), [
                Assign(Local("city"), Deref(Param("queue"),
                                            Bin("+", Param("node"), Local("c")))),
                Assign(LocalArr("visited", Local("city")), Const(1)),
            ]),
            _loop("c", Static("tsp_ncities"), [
                If(Bin("==", LocalArr("visited", Local("c")), Const(0)), [
                    Assign(Local("slot"), Bin("+", Param("qlen"), Local("c"))),
                    Assign(Deref(Param("queue"), Local("slot")), Local("c")),
                ]),
            ]),
            Return(Local("slot")),
        ])
    prune = KernelFunction(
        "tsp_prune", params=("lower", "bound_ptr"),
        locals_=("bound",),
        body=[
            # The famous unsynchronized read of the global tour bound.
            Assign(Local("bound"), Deref(Param("bound_ptr"), Const(0))),
            If(Bin("<", Local("bound"), Local("lower")),
               [Return(Const(1))], [Return(Const(0))]),
        ])
    update_bound = KernelFunction(
        "tsp_update_bound", params=("bound_ptr", "candidate"),
        locals_=("cur",),
        body=[
            Assign(Local("cur"), Deref(Param("bound_ptr"), Const(0))),
            If(Bin("<", Param("candidate"), Local("cur")), [
                Assign(Deref(Param("bound_ptr"), Const(0)), Param("candidate")),
            ]),
        ])
    validate = KernelFunction(
        "tsp_validate_tour", params=("tour", "k"),
        locals_=("i", "j", "a", "b", "dups"),
        body=[
            Assign(Local("dups"), Const(0)),
            _loop("i", Local("k"), [
                Assign(Local("a"), Deref(Param("tour"), Local("i"))),
                _loop("j", Local("k"), [
                    Assign(Local("b"), Deref(Param("tour"), Local("j"))),
                    If(Bin("==", Local("a"), Local("b")), [
                        Assign(Local("dups"), Bin("+", Local("dups"), Const(1))),
                    ]),
                ]),
            ]),
            Return(Local("dups")),
        ])
    compact = KernelFunction(
        "tsp_compact_queue", params=("queue", "qlen"),
        locals_=("src", "dst", "flag", "v", "w"),
        body=[
            Assign(Local("dst"), Const(0)),
            _loop("src", Local("qlen"), [
                Assign(Local("flag"), Deref(Param("queue"), Local("src"))),
                If(Bin("<", Const(0), Local("flag")), [
                    Assign(Local("v"), Deref(Param("queue"), Local("src"))),
                    Assign(Local("w"), Deref(Param("queue"),
                                             Bin("+", Local("src"), Const(1)))),
                    Assign(Deref(Param("queue"), Local("dst")), Local("v")),
                    Assign(Deref(Param("queue"),
                                 Bin("+", Local("dst"), Const(1))), Local("w")),
                    Assign(Local("dst"), Bin("+", Local("dst"), Const(2))),
                ]),
            ]),
            Return(Local("dst")),
        ])
    record_best = KernelFunction(
        "tsp_record_best", params=("tour", "best", "k"),
        locals_=("i", "v"),
        body=[
            _loop("i", Local("k"), [
                Assign(Local("v"), Deref(Param("tour"), Local("i"))),
                Assign(Deref(Param("best"), Local("i")), Local("v")),
            ]),
            Assign(Deref(Param("best"), Local("k")),
                   Static("tsp_best_seen")),
        ])
    main = KernelFunction(
        "main", params=("ncities",), locals_=("dmat", "queue", "bound", "i", "l"),
        body=[
            Assign(Static("tsp_ncities"), Local("ncities")),
            Assign(Local("dmat"), CallExpr("malloc",
                                           (Bin("*", Local("ncities"), Local("ncities")),))),
            Assign(Local("queue"), CallExpr("malloc", (Const(4096),))),
            Assign(Local("bound"), CallExpr("malloc", (Const(1),))),
            Assign(Deref(Local("bound"), Const(0)), Const(1 << 20)),
            _loop("i", Local("ncities"), [
                Assign(Local("l"), CallExpr("tsp_tour_length",
                                            (Local("dmat"), Local("queue"), Local("ncities")))),
                ExprStmt(CallExpr("tsp_update_bound", (Local("bound"), Local("l")))),
                ExprStmt(CallExpr("tsp_expand_node",
                                  (Local("dmat"), Local("queue"), Local("i"), Local("i")))),
                ExprStmt(CallExpr("tsp_prune", (Local("l"), Local("bound")))),
                ExprStmt(CallExpr("tsp_validate_tour",
                                  (Local("queue"), Local("ncities")))),
                ExprStmt(CallExpr("tsp_record_best",
                                  (Local("queue"), Local("dmat"), Local("i")))),
            ]),
            ExprStmt(CallExpr("tsp_compact_queue",
                              (Local("queue"), Local("ncities")))),
            Return(Const(0)),
        ])
    return KernelProgram("tsp", statics=("tsp_ncities", "tsp_best_seen"),
                         functions=[tour_len, expand, prune, update_bound,
                                    validate, compact, record_best, main])


# --------------------------------------------------------------------- #
# Water: the largest kernel — O(n^2) molecular force interactions over
# shared position/force arrays plus intra-molecule updates.
# --------------------------------------------------------------------- #
def water_program() -> KernelProgram:
    def vec(ptr, mol, axis):
        return Deref(Param(ptr), Bin("+", Bin("*", mol, Const(3)), Const(axis)))

    inter = KernelFunction(
        "water_interf", params=("pos", "forces", "i", "j"),
        locals_=("dx", "dy", "dz", "r2", "f"),
        body=[
            Assign(Local("dx"), Bin("-", vec("pos", Local("i"), 0),
                                    vec("pos", Local("j"), 0))),
            Assign(Local("dy"), Bin("-", vec("pos", Local("i"), 1),
                                    vec("pos", Local("j"), 1))),
            Assign(Local("dz"), Bin("-", vec("pos", Local("i"), 2),
                                    vec("pos", Local("j"), 2))),
            Assign(Local("r2"), Bin("+", Bin("*", Local("dx"), Local("dx")),
                                    Bin("+", Bin("*", Local("dy"), Local("dy")),
                                        Bin("*", Local("dz"), Local("dz"))))),
            Assign(Local("f"), Bin("/", Static("water_cutoff"),
                                   Bin("+", Local("r2"), Const(1)))),
            Assign(vec("forces", Local("i"), 0),
                   Bin("+", vec("forces", Local("i"), 0),
                       Bin("*", Local("f"), Local("dx")))),
            Assign(vec("forces", Local("i"), 1),
                   Bin("+", vec("forces", Local("i"), 1),
                       Bin("*", Local("f"), Local("dy")))),
            Assign(vec("forces", Local("i"), 2),
                   Bin("+", vec("forces", Local("i"), 2),
                       Bin("*", Local("f"), Local("dz")))),
            Assign(vec("forces", Local("j"), 0),
                   Bin("-", vec("forces", Local("j"), 0),
                       Bin("*", Local("f"), Local("dx")))),
            Assign(vec("forces", Local("j"), 1),
                   Bin("-", vec("forces", Local("j"), 1),
                       Bin("*", Local("f"), Local("dy")))),
            Assign(vec("forces", Local("j"), 2),
                   Bin("-", vec("forces", Local("j"), 2),
                       Bin("*", Local("f"), Local("dz")))),
        ])
    intra = KernelFunction(
        "water_intraf", params=("pos", "vel", "forces", "mol"),
        locals_=("a", "v", "p"),
        body=[
            _loop("a", Const(3), [
                Assign(Local("v"), vec("vel", Param("mol"), 0)),
                Assign(Local("p"), vec("pos", Param("mol"), 0)),
                Assign(Deref(Param("vel"),
                             Bin("+", Bin("*", Param("mol"), Const(3)), Local("a"))),
                       Bin("+", Local("v"),
                           Bin("*", Deref(Param("forces"),
                                          Bin("+", Bin("*", Param("mol"), Const(3)), Local("a"))),
                               Static("water_dt")))),
                Assign(Deref(Param("pos"),
                             Bin("+", Bin("*", Param("mol"), Const(3)), Local("a"))),
                       Bin("+", Local("p"), Static("water_dt"))),
            ]),
        ])
    kinetic = KernelFunction(
        "water_kineti", params=("vel", "nmol", "out"),
        locals_=("m", "a", "sum", "v"),
        body=[
            Assign(Local("sum"), Const(0)),
            _loop("m", Local("nmol"), [
                _loop("a", Const(3), [
                    Assign(Local("v"), Deref(Param("vel"),
                                             Bin("+", Bin("*", Local("m"), Const(3)), Local("a")))),
                    Assign(Local("sum"), Bin("+", Local("sum"),
                                             Bin("*", Local("v"), Local("v")))),
                ]),
            ]),
            Assign(Deref(Param("out"), Const(0)), Local("sum")),
        ])
    potential = KernelFunction(
        "water_poteng", params=("pos", "nmol", "out"),
        locals_=("i", "j", "acc"),
        body=[
            Assign(Local("acc"), Const(0)),
            _loop("i", Local("nmol"), [
                _loop("j", Local("nmol"), [
                    Assign(Local("acc"), Bin("+", Local("acc"),
                                             Deref(Param("pos"),
                                                   Bin("+", Local("i"), Local("j"))))),
                ]),
            ]),
            # The historical Splash bug: unsynchronized accumulation into a
            # shared global sum.
            Assign(Deref(Param("out"), Const(0)),
                   Bin("+", Deref(Param("out"), Const(0)), Local("acc"))),
        ])
    boundary = KernelFunction(
        "water_bndry", params=("pos", "nmol"),
        locals_=("m", "a", "p"),
        body=[
            _loop("m", Local("nmol"), [
                _loop("a", Const(3), [
                    Assign(Local("p"), Deref(Param("pos"),
                                             Bin("+", Bin("*", Local("m"), Const(3)), Local("a")))),
                    If(Bin("<", Static("water_boxl"), Local("p")), [
                        Assign(Deref(Param("pos"),
                                     Bin("+", Bin("*", Local("m"), Const(3)), Local("a"))),
                               Bin("-", Local("p"), Static("water_boxl"))),
                    ]),
                ]),
            ]),
        ])
    main = KernelFunction(
        "main", params=("nmol", "steps"),
        locals_=("pos", "vel", "forces", "sums", "s", "i", "j"),
        body=[
            Assign(Local("pos"), CallExpr("malloc", (Bin("*", Local("nmol"), Const(3)),))),
            Assign(Local("vel"), CallExpr("malloc", (Bin("*", Local("nmol"), Const(3)),))),
            Assign(Local("forces"), CallExpr("malloc", (Bin("*", Local("nmol"), Const(3)),))),
            Assign(Local("sums"), CallExpr("malloc", (Const(8),))),
            _loop("s", Local("steps"), [
                _loop("i", Local("nmol"), [
                    _loop("j", Local("nmol"), [
                        ExprStmt(CallExpr("water_interf",
                                          (Local("pos"), Local("forces"), Local("i"), Local("j")))),
                    ]),
                ]),
                _loop("i", Local("nmol"), [
                    ExprStmt(CallExpr("water_intraf",
                                      (Local("pos"), Local("vel"), Local("forces"), Local("i")))),
                ]),
                ExprStmt(CallExpr("water_kineti", (Local("vel"), Local("nmol"), Local("sums")))),
                ExprStmt(CallExpr("water_poteng", (Local("pos"), Local("nmol"), Local("sums")))),
                ExprStmt(CallExpr("water_bndry", (Local("pos"), Local("nmol")))),
            ]),
            Return(Const(0)),
        ])
    return KernelProgram(
        "water", statics=("water_cutoff", "water_dt", "water_boxl"),
        functions=[inter, intra, kinetic, potential, boundary, main])


#: All four kernel programs, in the paper's order.
KERNEL_PROGRAMS = {
    "fft": fft_program,
    "sor": sor_program,
    "tsp": tsp_program,
    "water": water_program,
}
