"""Interpreter for mini-ISA binaries.

Executes application code (including the analysis calls the rewriter
inserted), so the instrumentation pipeline can be demonstrated end to end:
compile a kernel, link it, rewrite it with :class:`AtomRewriter`, run it,
and watch the analysis routine fire once per surviving load/store while
fp/gp-relative accesses execute silently.

The machine has a flat word-addressed memory with three regions — stack,
static data, heap — mirroring the address-space layout the run-time shared
test relies on: dynamically allocated (heap) words are *potentially
shared*, everything else is private.  ``__race_analysis`` calls land in a
user hook, which by default classifies the effective address against the
heap region and counts shared vs. private — the same check CVM's analysis
routine performs against the shared segment (§5.1).

Library and CVM functions are not executed instruction-by-instruction
(their bodies are synthetic); calls to them return 0 unless an intrinsic
is registered.  This matches the modelling boundary: their cost and their
Table 2 classification matter, their semantics do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import InstrumentationError
from repro.instrument.atom import ANALYSIS_SYMBOL
from repro.instrument.isa import (ARG_REGS, FP, GP, RV, BinaryImage,
                                  Function, Instruction, Op, Section)

#: Memory layout (word addresses).
STACK_BASE = 0
STATIC_BASE = 1 << 16
HEAP_BASE = 1 << 17

AnalysisHook = Callable[[int, bool, str], None]


@dataclass
class AnalysisCounter:
    """Default analysis hook: classify effective addresses shared/private
    by region, like CVM's segment-bounds check."""

    shared: int = 0
    private: int = 0
    events: List[Tuple[int, bool]] = field(default_factory=list)

    def __call__(self, addr: int, is_store: bool, origin: str) -> None:
        if addr >= HEAP_BASE:
            self.shared += 1
        else:
            self.private += 1
        self.events.append((addr, is_store))

    def range_access(self, addr: int, count: int, is_store: bool,
                     origin: str) -> None:
        """Ranged entry point for batched instrumentation: classifies and
        records every word, so the observable event stream is identical
        to ``count`` scalar calls — only the procedure-call count shrank."""
        for i in range(count):
            self(addr + i, is_store, origin)


class Machine:
    """One mini-ISA execution context."""

    def __init__(self, image: BinaryImage, heap_words: int = 1 << 16,
                 analysis_hook: Optional[AnalysisHook] = None,
                 max_steps: int = 5_000_000):
        self.image = image
        self.memory: Dict[int, int] = {}
        self.heap_next = HEAP_BASE
        self.heap_limit = HEAP_BASE + heap_words
        self.sp = STACK_BASE + (1 << 15)  # stack grows down
        self.analysis_hook = analysis_hook or AnalysisCounter()
        self.analysis_calls = 0
        self.steps = 0
        self.max_steps = max_steps
        self.intrinsics: Dict[str, Callable[..., int]] = {
            "malloc": self._malloc,
            "__heap_alloc": self._heap_alloc,
            "__heap_free": self._heap_free,
        }
        self._labels: Dict[str, Dict[str, int]] = {}
        # Free lists for the ``new``/``delete`` allocator: exact-size
        # block recycling (metadata lives Python-side, uninstrumented,
        # like libc allocator internals).
        self._free_blocks: Dict[int, List[int]] = {}
        self._block_sizes: Dict[int, int] = {}
        self._faddrs: Optional[Dict[str, int]] = None
        self._fnames: Optional[Dict[int, str]] = None

    # ------------------------------------------------------------------ #
    # Public API.
    # ------------------------------------------------------------------ #
    def run(self, *args: int, entry: Optional[str] = None) -> int:
        """Execute the binary's entry function with integer arguments."""
        name = entry or self.image.entry
        if name is None:
            raise InstrumentationError("binary has no entry symbol")
        return self._call(name, list(args))

    def intrinsic(self, name: str, fn: Callable[..., int]) -> None:
        """Register a Python implementation for an external symbol."""
        self.intrinsics[name] = fn

    def read_word(self, addr: int) -> int:
        return self.memory.get(addr, 0)

    def write_word(self, addr: int, value: int) -> None:
        self.memory[addr] = value

    # ------------------------------------------------------------------ #
    # Internals.
    # ------------------------------------------------------------------ #
    def _malloc(self, nwords: int, *_ignored: int) -> int:
        """Bump allocator for the heap region.  Intrinsics are invoked with
        the full argument-register file, so extra values are ignored —
        user-registered intrinsics should follow the same convention."""
        addr = self.heap_next
        if addr + nwords > self.heap_limit:
            raise InstrumentationError("machine heap exhausted")
        self.heap_next += nwords
        return addr

    def _heap_alloc(self, nwords: int, *_ignored: int) -> int:
        """``new`` — bump allocation with exact-size free-list reuse.

        Deterministic: blocks freed by ``delete`` are recycled LIFO, so a
        churned allocation pattern (the hash-table app) revisits the same
        shared words instead of marching through the arena."""
        nwords = max(1, nwords)
        free = self._free_blocks.get(nwords)
        if free:
            addr = free.pop()
        else:
            addr = self._malloc(nwords)
        self._block_sizes[addr] = nwords
        return addr

    def _heap_free(self, addr: int, *_ignored: int) -> int:
        """``delete`` — return a block to its size class."""
        size = self._block_sizes.pop(addr, None)
        if size is None:
            raise InstrumentationError(
                f"__heap_free of unallocated address {addr}")
        self._free_blocks.setdefault(size, []).append(addr)
        return 0

    def _build_func_tables(self) -> None:
        self._faddrs = {}
        self._fnames = {}
        for fname in sorted(self.image.functions):
            addr = self.image.function_address(fname)
            self._faddrs[fname] = addr
            self._fnames[addr] = fname

    def _function_address(self, name: str) -> int:
        if self._faddrs is None:
            self._build_func_tables()
        addr = self._faddrs.get(name)
        if addr is None:
            raise InstrumentationError(
                f"la of undefined function {name!r}")
        return addr

    def _function_by_address(self, addr: int) -> str:
        if self._fnames is None:
            self._build_func_tables()
        name = self._fnames.get(addr)
        if name is None:
            raise InstrumentationError(
                f"callr through {addr}: not a function address")
        return name

    def _labels_of(self, fn: Function) -> Dict[str, int]:
        cached = self._labels.get(fn.name)
        if cached is None:
            cached = {ins.target: i for i, ins in enumerate(fn.instructions)
                      if ins.op is Op.LABEL}
            self._labels[fn.name] = cached
        return cached

    def _call(self, name: str, args: List[int]) -> int:
        fn = self.image.functions.get(name)
        if fn is None or fn.section is not Section.APP:
            intrinsic = self.intrinsics.get(name)
            if intrinsic is not None:
                return int(intrinsic(*args))
            return 0  # opaque library call
        frame = self.sp - max(1, fn.frame_words)
        saved_sp, self.sp = self.sp, frame
        regs: Dict[str, int] = {FP: frame, GP: STATIC_BASE}
        for i, v in enumerate(args):
            regs[ARG_REGS[i]] = v
        try:
            return self._exec(fn, regs)
        finally:
            self.sp = saved_sp

    def _exec(self, fn: Function, regs: Dict[str, int]) -> int:
        labels = self._labels_of(fn)
        code = fn.instructions
        pc = 0
        get = lambda r: regs.get(r, 0)  # noqa: E731
        while pc < len(code):
            self.steps += 1
            if self.steps > self.max_steps:
                raise InstrumentationError(
                    f"machine exceeded {self.max_steps} steps")
            ins = code[pc]
            op = ins.op
            if op is Op.LD:
                regs[ins.reg] = self.read_word(get(ins.base) + ins.offset)
            elif op is Op.ST:
                self.write_word(get(ins.base) + ins.offset, get(ins.reg))
            elif op is Op.LI:
                regs[ins.reg] = ins.imm
            elif op is Op.MOV:
                regs[ins.reg] = get(ins.srcs[0])
            elif op is Op.ADD:
                regs[ins.reg] = get(ins.srcs[0]) + get(ins.srcs[1])
            elif op is Op.SUB:
                regs[ins.reg] = get(ins.srcs[0]) - get(ins.srcs[1])
            elif op is Op.MUL:
                regs[ins.reg] = get(ins.srcs[0]) * get(ins.srcs[1])
            elif op is Op.DIV:
                denom = get(ins.srcs[1])
                regs[ins.reg] = 0 if denom == 0 else \
                    int(get(ins.srcs[0]) / denom)
            elif op is Op.AND:
                regs[ins.reg] = get(ins.srcs[0]) & get(ins.srcs[1])
            elif op is Op.OR:
                regs[ins.reg] = get(ins.srcs[0]) | get(ins.srcs[1])
            elif op is Op.XOR:
                regs[ins.reg] = get(ins.srcs[0]) ^ get(ins.srcs[1])
            elif op is Op.SLT:
                regs[ins.reg] = 1 if get(ins.srcs[0]) < get(ins.srcs[1]) else 0
            elif op is Op.SEQ:
                regs[ins.reg] = 1 if get(ins.srcs[0]) == get(ins.srcs[1]) else 0
            elif op is Op.BEQZ:
                if get(ins.srcs[0]) == 0:
                    pc = labels[ins.target]
            elif op is Op.BNEZ:
                if get(ins.srcs[0]) != 0:
                    pc = labels[ins.target]
            elif op is Op.J:
                pc = labels[ins.target]
            elif op is Op.CALL:
                if ins.target == ANALYSIS_SYMBOL:
                    # One procedure call regardless of how many words a
                    # ranged call (imm = run length) announces — that is
                    # the cost batching removes.
                    self.analysis_calls += 1
                    base_val = get(ins.srcs[0]) if ins.srcs else 0
                    addr = base_val + ins.offset
                    is_store = (ins.srcs[1] == "st"
                                if len(ins.srcs) > 1 else False)
                    count = ins.imm if ins.imm is not None else 1
                    if count == 1:
                        self.analysis_hook(addr, is_store, ins.origin)
                    else:
                        range_hook = getattr(self.analysis_hook,
                                             "range_access", None)
                        if range_hook is not None:
                            range_hook(addr, count, is_store, ins.origin)
                        else:
                            for k in range(count):
                                self.analysis_hook(addr + k, is_store,
                                                   ins.origin)
                else:
                    call_args = [get(ARG_REGS[i]) for i in range(6)]
                    regs[RV] = self._call(ins.target, call_args)
            elif op is Op.LA:
                regs[ins.reg] = self._function_address(ins.target)
            elif op is Op.CALLR:
                callee = self._function_by_address(get(ins.srcs[0]))
                call_args = [get(ARG_REGS[i]) for i in range(6)]
                regs[RV] = self._call(callee, call_args)
            elif op is Op.RET:
                return get(RV)
            elif op in (Op.LABEL, Op.NOP):
                pass
            else:  # pragma: no cover - exhaustive
                raise InstrumentationError(f"cannot execute {ins.render()}")
            pc += 1
        return get(RV)
