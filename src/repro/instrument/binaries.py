"""Linked binaries for the four applications, and Table 2 regeneration.

FFT and Water link ``libm`` in addition to the core C library — in the
paper their binaries carry 124,716 library loads/stores versus 48,717 for
SOR and TSP, which link only the core.  Every binary links the CVM runtime
(3,910 loads/stores in the paper).
"""

from __future__ import annotations

from typing import Dict, List

from repro.instrument.atom import AtomRewriter, InstrumentationReport
from repro.instrument.compiler import compile_kernel
from repro.instrument.isa import BinaryImage
from repro.instrument.kernels import KERNEL_PROGRAMS
from repro.instrument.kernels_src import lu_program
from repro.instrument.linker import LIBC_CORE, LIBM, link

#: Which apps pull in the math library.
LINKS_LIBM = frozenset({"fft", "water"})

#: The paper's Table 2 applications.
APP_NAMES = ("fft", "sor", "tsp", "water")
#: Additional kernels available to the toolchain (not Table 2 rows).
EXTRA_KERNELS = {"lu": lu_program}


def binary_for(app: str, regalloc: str = "naive") -> BinaryImage:
    """Compile and link the named application's kernel binary.

    ``regalloc`` defaults to (and the Table 2 pipeline is pinned to)
    ``"naive"``: the paper's numbers were measured on unoptimized
    single-pass codegen, and they must stay byte-identical.  Pass
    ``"linear"`` for the liveness-driven allocator — fewer loads/stores,
    same program semantics (compared head-to-head by the regalloc
    tests and the toolchain CLI).
    """
    if app in KERNEL_PROGRAMS:
        obj = compile_kernel(KERNEL_PROGRAMS[app](), regalloc=regalloc)
    elif app in EXTRA_KERNELS:
        obj = compile_kernel(EXTRA_KERNELS[app](), regalloc=regalloc)
    else:
        raise KeyError(f"unknown application {app!r}; expected one of "
                       f"{sorted(KERNEL_PROGRAMS) + sorted(EXTRA_KERNELS)}")
    libs = [LIBC_CORE, LIBM] if app in LINKS_LIBM else [LIBC_CORE]
    return link(f"{app}+linear" if regalloc == "linear" else app,
                [obj], libraries=libs, strict=True)


def table2_reports() -> Dict[str, InstrumentationReport]:
    """One instrumentation report per application — the rows of Table 2."""
    rewriter = AtomRewriter()
    return {app: rewriter.analyze(binary_for(app)) for app in APP_NAMES}
