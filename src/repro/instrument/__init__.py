"""ATOM-analogue instrumentation toolchain.

The paper uses the ATOM binary rewriter to instrument every Alpha load and
store that *might* reference shared memory, after statically discarding the
ones that provably cannot (§5.1): accesses through the frame pointer
(stack), accesses through the global pointer (statically-allocated data —
safe because CVM allocates all shared memory dynamically), and instructions
in library or CVM code.

We have no Alpha binaries, so we rebuild the whole pipeline one level down:

* :mod:`repro.instrument.isa` — a small RISC instruction set with
  Alpha-style dedicated registers (``fp``, ``gp``, ``sp``);
* :mod:`repro.instrument.kernel_ast` / :mod:`repro.instrument.parser` /
  :mod:`repro.instrument.compiler` — a miniature C-like kernel language
  (AST, text parser, compiler) that emits mini-ISA code with the
  addressing-mode discipline the static filter relies on;
* :mod:`repro.instrument.linker` — links compiled application objects with
  synthetic libc/libm/CVM objects into a :class:`BinaryImage`;
* :mod:`repro.instrument.atom` — the rewriter: classifies every load and
  store (Table 2's categories) and inserts analysis-routine calls before
  the survivors;
* :mod:`repro.instrument.machine` — an interpreter that executes
  (instrumented) binaries, so the inserted calls demonstrably fire at run
  time.
"""

from repro.instrument.atom import AtomRewriter, InstrumentationReport
from repro.instrument.compiler import compile_kernel
from repro.instrument.isa import BinaryImage, Instruction, Section
from repro.instrument.linker import link
from repro.instrument.parser import compile_source, parse_kernel

__all__ = [
    "AtomRewriter",
    "BinaryImage",
    "Instruction",
    "InstrumentationReport",
    "Section",
    "compile_kernel",
    "compile_source",
    "link",
    "parse_kernel",
]
