"""Batched access instrumentation: coalescing adjacent analysis calls.

The ATOM-style rewriter (:mod:`repro.instrument.atom`) inserts one
``call __race_analysis`` per surviving load/store — the paper's "Proc
Call" overhead bar.  Vector kernels touch provably-contiguous word runs
(``data[2i]`` then ``data[2i+1]``, a row sweep, a block copy), so many of
those calls are *statically* redundant: the k-th call's effective address
is the first call's plus k.

This pass proves that contiguity and rewrites each such run into a single
*ranged* analysis call carrying the run length in the instruction's
immediate field: ``call __race_analysis`` with ``imm=count`` announces
``count`` consecutive word accesses starting at ``base + offset``.  The
interpreter (:mod:`repro.instrument.machine`) expands a ranged call into
the identical per-word event sequence — one hook invocation per word, in
ascending address order — so the analysis a hook observes is unchanged;
only the number of *procedure calls* shrinks (``Machine.analysis_calls``),
which is exactly the cost the batching is meant to remove.

The proof is a forward, basic-block-local value numbering in *linear
form*: every register value is an integer-linear combination of opaque
atoms plus a constant.  Atoms are hash-consed so equal computations get
equal numbers:

* a load from an unmodified fp/gp slot is the atom of that slot at its
  current store version (a store to the slot retires the atom);
* a load through a computed address (heap) or a call result is a fresh,
  never-matching atom;
* ``ADD``/``SUB`` combine linear forms; ``MUL`` by a constant scales one;
* every other operator folds constants or makes an opaque atom keyed by
  the operator and its operands' value keys — two syntactically equal
  non-linear computations over unchanged inputs still unify.

Two analysis calls coalesce when they sit in the same run (no label,
branch, jump, return or non-analysis call between them — those could
reorder or interleave observable events), announce the same access kind
(``ld``/``st``), and their address forms share the atom part with
constants ascending by exactly 1.  The ranged call replaces the first
call of the run, whose base register provably still holds the run's
starting address at that point.

The rewrite is opt-in (``coalesce_analysis_calls``), preserving the
default pipeline's one-call-per-access fidelity to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.instrument.atom import ANALYSIS_SYMBOL
from repro.instrument.isa import (STACK_BASES, STATIC_BASES, BinaryImage,
                                  Function, Instruction, Op, Section)

#: A value in linear form: a canonical tuple of ``(atom_id, coeff)``
#: pairs (sorted, no zero coefficients) plus an integer constant.
LinearForm = Tuple[Tuple[Tuple[int, int], ...], int]

_CONST_ZERO: LinearForm = ((), 0)


class _Atoms:
    """Hash-consed opaque atoms: equal descriptors get equal ids."""

    def __init__(self) -> None:
        self._ids: Dict[tuple, int] = {}
        self._next = 0

    def of(self, key: tuple) -> int:
        atom = self._ids.get(key)
        if atom is None:
            atom = self._next
            self._next += 1
            self._ids[key] = atom
        return atom

    def fresh(self) -> int:
        atom = self._next
        self._next += 1
        return atom


def _add(a: LinearForm, b: LinearForm, sign: int = 1) -> LinearForm:
    coeffs = dict(a[0])
    for atom, c in b[0]:
        coeffs[atom] = coeffs.get(atom, 0) + sign * c
    packed = tuple(sorted((atom, c) for atom, c in coeffs.items() if c))
    return (packed, a[1] + sign * b[1])


def _scale(a: LinearForm, k: int) -> LinearForm:
    if k == 0:
        return _CONST_ZERO
    return (tuple((atom, c * k) for atom, c in a[0]), a[1] * k)


class _BlockValues:
    """Forward value numbering over one basic-block-local window."""

    def __init__(self, atoms: _Atoms) -> None:
        self.atoms = atoms
        self.regs: Dict[str, LinearForm] = {}
        #: Store version per fp/gp slot; a store retires the slot's atom.
        self.slot_ver: Dict[Tuple[str, int], int] = {}
        #: Bumped when memory changes un-analyzably (store through a
        #: computed address): retires every slot atom at once.
        self.mem_epoch = 0

    def get(self, reg: Optional[str]) -> LinearForm:
        if reg is None:
            return self._fresh()
        val = self.regs.get(reg)
        if val is None:
            val = self._atom_form(("reg", reg))
            self.regs[reg] = val
        return val

    def _fresh(self) -> LinearForm:
        return (((self.atoms.fresh(), 1),), 0)

    def _atom_form(self, key: tuple) -> LinearForm:
        return (((self.atoms.of(key), 1),), 0)

    def set(self, reg: Optional[str], val: LinearForm) -> None:
        if reg is not None:
            self.regs[reg] = val

    def load(self, reg: Optional[str], base: Optional[str],
             offset: int) -> None:
        if base in STACK_BASES or base in STATIC_BASES:
            # Slot-precise: same unmodified slot -> same atom.
            ver = self.slot_ver.get((base, offset), 0)
            self.set(reg, self._atom_form(
                ("slot", base, offset, ver, self.mem_epoch)))
        else:
            self.set(reg, self._fresh())  # heap/unknown: never unifies

    def store(self, base: Optional[str], offset: int) -> None:
        if base in STACK_BASES or base in STATIC_BASES:
            key = (base, offset)
            self.slot_ver[key] = self.slot_ver.get(key, 0) + 1
        else:
            self.mem_epoch += 1  # could alias any slot

    def alu(self, ins: Instruction) -> None:
        op = ins.op
        a = self.get(ins.srcs[0])
        b = self.get(ins.srcs[1])
        if op is Op.ADD:
            self.set(ins.reg, _add(a, b))
        elif op is Op.SUB:
            self.set(ins.reg, _add(a, b, sign=-1))
        elif op is Op.MUL and not a[0]:
            self.set(ins.reg, _scale(b, a[1]))
        elif op is Op.MUL and not b[0]:
            self.set(ins.reg, _scale(a, b[1]))
        else:
            # Opaque but deterministic: keyed by operator and operand
            # value keys, so repeated computations over unchanged inputs
            # still unify.
            self.set(ins.reg, self._atom_form(("op", op.value, a, b)))


@dataclass
class _Pending:
    """An open run of coalescible analysis calls."""

    first_index: int
    kind: str
    atoms: Tuple[Tuple[int, int], ...]
    next_const: int
    count: int


@dataclass
class BatchReport:
    """What the pass did to one binary."""

    binary: str
    calls_before: int = 0
    calls_after: int = 0
    ranged_calls: int = 0
    words_batched: int = 0

    @property
    def calls_eliminated(self) -> int:
        return self.calls_before - self.calls_after


def _flush(pending: Optional[_Pending], code: List[Instruction],
           report: BatchReport) -> None:
    """Materialize an open run: rewrite its first call as a ranged call
    (the coalesced followers are already queued for dropping)."""
    if pending is None or pending.count < 2:
        return
    first = code[pending.first_index]
    code[pending.first_index] = Instruction(
        Op.CALL, target=ANALYSIS_SYMBOL, srcs=first.srcs,
        offset=first.offset, imm=pending.count, origin=first.origin)
    report.ranged_calls += 1
    report.words_batched += pending.count


def coalesce_function(fn: Function, atoms: _Atoms,
                      report: BatchReport) -> Function:
    code = list(fn.instructions)
    drop: set = set()
    vals = _BlockValues(atoms)
    pending: Optional[_Pending] = None
    for i, ins in enumerate(code):
        op = ins.op
        if op is Op.CALL and ins.target == ANALYSIS_SYMBOL:
            report.calls_before += 1
            base = ins.srcs[0] if ins.srcs else None
            kind = ins.srcs[1] if len(ins.srcs) > 1 else "ld"
            addr = _add(vals.get(base), ((), ins.offset))
            if (pending is not None and kind == pending.kind
                    and addr[0] and addr[0] == pending.atoms
                    and addr[1] == pending.next_const):
                pending.next_const += 1
                pending.count += 1
                drop.add(i)
            else:
                _flush(pending, code, report)
                pending = (_Pending(i, kind, addr[0], addr[1] + 1, 1)
                           if addr[0] else None)
            continue
        if op in (Op.LABEL, Op.BEQZ, Op.BNEZ, Op.J, Op.RET, Op.CALL,
                  Op.CALLR):
            # Block boundary or an event-carrying instruction: close the
            # run.  A non-analysis call additionally clobbers memory; an
            # indirect call doubly so — the callee is unknown statically,
            # so every tracked value it could touch is conservatively
            # retired.
            _flush(pending, code, report)
            pending = None
            if op is Op.LABEL:
                vals = _BlockValues(atoms)
            elif op in (Op.CALL, Op.CALLR):
                vals.mem_epoch += 1
                vals.set("v0", vals._fresh())
            continue
        if op is Op.LA:
            # A function-address constant is deterministic: two LAs of
            # the same symbol hold the same value, so key the atom on
            # the symbol (never on position).
            vals.set(ins.reg, vals._atom_form(("fa", ins.target)))
            continue
        if op is Op.LD:
            vals.load(ins.reg, ins.base, ins.offset)
        elif op is Op.ST:
            vals.store(ins.base, ins.offset)
        elif op is Op.LI:
            vals.set(ins.reg, ((), ins.imm or 0))
        elif op is Op.MOV:
            vals.set(ins.reg, vals.get(ins.srcs[0]))
        elif ins.reg is not None and len(ins.srcs) == 2:
            vals.alu(ins)
    _flush(pending, code, report)
    out = [ins for i, ins in enumerate(code) if i not in drop]
    report.calls_after += sum(
        1 for ins in out
        if ins.op is Op.CALL and ins.target == ANALYSIS_SYMBOL)
    return Function(fn.name, out, fn.section, frame_words=fn.frame_words)


def coalesce_analysis_calls(
        image: BinaryImage) -> Tuple[BinaryImage, BatchReport]:
    """Rewrite an instrumented binary, fusing provably-contiguous runs of
    analysis calls into ranged calls.  Returns the new image and a report
    of how many calls were eliminated."""
    report = BatchReport(f"{image.name}+batch")
    out = BinaryImage(report.binary)
    atoms = _Atoms()
    for name in sorted(image.functions):
        fn = image.functions[name]
        if fn.section is not Section.APP:
            out.add(fn)
            n = sum(1 for ins in fn.instructions
                    if ins.op is Op.CALL and ins.target == ANALYSIS_SYMBOL)
            report.calls_before += n
            report.calls_after += n
            continue
        out.add(coalesce_function(fn, atoms, report))
    out.entry = image.entry
    return out, report
