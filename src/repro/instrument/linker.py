"""Linker and synthetic system libraries.

The paper's Table 2 classifies every load/store in each *linked binary*,
and the overwhelming majority live in statically-linked libraries (libc,
libm) and in the CVM runtime itself — e.g. FFT's binary holds 131,668
loads/stores of which 124,716 are library code and 3,910 are CVM.

We reproduce that structure: application objects come from the kernel
compiler; library and CVM objects are *synthesized* with a seeded generator
that emits plausible function bodies (mixed ALU/branch/memory instructions
with realistic ratios).  Synthesized code is deterministic for a given
library spec, so Table 2 is exactly reproducible.  Applications declare
which libraries they pull in (math-heavy apps link ``libm``, which is why
FFT and Water carry far more library code than SOR and TSP in the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import LinkError
from repro.instrument.isa import (ARG_REGS, FP, GP, TEMP_REGS, BinaryImage,
                                  Function, Instruction, ObjectFile, Op,
                                  Section)


@dataclass(frozen=True)
class LibrarySpec:
    """Shape of a synthetic library: function count and size/mix knobs."""

    name: str
    section: Section
    functions: int
    mean_size: int          # instructions per function
    memory_fraction: float  # share of instructions that are loads/stores
    stack_fraction: float   # share of those that are fp-relative
    static_fraction: float  # share of those that are gp-relative
    seed: int


#: The C runtime core every binary links.
LIBC_CORE = LibrarySpec("libc", Section.LIBC, functions=260, mean_size=95,
                        memory_fraction=0.34, stack_fraction=0.45,
                        static_fraction=0.2, seed=0xC0FFEE)
#: Math library: large, pulled in by FFT and Water only.
LIBM = LibrarySpec("libm", Section.LIBC, functions=380, mean_size=110,
                   memory_fraction=0.33, stack_fraction=0.5,
                   static_fraction=0.25, seed=0xF00D)
#: The CVM runtime (protocol handlers, communication, threads).
LIBCVM = LibrarySpec("libcvm", Section.CVM, functions=85, mean_size=120,
                     memory_fraction=0.36, stack_fraction=0.4,
                     static_fraction=0.15, seed=0xC11)


def synthesize_library(spec: LibrarySpec) -> ObjectFile:
    """Generate a deterministic synthetic library object."""
    rng = random.Random(spec.seed)
    obj = ObjectFile(spec.name)
    for i in range(spec.functions):
        size = max(8, int(rng.gauss(spec.mean_size, spec.mean_size * 0.4)))
        code: List[Instruction] = []
        for j in range(size):
            origin = f"{spec.name}/{i}:{j}"
            if rng.random() < spec.memory_fraction:
                is_load = rng.random() < 0.72  # loads outnumber stores
                roll = rng.random()
                if roll < spec.stack_fraction:
                    base = FP
                elif roll < spec.stack_fraction + spec.static_fraction:
                    base = GP
                else:
                    base = rng.choice(TEMP_REGS)
                code.append(Instruction(
                    Op.LD if is_load else Op.ST,
                    reg=rng.choice(TEMP_REGS), base=base,
                    offset=rng.randrange(64), origin=origin))
            else:
                dst = rng.choice(TEMP_REGS)
                code.append(Instruction(
                    Op.ADD, reg=dst,
                    srcs=(dst, rng.choice(TEMP_REGS)), origin=origin))
        code.append(Instruction(Op.RET))
        obj.add(Function(f"{spec.name}_fn{i}", code, spec.section))
    return obj


#: Symbols an application may call without defining them: allocator and
#: runtime intrinsics the interpreter (or a DSL bridge) implements, plus
#: the analysis routine the rewriter inserts post-link.
DEFAULT_EXTERNS = frozenset({
    "malloc", "free", "__heap_alloc", "__heap_free",
    "lock", "unlock", "barrier", "pause",
    "__race_analysis",
})


def _validate_app_targets(image: BinaryImage, externs: frozenset,
                          strict: bool) -> None:
    """``la`` of an undefined function is always an error (the resulting
    address could never be called).  Under ``strict`` linking, every
    ``call`` in app code must also name a defined symbol or a known
    extern — undefined targets silently became opaque no-op calls, which
    turned typos into wrong answers.  Non-strict linking keeps the
    opaque-call contract for tests and synthetic harnesses."""
    for fname in sorted(image.functions):
        fn = image.functions[fname]
        if fn.section is not Section.APP:
            continue
        for ins in fn.instructions:
            if ins.op is Op.LA:
                if ins.target not in image.functions:
                    raise LinkError(
                        f"binary {image.name!r}: function {fname!r} takes "
                        f"the address of undefined function "
                        f"{ins.target!r}")
            elif strict and ins.op is Op.CALL:
                if ins.target not in image.functions \
                        and ins.target not in externs:
                    raise LinkError(
                        f"binary {image.name!r}: function {fname!r} calls "
                        f"undefined symbol {ins.target!r}")


def link(name: str, app_objects: Sequence[ObjectFile],
         libraries: Iterable[LibrarySpec] = (),
         entry: str = "main", include_cvm: bool = True,
         externs: Iterable[str] = DEFAULT_EXTERNS,
         strict: bool = False) -> BinaryImage:
    """Produce a linked binary: app objects + requested libraries + CVM.

    ``entry`` must resolve to an app function unless the binary is a pure
    library bundle (entry=None is not supported; every app binary has a
    main).  ``externs`` are callable-but-undefined symbols (intrinsics);
    under ``strict`` linking anything else a ``call`` in app code names
    must be defined in the image (``la`` targets always must be).
    """
    image = BinaryImage(name)
    for obj in app_objects:
        for fn in obj.functions:
            image.add(fn)
    for spec in libraries:
        for fn in synthesize_library(spec).functions:
            image.add(fn)
    if include_cvm:
        for fn in synthesize_library(LIBCVM).functions:
            image.add(fn)
    if entry not in image.functions:
        raise LinkError(f"binary {name!r}: entry symbol {entry!r} undefined")
    if image.functions[entry].section is not Section.APP:
        raise LinkError(f"binary {name!r}: entry {entry!r} is not app code")
    _validate_app_targets(image, frozenset(externs), strict)
    image.entry = entry
    return image
