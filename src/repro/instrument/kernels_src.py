"""Kernel-language *source text* kernels (parsed, not AST-built).

The four Table 2 kernels are built as ASTs in
:mod:`repro.instrument.kernels`; this module carries additional kernels
written in the concrete syntax (:mod:`repro.instrument.parser`), currently
the LU decomposition matching :mod:`repro.apps.lu`.  Everything here runs
through the same pipeline: parse → compile → link → filter → instrument →
execute.
"""

from __future__ import annotations

from repro.instrument.kernel_ast import KernelProgram
from repro.instrument.parser import parse_kernel

LU_SOURCE = """
# Dense LU decomposition without pivoting over a malloc'd n x n matrix,
# mirroring repro.apps.lu: diagonally dominant input, right-looking
# elimination, trace-of-U readback.

static lu_steps;

func lu_init(a, n) {
    local r, c, v;
    for (r = 0; r < n; r += 1) {
        for (c = 0; c < n; c += 1) {
            v = (r * 13 + c * 7) - (r + c);
            if (r == c) { v = v + 4 * n; }
            a[r * n + c] = v;
        }
    }
}

func lu_eliminate(a, n, k) {
    local r, c, pivot, factor;
    pivot = a[k * n + k];
    for (r = k + 1; r < n; r += 1) {
        factor = a[r * n + k] / pivot;
        a[r * n + k] = factor;
        for (c = k + 1; c < n; c += 1) {
            a[r * n + c] = a[r * n + c] - factor * a[k * n + c];
        }
    }
    lu_steps = lu_steps + 1;
}

func lu_trace(a, n) {
    local i, t;
    t = 0;
    for (i = 0; i < n; i += 1) { t = t + a[i * n + i]; }
    return t;
}

func main(n) {
    local a, k;
    a = malloc(n * n);
    lu_init(a, n);
    for (k = 0; k < n - 1; k += 1) {
        lu_eliminate(a, n, k);
    }
    return lu_trace(a, n);
}
"""


def lu_program() -> KernelProgram:
    """The LU kernel, parsed from source."""
    return parse_kernel(LU_SOURCE, name="lu")
