"""Wall-clock performance measurement (`repro.perf`).

Everything else in this repository measures *virtual* time — the paper's
cost model.  This package measures *real* time: how fast the Python
implementation itself runs, which is what the ROADMAP's "as fast as the
hardware allows" goal is about.  It provides

* :func:`timeit_best` — a minimal best-of-N wall-clock timer,
* :func:`capture_epochs` — run an application once and retain every
  interval batch the barrier master analyzed, so detection can be
  re-executed offline on identical inputs, and
* :func:`time_detection` — replay captured epochs through a fresh
  :class:`~repro.core.detector.RaceDetector` under either execution
  engine (``fast_path`` on/off) and report wall-clock plus the verdicts,
  letting ``benchmarks/bench_wallclock.py`` verify that the fast path is
  both faster and observationally identical.
"""

from repro.perf.timing import BenchSample, timeit_best
from repro.perf.detection import (CapturedEpoch, DetectionTiming,
                                  capture_epochs, time_detection)

__all__ = [
    "BenchSample",
    "CapturedEpoch",
    "DetectionTiming",
    "capture_epochs",
    "time_detection",
    "timeit_best",
]
