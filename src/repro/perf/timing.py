"""Small wall-clock timing helpers.

Deliberately dependency-free: ``time.perf_counter`` best-of-N, the same
discipline ``timeit`` uses (the *minimum* of repeated runs is the best
estimate of the achievable time; means absorb scheduler noise).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List


@dataclass
class BenchSample:
    """Wall-clock samples of one measured callable."""

    label: str
    samples: List[float]

    @property
    def best(self) -> float:
        return min(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    def as_dict(self) -> dict:
        return {"label": self.label, "best_s": self.best,
                "mean_s": self.mean, "samples_s": list(self.samples)}


def timeit_best(fn: Callable[[], object], repeats: int = 3,
                label: str = "") -> BenchSample:
    """Run ``fn`` ``repeats`` times, wall-clock each run.

    ``fn`` must be self-contained per call (fresh state inside), so that
    every sample measures the same work.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    samples: List[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return BenchSample(label=label, samples=samples)
