"""Offline re-execution of barrier-time detection, for benchmarking.

The barrier master's epoch analysis is a pure function of the closing
epoch's interval records (plus the cost model), so it can be captured
from a real application run once and then replayed through either
execution engine — the reference O(i²p²) algorithm or the fast path —
on *bit-identical inputs*.  That is what makes the wall-clock comparison
in ``benchmarks/bench_wallclock.py`` honest: both engines chew the same
epochs, and their verdicts/ledgers can be compared for equality in the
same breath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.apps.base import AppSpec
from repro.core.detector import DetectorStats, RaceDetector
from repro.dsm.cvm import CVM, RunResult
from repro.dsm.interval import Interval
from repro.net.message import WireSizer
from repro.net.transport import Transport
from repro.perf.timing import BenchSample, timeit_best
from repro.sim.clock import VirtualClock
from repro.sim.costmodel import CostModel


@dataclass
class CapturedEpoch:
    """One interval batch handed to ``RaceDetector.run_epoch``."""

    epoch: int
    intervals: List[Interval]


@dataclass
class DetectionTiming:
    """Result of replaying captured epochs through one engine."""

    label: str
    fast_path: bool
    sample: BenchSample
    races: List[Any]
    stats: DetectorStats
    clock_now: float
    ledger_totals: dict
    #: Vector-clock probes the engine actually performed.
    actual_comparisons: int

    def fingerprint(self) -> Tuple:
        """Everything observable about the run except wall-clock: equal
        fingerprints == equivalent engines."""
        return (tuple(r.key() for r in self.races), self.stats,
                self.clock_now,
                tuple(sorted((k.value, v)
                             for k, v in self.ledger_totals.items())))


def capture_epochs(spec: AppSpec, nprocs: int = 8, params: Any = None,
                   **config_overrides: Any
                   ) -> Tuple[RunResult, List[CapturedEpoch]]:
    """Run ``spec`` once with detection on, retaining every epoch's
    interval batch before the store discards it.

    The interval objects (bitmaps included) stay alive because the
    captured list holds references; ``IntervalStore.discard_epoch`` only
    drops the store's own tables.
    """
    cfg = spec.config(nprocs=nprocs, detection=True, **config_overrides)
    system = CVM(cfg)
    captured: List[CapturedEpoch] = []
    inner = system.detector.run_epoch

    def recording(intervals, epoch, master_clock):
        captured.append(CapturedEpoch(epoch, list(intervals)))
        return inner(intervals, epoch, master_clock)

    system.detector.run_epoch = recording
    result = system.run(spec.func, params or spec.default_params)
    return result, captured


def time_detection(epochs: List[CapturedEpoch], page_size_words: int,
                   nprocs: int, fast_path: bool,
                   cost_model: Optional[CostModel] = None,
                   repeats: int = 3, label: str = "") -> DetectionTiming:
    """Replay ``epochs`` through a fresh detector ``repeats`` times and
    wall-clock the full analysis (pair search, check list, bitmap round
    accounting, bitmap intersection).

    Detector, transport and master clock are rebuilt per repeat so every
    sample does identical work (the detector deduplicates race reports
    across epochs via internal state).
    """
    cm = cost_model or CostModel()
    last: dict = {}

    def one_run() -> None:
        detector = RaceDetector(
            page_size_words, cm, WireSizer(nprocs, page_size_words),
            Transport(cm), symbol_for=lambda addr: f"word+{addr}",
            master_pid=0, fast_path=fast_path)
        clock = VirtualClock()
        for ep in epochs:
            detector.run_epoch(ep.intervals, ep.epoch, clock)
        last["detector"] = detector
        last["clock"] = clock

    sample = timeit_best(one_run, repeats=repeats, label=label)
    detector = last["detector"]
    clock = last["clock"]
    return DetectionTiming(
        label=label, fast_path=fast_path, sample=sample,
        races=list(detector.races), stats=detector.stats,
        clock_now=clock.now, ledger_totals=dict(clock.ledger.totals),
        actual_comparisons=detector.actual_comparisons)
