"""Append-only fleet state journal with torn-tail recovery.

The journal is the fleet's source of truth for ``serve --resume``: every
state transition — submission, worker start, attempt outcome, retry,
terminal classification, drain — is appended as one *frame* (canonical
JSON body + newline + BLAKE2b content hash + newline, the PR 6
coordinator-journal idiom) and flushed before the transition takes
effect.  If the service itself is SIGKILLed, the on-disk journal is a
prefix of the true history ending in at most one torn frame;
:meth:`FleetJournal.replay` stops at the first invalid frame and reports
how much it dropped, mirroring the coordinator journal's
fall-back-to-last-intact-frame semantics.

Only the service process writes the journal (submissions ride separate
spool files until ingestion), so frames never interleave.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.dsm.checkpoint import _canon, _hash_text
from repro.errors import FleetError

#: Bump when the journal event schema changes incompatibly.
JOURNAL_FORMAT_VERSION = 1


class FleetJournal:
    """Single-writer, append-only event log."""

    def __init__(self, path: str):
        self.path = path
        self._fh = None
        self._seq = 0

    # ------------------------------------------------------------------ #
    # Writing.
    # ------------------------------------------------------------------ #
    def open(self, seq_start: int = 0) -> None:
        """Open for appending.  ``seq_start`` continues numbering after a
        resume (replayed events already hold 0..seq_start-1).

        Any torn tail left by a SIGKILLed writer is cut back to the last
        intact frame first — appending onto a partial line would glue the
        next frame to it and corrupt the journal from that point on.
        """
        if self._fh is not None:
            raise FleetError(f"journal {self.path!r} is already open")
        self._truncate_torn_tail()
        self._fh = open(self.path, "a", encoding="utf-8")
        self._seq = seq_start

    def _truncate_torn_tail(self) -> None:
        events, dropped = self.replay(self.path)
        if not dropped:
            return
        # Canonical JSON is ASCII, but measure in bytes regardless: keep
        # exactly the lines replay() verified, drop the rest.
        with open(self.path, "rb") as fh:
            data = fh.read()
        keep = sum(len(line) + 1
                   for line in data.split(b"\n")[:2 * len(events)])
        with open(self.path, "rb+") as fh:
            fh.truncate(keep)

    def append(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Frame and append one event, flushed so a killed service loses
        at most the frame being written."""
        if self._fh is None:
            raise FleetError(f"journal {self.path!r} is not open")
        record = {"v": JOURNAL_FORMAT_VERSION, "n": self._seq,
                  "event": event}
        record.update(fields)
        body = _canon(record)
        self._fh.write(body + "\n" + _hash_text(body) + "\n")
        self._fh.flush()
        self._seq += 1
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------ #
    # Reading.
    # ------------------------------------------------------------------ #
    @staticmethod
    def replay(path: str) -> Tuple[List[Dict[str, Any]], int]:
        """Decode the longest intact frame prefix.

        Returns ``(events, dropped_lines)``: ``dropped_lines`` counts
        trailing lines past the last intact frame (0 for a cleanly
        written journal; 1-2 after a torn write).  A corrupt frame in
        the *middle* also stops the replay — everything after an
        unverifiable frame is untrusted, exactly like the coordinator
        journal's fallback.  A missing file is an empty history.
        """
        if not os.path.exists(path):
            return [], 0
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.read().split("\n")
        except OSError as exc:
            raise FleetError(f"cannot read journal {path!r}: {exc}")
        if lines and lines[-1] == "":
            lines.pop()
        events: List[Dict[str, Any]] = []
        consumed = 0
        for i in range(0, len(lines) - 1, 2):
            body, digest = lines[i], lines[i + 1]
            if _hash_text(body) != digest:
                break
            try:
                record = json.loads(body)
            except json.JSONDecodeError:
                break
            if not isinstance(record, dict) or "event" not in record \
                    or record.get("n") != len(events):
                break
            events.append(record)
            consumed = i + 2
        return events, len(lines) - consumed

    @staticmethod
    def last_seq(events: List[Dict[str, Any]]) -> int:
        """Sequence number the next append should use."""
        return events[-1]["n"] + 1 if events else 0
