"""Cross-run aggregation: dedup, flake ranking, per-app race rates.

The aggregate is the fleet's product: one report over a whole queue of
runs.  Its inputs are only *deterministic* data — each job's spec, its
terminal state, and its worker-written result payload (which carries no
wall-clock or host state) — so the report is byte-identical whether the
queue executed uninterrupted or limped through worker crashes, retries,
and a service kill + ``serve --resume``.  That identity is the
acceptance check for the whole robustness story, so nothing
time-dependent may ever be added here.

Dedup works on *race sites* — (kind, symbol, addr) — rather than full
report lines: the lines embed interval indexes and epochs, which
legitimately differ across scheduling seeds, while the site names the
buggy variable the same way in every interleaving.  A site seen in only
some of an app's detection runs is *flaky* — scheduling-dependent — and
the flake ranking orders sites by hit rate ascending so the hardest-to-
reproduce races lead the list.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Bump when the aggregate payload schema changes incompatibly.
AGGREGATE_FORMAT_VERSION = 1

#: Terminal states in which a job contributes results.
COMPLETED_STATES = ("done", "races")


def build_aggregate(entries: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-job entries into the canonical aggregate payload.

    Each entry is ``{"job_id", "app", "mode", "nprocs", "seed", "state",
    "attempts", "result"}`` where ``result`` is the worker's payload (or
    ``None`` for jobs that never completed).  ``attempts`` is excluded
    from the payload on purpose: it varies with crash timing.
    """
    entries = sorted(entries, key=lambda e: e["job_id"])

    jobs_rows = []
    state_counts: Dict[str, int] = {}
    for e in entries:
        state_counts[e["state"]] = state_counts.get(e["state"], 0) + 1
        result = e.get("result")
        jobs_rows.append({
            "job_id": e["job_id"], "app": e["app"], "mode": e["mode"],
            "nprocs": e["nprocs"], "seed": e["seed"], "state": e["state"],
            "races": len(result["races"]) if result else None,
            "unverifiable": result["unverifiable"] if result else None,
        })

    # Detection runs only: record-mode jobs log sync order, they do not
    # detect, so they must not dilute the race-rate denominators.
    detect = [e for e in entries
              if e["mode"] != "record" and e["state"] in COMPLETED_STATES
              and e.get("result")]

    # app -> site -> sorted list of job_ids that reported it.
    sites: Dict[str, Dict[Tuple[str, str, int], List[str]]] = {}
    runs_per_app: Dict[str, int] = {}
    racy_runs_per_app: Dict[str, int] = {}
    for e in detect:
        app = e["app"]
        runs_per_app[app] = runs_per_app.get(app, 0) + 1
        result = e["result"]
        if result["races"]:
            racy_runs_per_app[app] = racy_runs_per_app.get(app, 0) + 1
        for kind, symbol, addr in result["race_sites"]:
            key = (kind, symbol, int(addr))
            sites.setdefault(app, {}).setdefault(key, []).append(e["job_id"])

    site_rows = []
    for app in sorted(sites):
        runs = runs_per_app[app]
        for (kind, symbol, addr), hit_jobs in sorted(sites[app].items()):
            seeds = sorted({e["seed"] for e in detect
                            if e["app"] == app and e["job_id"] in hit_jobs})
            site_rows.append({
                "app": app, "kind": kind, "symbol": symbol, "addr": addr,
                "hits": len(hit_jobs), "runs": runs,
                "seeds": seeds,
                "flaky": len(hit_jobs) < runs,
            })

    # Flake ranking: lowest hit rate first — the races a single run is
    # most likely to miss — then stable (app, symbol, addr) order.
    flake_rows = sorted(
        site_rows,
        key=lambda r: (r["hits"] / r["runs"], r["app"], r["symbol"],
                       r["addr"]))

    rate_rows = []
    for app in sorted(runs_per_app):
        runs = runs_per_app[app]
        racy = racy_runs_per_app.get(app, 0)
        rate_rows.append({
            "app": app, "detect_runs": runs, "racy_runs": racy,
            "distinct_sites": len(sites.get(app, {})),
            "race_rate": racy / runs,
        })

    return {
        "version": AGGREGATE_FORMAT_VERSION,
        "jobs": jobs_rows,
        "state_counts": dict(sorted(state_counts.items())),
        "sites": flake_rows,
        "race_rates": rate_rows,
    }


def render_aggregate(payload: Dict[str, Any]) -> str:
    """Human-readable aggregate (also the byte-compared artifact)."""
    from repro.harness.format import render_table
    out = []
    out.append(render_table(
        "Fleet jobs",
        ["job", "app", "mode", "nprocs", "seed", "state", "races",
         "unverifiable"],
        [[r["job_id"], r["app"], r["mode"], r["nprocs"], r["seed"],
          r["state"],
          "-" if r["races"] is None else r["races"],
          "-" if r["unverifiable"] is None else r["unverifiable"]]
         for r in payload["jobs"]]))
    out.append("")
    states = ", ".join(f"{state}={count}" for state, count
                       in payload["state_counts"].items()) or "none"
    out.append(f"terminal states: {states}")
    out.append("")
    out.append(render_table(
        "Race sites (deduplicated across seeds; flake-ranked, "
        "rarest first)",
        ["app", "kind", "symbol", "addr", "hits", "runs", "rate",
         "seeds"],
        [[r["app"], r["kind"], r["symbol"], r["addr"], r["hits"],
          r["runs"], f"{r['hits'] / r['runs']:.2f}",
          ",".join(str(s) for s in r["seeds"])]
         for r in payload["sites"]]))
    out.append("")
    out.append(render_table(
        "Per-app race rate",
        ["app", "detect runs", "racy runs", "distinct sites", "rate"],
        [[r["app"], r["detect_runs"], r["racy_runs"],
          r["distinct_sites"], f"{r['race_rate']:.2f}"]
         for r in payload["race_rates"]]))
    return "\n".join(out) + "\n"
