"""Fleet mode: a supervised, crash-tolerant detection service.

The fleet multiplexes many detection runs (app × config × seed × mode)
onto a pool of supervised worker subprocesses.  See
``docs/robustness.md`` for the supervision tree, retry/poison policy,
and journal-recovery story; the pieces are:

* :mod:`repro.fleet.job` — the schedulable job model + framed payloads
* :mod:`repro.fleet.queue` — bounded priority admission queue
* :mod:`repro.fleet.placement` — sized-slot worker-pool placement
* :mod:`repro.fleet.worker` — one-job subprocess entry point
* :mod:`repro.fleet.journal` — append-only framed state journal
* :mod:`repro.fleet.spool` — on-disk client/service contract
* :mod:`repro.fleet.aggregate` — cross-run dedup / flake / rate report
* :mod:`repro.fleet.supervisor` — the ``fleet serve`` service loop
"""

from repro.fleet.aggregate import build_aggregate, render_aggregate
from repro.fleet.job import (JOB_FORMAT_VERSION, PRIORITY_CLASSES,
                             PROCS_PER_SLOT, JobSpec)
from repro.fleet.journal import FleetJournal
from repro.fleet.placement import Placement, SlotPool
from repro.fleet.queue import DEFAULT_QUEUE_LIMIT, JobQueue
from repro.fleet.spool import (FleetSpool, JobRecord, fold_journal,
                               status_text)
from repro.fleet.supervisor import FleetService

__all__ = [
    "JOB_FORMAT_VERSION", "PRIORITY_CLASSES", "PROCS_PER_SLOT",
    "JobSpec", "FleetJournal", "Placement", "SlotPool",
    "DEFAULT_QUEUE_LIMIT", "JobQueue", "FleetSpool", "JobRecord",
    "fold_journal", "status_text", "build_aggregate", "render_aggregate",
    "FleetService",
]
