"""Fleet worker: runs exactly one job in an isolated subprocess.

``python -m repro.fleet.worker --job J --result R --heartbeat H`` reads a
framed :class:`~repro.fleet.job.JobSpec`, executes the run it describes,
and writes a framed, fully deterministic result file.  Isolation is the
point: a worker that segfaults, hangs, or is SIGKILLed takes down one
job's attempt, never the service — the supervisor observes the exit code
(or the silence of the heartbeat file) and applies the retry policy.

Liveness is proven, not assumed: a daemon thread rewrites the heartbeat
file every ``--heartbeat-interval`` seconds, so a worker whose main
thread is wedged inside the simulator still beats (it will instead be
caught by the deadline), while a truly stuck interpreter — or one
frozen by the ``{"hang": true}`` chaos hook — goes silent and is killed.

The result payload deliberately carries no wall-clock times, pids, or
host state: a retried job produces byte-identical results (deterministic
simulation), which is what makes the fleet's aggregate report
byte-identical whether or not crashes and retries happened along the way.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
from typing import Any, Dict

from repro.exitcodes import (EXIT_CLEAN, EXIT_RACES, classify_exception)
from repro.fleet.job import JobSpec, frame_payload

#: Bump when the result payload schema changes incompatibly.
RESULT_FORMAT_VERSION = 1


def _heartbeat_loop(path: str, interval: float, stop: threading.Event) -> None:
    beat = 0
    while not stop.is_set():
        beat += 1
        try:
            with open(path + ".tmp", "w", encoding="utf-8") as fh:
                fh.write(str(beat))
            os.replace(path + ".tmp", path)
        except OSError:
            pass  # a vanished spool is the supervisor's problem, not ours
        stop.wait(interval)


def build_result_payload(spec: JobSpec, result: Any) -> Dict[str, Any]:
    """Deterministic result summary for the aggregate report.

    ``races`` are the canonical sorted report lines (the byte-compare
    format used by every equivalence suite); ``race_sites`` strips the
    interval/epoch coordinates — which legitimately vary across seeds —
    down to (kind, symbol, addr), the key the aggregate dedups on.
    """
    from repro.harness.format import race_report_lines
    sites = sorted({(r.kind.value, r.symbol, r.addr)
                    for r in result.races if r.verdict == "race"})
    return {
        "version": RESULT_FORMAT_VERSION,
        "job_id": spec.job_id,
        "app": spec.app,
        "mode": spec.mode,
        "nprocs": spec.nprocs,
        "seed": spec.seed,
        "races": race_report_lines(result),
        "race_sites": [list(site) for site in sites],
        "unverifiable": len(result.unverifiable),
        "runtime_cycles": result.runtime_cycles,
        "intervals_created": result.intervals_created,
        "barriers_completed": result.barriers_completed,
        "lock_acquires": result.lock_acquires,
        "record_stats": result.record_stats,
    }


def run_job(spec: JobSpec) -> Dict[str, Any]:
    from repro.apps.registry import get_app
    try:
        app = get_app(spec.app)
    except KeyError as exc:
        from repro.errors import ConfigError
        raise ConfigError(str(exc))
    result = app.run(nprocs=spec.nprocs, **spec.config_overrides())
    return build_result_payload(spec, result)


def _write_result(path: str, payload: Dict[str, Any]) -> None:
    """Atomic publish: the supervisor only ever sees a complete frame."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(frame_payload(payload) + "\n")
    os.replace(tmp, path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.fleet.worker")
    parser.add_argument("--job", required=True)
    parser.add_argument("--result", required=True)
    parser.add_argument("--heartbeat", required=True)
    parser.add_argument("--heartbeat-interval", type=float, default=0.2)
    args = parser.parse_args(argv)

    with open(args.job, "r", encoding="utf-8") as fh:
        spec = JobSpec.parse_framed(fh.read().rstrip("\n"))

    if "exit_code" in spec.chaos:
        # Simulated worker death (before any heartbeat): segfault-style
        # failures are modeled as bare exits with the configured code.
        return int(spec.chaos["exit_code"])
    if spec.chaos.get("hang"):
        # Simulated wedged interpreter: never heartbeat, never finish.
        while True:
            time.sleep(3600)

    stop = threading.Event()
    thread = threading.Thread(
        target=_heartbeat_loop,
        args=(args.heartbeat, args.heartbeat_interval, stop), daemon=True)
    thread.start()
    try:
        payload = run_job(spec)
    except BaseException as exc:  # noqa: BLE001 - classified, not hidden
        print(f"worker: job {spec.job_id} failed: "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return classify_exception(exc) if isinstance(exc, Exception) else 3
    finally:
        stop.set()
    _write_result(args.result, payload)
    return EXIT_RACES if payload["races"] else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
