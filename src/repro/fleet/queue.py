"""Bounded, priority-classed admission queue for fleet jobs.

Admission control is the fleet's first robustness layer: the queue is
*bounded*, and a submission past the bound is refused with a loud
:class:`~repro.errors.AdmissionError` — backpressure, not a crash.  (The
CLI's file-based spool adds a second layer: ``fleet submit`` refuses to
spool past the limit, and pending files the service has no queue room for
simply stay in the spool until a slot frees up.)

Ordering is (priority class, submission order): ``record`` jobs — the
cheap always-on production tier — preempt ``detect-offline`` replays,
which preempt full ``online`` detection runs.  Within a class the queue
is FIFO, so no job starves its own tier.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.errors import AdmissionError
from repro.fleet.job import JobSpec

#: Default admission bound of both the in-memory queue and the CLI spool.
DEFAULT_QUEUE_LIMIT = 64


class JobQueue:
    """Priority queue with a hard admission bound."""

    def __init__(self, limit: int = DEFAULT_QUEUE_LIMIT):
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1: {limit}")
        self.limit = limit
        self._heap: List[Tuple[int, int, JobSpec]] = []
        self._counter = 0
        #: Total rejections, for the service's stats line.
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.limit

    def push(self, job: JobSpec) -> None:
        """Admit a job or raise :class:`AdmissionError` (backpressure)."""
        if self.full:
            self.rejected += 1
            raise AdmissionError(job.job_id, self.limit)
        heapq.heappush(self._heap, (job.priority, self._counter, job))
        self._counter += 1

    def pop(self) -> JobSpec:
        """Highest-priority (then oldest) job; raises ``IndexError`` when
        empty — callers check :meth:`__len__` first."""
        _, _, job = heapq.heappop(self._heap)
        return job

    def peek(self) -> Optional[JobSpec]:
        if not self._heap:
            return None
        return self._heap[0][2]

    def jobs(self) -> List[JobSpec]:
        """Queued jobs in dispatch order (non-destructive)."""
        return [job for _, _, job in sorted(self._heap)]

    def remove(self, job_id: str) -> JobSpec:
        """Take a specific queued job (backfill scheduling: the
        supervisor may start a later job whose slots fit while the
        head-of-line job waits for a larger block).  Original submission
        counters are preserved, so relative order never churns."""
        for i, (_, _, job) in enumerate(self._heap):
            if job.job_id == job_id:
                entry = self._heap[i]
                self._heap[i] = self._heap[-1]
                self._heap.pop()
                if i < len(self._heap):
                    heapq.heapify(self._heap)
                return entry[2]
        raise KeyError(job_id)
