"""Fleet spool: the on-disk contract between clients and the service.

Layout under one spool root::

    SEQ            job-id allocator (flock-serialized counter)
    pending/       framed JobSpec files awaiting ingestion
    work/          per-attempt job/heartbeat/stderr files (service-owned)
    results/       framed worker result payloads, one per completed job
    ckpt/<job>/    per-job checkpoint scope (no --checkpoint-dir sharing)
    journal.log    the service's framed event journal (source of truth)
    DRAIN          marker: stop admission, finish in-flight, aggregate
    aggregate.txt  rendered aggregate report (byte-compared in CI)
    aggregate.json framed canonical aggregate payload

Clients (``repro fleet submit``) only ever create files in ``pending/``
and bump ``SEQ``; the service is the sole journal writer.  That split is
what lets submission survive service restarts and lets ``status`` work
with no service running at all.
"""

from __future__ import annotations

import fcntl
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.dsm.checkpoint import _hash_text
from repro.errors import AdmissionError, FleetError
from repro.fleet.job import JobSpec, parse_framed_payload
from repro.fleet.journal import FleetJournal
from repro.fleet.queue import DEFAULT_QUEUE_LIMIT

#: Job states that need no further scheduling.
TERMINAL_STATES = ("done", "races", "failed", "poisoned")

#: Attempt-outcome kinds that count toward the poison cap: the worker
#: process died (or was killed for going silent) rather than reporting.
CRASH_KINDS = ("crash", "hung")


@dataclass
class JobRecord:
    """A job's full scheduling state, reconstructible from the journal."""

    spec: JobSpec
    state: str = "pending"
    attempts: int = 0
    crashes: int = 0
    reason: str = ""
    worker_pid: int = 0
    result_hash: str = ""
    last_kind: str = ""
    #: Monotonic time before which a backoff-waiting job may not start
    #: (in-memory only; resumes retry immediately).
    eligible_at: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class FleetSpool:
    """Path schema + client-side operations for one fleet spool."""

    def __init__(self, root: str):
        self.root = root
        self.pending_dir = os.path.join(root, "pending")
        self.work_dir = os.path.join(root, "work")
        self.results_dir = os.path.join(root, "results")
        self.ckpt_dir = os.path.join(root, "ckpt")
        self.journal_path = os.path.join(root, "journal.log")
        self.drain_path = os.path.join(root, "DRAIN")
        self.aggregate_txt = os.path.join(root, "aggregate.txt")
        self.aggregate_json = os.path.join(root, "aggregate.json")
        self.seq_path = os.path.join(root, "SEQ")
        self.serve_lock_path = os.path.join(root, "SERVE.LOCK")

    def ensure(self) -> None:
        for path in (self.root, self.pending_dir, self.work_dir,
                     self.results_dir, self.ckpt_dir):
            os.makedirs(path, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Client side: id allocation and submission.
    # ------------------------------------------------------------------ #
    def next_job_id(self) -> str:
        """Allocate the next spool-unique job id, serialized by an
        advisory lock so concurrent submitters never collide."""
        self.ensure()
        fd = os.open(self.seq_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            raw = os.read(fd, 64).decode("ascii").strip()
            seq = int(raw) if raw else 0
            os.lseek(fd, 0, os.SEEK_SET)
            os.ftruncate(fd, 0)
            os.write(fd, str(seq + 1).encode("ascii"))
        finally:
            os.close(fd)  # releases the lock
        return f"job-{seq:06d}"

    def submit(self, spec: JobSpec,
               limit: int = DEFAULT_QUEUE_LIMIT) -> str:
        """Spool a job for the service, honoring the admission bound:
        a backlog of ``limit`` not-yet-ingested submissions refuses new
        ones with :class:`AdmissionError` (backpressure, not failure)."""
        self.ensure()
        backlog = len(self.pending_files())
        if backlog >= limit:
            raise AdmissionError(spec.job_id, limit)
        path = os.path.join(self.pending_dir, spec.job_id + ".json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(spec.to_framed() + "\n")
        os.replace(tmp, path)
        return path

    def pending_files(self) -> List[str]:
        if not os.path.isdir(self.pending_dir):
            return []
        return sorted(name for name in os.listdir(self.pending_dir)
                      if name.endswith(".json"))

    def checkpoint_dir_for(self, job_id: str) -> str:
        """Per-job checkpoint scope: two fleet jobs can both ask for
        checkpointing without tripping the shared-directory guard."""
        return os.path.join(self.ckpt_dir, job_id)

    # ------------------------------------------------------------------ #
    # Results.
    # ------------------------------------------------------------------ #
    def result_path(self, job_id: str) -> str:
        return os.path.join(self.results_dir, job_id + ".json")

    def load_result(self, job_id: str) -> Tuple[Dict[str, Any], str]:
        """Read and verify a worker result; returns ``(payload, digest)``
        where ``digest`` is the frame's content hash (journaled so a
        resume can detect a result file lost or corrupted since)."""
        path = self.result_path(job_id)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                framed = fh.read().rstrip("\n")
        except OSError as exc:
            raise FleetError(f"result for {job_id} unreadable: {exc}")
        payload = parse_framed_payload(framed, f"result for {job_id}")
        if payload.get("job_id") != job_id:
            raise FleetError(
                f"result file {path!r} names job "
                f"{payload.get('job_id')!r}, expected {job_id!r}")
        body = framed.rpartition("\n")[0]
        return payload, _hash_text(body)


def fold_journal(events: List[Dict[str, Any]]
                 ) -> Tuple[Dict[str, JobRecord], bool, bool]:
    """Replay journal events into per-job records.

    Returns ``(records, drain_requested, drained)``.  The folding rules
    are the exact mirror of how the service journals transitions —
    ``serve --resume``, ``fleet status``, and the tests all reconstruct
    state through this one function so they can never disagree.
    """
    records: Dict[str, JobRecord] = {}
    drain_requested = False
    drained = False
    for ev in events:
        kind = ev["event"]
        if kind == "submit":
            spec = JobSpec.from_payload(ev["job"])
            records[spec.job_id] = JobRecord(spec=spec)
        elif kind == "start":
            rec = records[ev["job_id"]]
            rec.attempts = ev["attempt"]
            rec.worker_pid = ev["pid"]
            rec.state = "running"
        elif kind == "outcome":
            rec = records[ev["job_id"]]
            rec.last_kind = ev["kind"]
            if ev["kind"] in CRASH_KINDS:
                rec.crashes += 1
        elif kind == "retry":
            rec = records[ev["job_id"]]
            rec.state = "pending"
            rec.eligible_at = 0.0
        elif kind == "terminal":
            rec = records[ev["job_id"]]
            rec.state = ev["state"]
            rec.reason = ev.get("reason", "")
            rec.result_hash = ev.get("result_hash", "")
        elif kind == "drain":
            drain_requested = True
        elif kind == "drained":
            drained = True
        # "service", "reject", "chaos_kill" carry no job state.
    return records, drain_requested, drained


def status_text(spool: FleetSpool) -> str:
    """Point-in-time fleet status from the journal + spool (no live
    service needed — the journal IS the state)."""
    from repro.harness.format import render_table
    events, dropped = FleetJournal.replay(spool.journal_path)
    records, drain_requested, drained = fold_journal(events)
    rows = []
    for job_id in sorted(records):
        rec = records[job_id]
        rows.append([job_id, rec.spec.app, rec.spec.mode, rec.spec.seed,
                     rec.state, rec.attempts, rec.crashes,
                     rec.reason or "-"])
    out = [render_table(
        "Fleet status",
        ["job", "app", "mode", "seed", "state", "attempts", "crashes",
         "reason"], rows)]
    pending = spool.pending_files()
    out.append("")
    out.append(f"spooled (awaiting ingestion): {len(pending)}")
    terminal = sum(1 for rec in records.values() if rec.terminal)
    out.append(f"ingested: {len(records)}  terminal: {terminal}")
    if drained:
        out.append("service: drained")
    elif drain_requested:
        out.append("service: draining")
    if dropped:
        out.append(f"journal: {dropped} torn trailing line(s) ignored")
    return "\n".join(out) + "\n"
