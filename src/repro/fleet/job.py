"""Fleet job model: one detection run as a schedulable unit of work.

A job is (app × config × seed × mode) — exactly what the single-run CLI
executes, but packaged as a canonical-JSON payload so it can sit in a
spool directory, ride the fleet journal, and be handed to a worker
subprocess.  Files holding a job use the repo's standard framing
(canonical body + newline + BLAKE2b content hash), so a torn submit is
detected at ingestion instead of poisoning the queue.

Priority classes follow the two-phase production story (docs/robustness.md):
``record`` runs are the cheap always-on production traffic and are served
first, ``detect-offline`` replays are the scheduled analysis tier, and
``online`` runs — full inline detection — are the most expensive and yield
to both.  Within a class, jobs run in submission order.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.dsm.checkpoint import _canon, _hash_text
from repro.dsm.config import DsmConfig
from repro.errors import FleetError

#: Bump when the job payload schema changes incompatibly.
JOB_FORMAT_VERSION = 1

#: Scheduling priority per execution mode; lower runs first.
PRIORITY_CLASSES = {"record": 0, "detect-offline": 1, "online": 2}

#: DsmConfig field names a job's ``overrides`` may carry.  Everything
#: else — and anything non-serializable like ``cost_model`` — is refused
#: at construction, so a malformed submission fails at submit time (or is
#: classified permanently-failed by the worker), never silently ignored.
_CONFIG_FIELDS = frozenset(
    f.name for f in dataclasses.fields(DsmConfig)
    if f.name not in ("cost_model", "fault_plan", "crash_plan"))

#: Simulated processes one worker slot is sized for; a 32-proc job costs
#: four slots, the 2-4 proc test jobs cost one (see placement.py).
PROCS_PER_SLOT = 8


def frame_payload(payload: Dict[str, Any]) -> str:
    """Canonical body + newline + content hash (the journal idiom)."""
    body = _canon(payload)
    return body + "\n" + _hash_text(body)


def parse_framed_payload(framed: str, what: str) -> Dict[str, Any]:
    """Validate a frame and decode its JSON body; raises
    :class:`FleetError` on a torn or corrupt file."""
    import json
    body, sep, digest = framed.rpartition("\n")
    if not sep or _hash_text(body) != digest:
        raise FleetError(f"{what}: frame torn or corrupt "
                         "(content hash mismatch)")
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise FleetError(f"{what}: body unparseable: {exc}")
    if not isinstance(payload, dict):
        raise FleetError(f"{what}: body is not a JSON object")
    return payload


@dataclass
class JobSpec:
    """One schedulable detection job.

    Attributes:
        job_id: Spool-unique id assigned at submission ("job-000007").
        app: Registered application name.
        mode: ``online`` / ``record`` / ``detect-offline`` — also the
            job's priority class.
        nprocs: Simulated processes (drives the slot size).
        seed: Scheduling seed — the sweep axis the aggregate dedups over.
        overrides: Extra :class:`~repro.dsm.config.DsmConfig` fields
            (loss_rate, fault_seed, sharded_detection, trace_file,
            checkpoint_dir...).  Keys are validated here.
        deadline_seconds: Per-job wall-clock budget.  Enforced twice:
            in-run by the scheduler's deadline guard (clean
            ``DeadlineExceeded``, exit code 4) and externally by the
            supervisor, which SIGKILLs a worker that overstays the
            deadline plus a grace period (a hung interpreter can't
            honor the in-run guard).
        max_retries: Retries after transient failures before the job is
            classified permanently-failed.
        max_crashes: Worker crashes (SIGKILL, segfault, hung-and-killed)
            before the job is classified poisoned — the cap that keeps
            one bad config from wedging the fleet.
        chaos: Test-only fault hooks honored by the worker — the fleet's
            own deterministic fault injection, mirroring
            ``repro.net.faults`` / ``repro.sim.crash``:
            ``{"exit_code": N}`` exits with code N before running;
            ``{"hang": true}`` stops heartbeating and sleeps forever
            (exercises hung-worker detection and the poison path).
    """

    job_id: str
    app: str
    mode: str = "online"
    nprocs: int = 4
    seed: int = 0
    overrides: Dict[str, Any] = field(default_factory=dict)
    deadline_seconds: Optional[float] = None
    max_retries: int = 2
    max_crashes: int = 2
    chaos: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in PRIORITY_CLASSES:
            raise FleetError(
                f"job {self.job_id!r}: unknown mode {self.mode!r} "
                f"(expected one of {sorted(PRIORITY_CLASSES)})")
        if self.nprocs < 1:
            raise FleetError(f"job {self.job_id!r}: nprocs must be >= 1")
        if self.max_retries < 0 or self.max_crashes < 1:
            raise FleetError(
                f"job {self.job_id!r}: max_retries must be >= 0 and "
                f"max_crashes >= 1")
        unknown = sorted(set(self.overrides) - _CONFIG_FIELDS)
        if unknown:
            raise FleetError(
                f"job {self.job_id!r}: unknown DsmConfig override(s) "
                f"{unknown}; valid fields are DsmConfig's scalar options")

    @property
    def priority(self) -> int:
        return PRIORITY_CLASSES[self.mode]

    @property
    def slots(self) -> int:
        """Sized-slot footprint: one slot per :data:`PROCS_PER_SLOT`
        simulated processes, rounded up."""
        return max(1, -(-self.nprocs // PROCS_PER_SLOT))

    @property
    def attempts_allowed(self) -> int:
        return 1 + self.max_retries

    def config_overrides(self) -> Dict[str, Any]:
        """The :meth:`AppSpec.run` keyword arguments this job resolves
        to (mode/seed folded in with the free-form overrides)."""
        kw = dict(self.overrides)
        kw["seed"] = self.seed
        kw["mode"] = self.mode
        if self.deadline_seconds is not None:
            kw.setdefault("deadline_seconds", self.deadline_seconds)
        return kw

    # ------------------------------------------------------------------ #
    # Canonical (framed) serialization.
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": JOB_FORMAT_VERSION,
            "job_id": self.job_id,
            "app": self.app,
            "mode": self.mode,
            "nprocs": self.nprocs,
            "seed": self.seed,
            "overrides": dict(sorted(self.overrides.items())),
            "deadline_seconds": self.deadline_seconds,
            "max_retries": self.max_retries,
            "max_crashes": self.max_crashes,
            "chaos": dict(sorted(self.chaos.items())),
        }

    def to_framed(self) -> str:
        return frame_payload(self.to_payload())

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobSpec":
        version = payload.get("version")
        if version != JOB_FORMAT_VERSION:
            raise FleetError(
                f"job payload version {version!r} is not the supported "
                f"version {JOB_FORMAT_VERSION}")
        required = ("job_id", "app", "mode", "nprocs", "seed", "overrides")
        missing = [key for key in required if key not in payload]
        if missing:
            raise FleetError(f"job payload missing fields: {missing}")
        return cls(
            job_id=str(payload["job_id"]), app=str(payload["app"]),
            mode=str(payload["mode"]), nprocs=int(payload["nprocs"]),
            seed=int(payload["seed"]),
            overrides=dict(payload["overrides"]),
            deadline_seconds=payload.get("deadline_seconds"),
            max_retries=int(payload.get("max_retries", 2)),
            max_crashes=int(payload.get("max_crashes", 2)),
            chaos=dict(payload.get("chaos", {})))

    @classmethod
    def parse_framed(cls, framed: str, what: str = "job file") -> "JobSpec":
        return cls.from_payload(parse_framed_payload(framed, what))
