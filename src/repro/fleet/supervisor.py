"""Fleet supervisor: the crash-tolerant detection service.

One :class:`FleetService` owns a spool and runs the supervision loop:

* **ingest** — framed submissions are moved from ``pending/`` into the
  bounded priority queue; torn files are quarantined, a full queue
  simply leaves files spooled (backpressure, never loss);
* **schedule** — sized-slot placement onto the worker pool
  (:mod:`repro.fleet.placement`), with backfill past jobs that do not
  currently fit;
* **supervise** — each attempt is an isolated worker subprocess with a
  heartbeat file and an optional wall-clock deadline; a silent or
  overstaying worker is SIGKILLed and the attempt classified;
* **retry** — transient failures (runtime errors, timeouts, crashes)
  retry with capped exponential backoff up to the job's retry budget;
  config errors fail permanently at once; repeated *crashes* poison the
  job so one bad config cannot wedge the fleet;
* **journal** — every transition is a framed journal event *before* it
  takes effect, so ``serve --resume`` reconstructs the exact state after
  the service itself is killed: interrupted attempts are counted and
  retried, orphan workers are reaped, and completed results are
  hash-verified against the journal;
* **drain** — a ``DRAIN`` marker (or SIGTERM, or ``--drain-on-empty``)
  stops admission, lets in-flight work finish, and emits the aggregate.

Determinism note: the aggregate report is built only from job specs,
terminal states, and worker result payloads — all crash/retry/timing
metadata stays in the journal and the service log — so the same queue
produces a byte-identical aggregate with or without failures.
"""

from __future__ import annotations

import fcntl
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import AdmissionError, FleetError
from repro.exitcodes import (EXIT_CLEAN, EXIT_CONFIG, EXIT_RACES,
                             EXIT_RUNTIME, EXIT_TIMEOUT)
from repro.fleet.aggregate import build_aggregate, render_aggregate
from repro.fleet.job import JobSpec, frame_payload
from repro.fleet.journal import FleetJournal
from repro.fleet.placement import Placement, SlotPool
from repro.fleet.queue import DEFAULT_QUEUE_LIMIT, JobQueue
from repro.fleet.spool import (CRASH_KINDS, FleetSpool, JobRecord,
                               fold_journal)


@dataclass
class _Attempt:
    """One live worker subprocess."""

    record: JobRecord
    proc: subprocess.Popen
    placement: Placement
    heartbeat_path: str
    stderr_path: str
    started_at: float          # monotonic
    kill_after: Optional[float]  # monotonic deadline incl. grace
    stderr_fh: object


class FleetService:
    """The long-lived ``repro fleet serve`` process."""

    def __init__(self, spool_root: str, slots: int = 4,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 poll_interval: float = 0.05,
                 heartbeat_interval: float = 0.2,
                 heartbeat_timeout: float = 5.0,
                 deadline_grace: float = 2.0,
                 backoff_base: float = 0.1,
                 backoff_cap: float = 2.0,
                 drain_on_empty: bool = False,
                 chaos_kill_worker: int = 0,
                 chaos_kill_after: float = 0.15,
                 log=print):
        self.spool = FleetSpool(spool_root)
        self.pool = SlotPool(slots)
        self.queue = JobQueue(queue_limit)
        self.journal = FleetJournal(self.spool.journal_path)
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.deadline_grace = deadline_grace
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.drain_on_empty = drain_on_empty
        #: Chaos: SIGKILL the Nth started worker once (1-based; 0 = off).
        #: The fleet's own fault injection, used by tests and the CI
        #: smoke job to prove the retry path with a real dead process.
        self.chaos_kill_worker = chaos_kill_worker
        self.chaos_kill_after = chaos_kill_after
        self._chaos_done = chaos_kill_worker == 0
        self._chaos_target: Optional[str] = None
        self._log = log
        self.records: Dict[str, JobRecord] = {}
        self._attempts: Dict[str, _Attempt] = {}
        self._starts = 0
        self._drain_requested = False
        self._sigterm = False

    # ------------------------------------------------------------------ #
    # Entry point.
    # ------------------------------------------------------------------ #
    def serve(self, resume: bool = False) -> int:
        self.spool.ensure()
        lock_fh = self._take_serve_lock()
        try:
            events, dropped = FleetJournal.replay(self.spool.journal_path)
            if events and not resume:
                raise FleetError(
                    f"spool {self.spool.root!r} already holds service "
                    f"history ({len(events)} journal event(s)); pass "
                    "--resume to recover it, or point --spool at a "
                    "fresh directory")
            if dropped:
                self._log(f"fleet: journal had {dropped} torn trailing "
                          f"line(s) (service was killed mid-write); "
                          f"resuming from the last intact frame")
            self.journal.open(seq_start=FleetJournal.last_seq(events))
            try:
                self.journal.append("service", resume=resume,
                                    slots=self.pool.total_slots,
                                    queue_limit=self.queue.limit)
                if resume:
                    self._recover(events)
                old = signal.signal(signal.SIGTERM, self._on_sigterm)
                try:
                    return self._loop()
                finally:
                    signal.signal(signal.SIGTERM, old)
            finally:
                self.journal.close()
        finally:
            lock_fh.close()

    def _take_serve_lock(self):
        """One live service per spool, enforced with an OS lock.

        Two services folding one journal would interleave frames and
        corrupt the sequence for every later reader.  flock is released
        by the kernel when the holder dies — a SIGKILLed service never
        strands its spool, so ``--resume`` needs no cleanup step.
        """
        fh = open(self.spool.serve_lock_path, "a+", encoding="utf-8")
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            fh.seek(0)
            holder = fh.read().strip() or "unknown"
            fh.close()
            raise FleetError(
                f"spool {self.spool.root!r} is already being served "
                f"(lock {self.spool.serve_lock_path!r} held by os-pid "
                f"{holder}); one service per spool — stop the other "
                "service or point --spool elsewhere")
        fh.seek(0)
        fh.truncate()
        fh.write(f"{os.getpid()}\n")
        fh.flush()
        return fh

    def _on_sigterm(self, signum, frame) -> None:
        self._sigterm = True

    # ------------------------------------------------------------------ #
    # Recovery.
    # ------------------------------------------------------------------ #
    def _recover(self, events: List[Dict]) -> None:
        """Rebuild state from the journal after the service was killed."""
        self.records, self._drain_requested, _ = fold_journal(events)
        for job_id in sorted(self.records):
            rec = self.records[job_id]
            if rec.state == "running":
                # The service died with this attempt in flight.  Reap a
                # surviving orphan, then account the attempt as
                # interrupted: it consumed a try (so a job cannot run
                # twice without being counted as a retry) but is NOT a
                # crash — the worker did nothing wrong.
                self._reap_orphan(rec.worker_pid)
                self.journal.append("outcome", job_id=job_id,
                                    attempt=rec.attempts,
                                    kind="interrupted", rc=None)
                rec.last_kind = "interrupted"
                rec.worker_pid = 0
                if rec.attempts >= rec.spec.attempts_allowed:
                    self._terminal(rec, "failed",
                                   reason="interrupted; retry budget "
                                          "exhausted")
                else:
                    self.journal.append("retry", job_id=job_id,
                                        attempt_next=rec.attempts + 1,
                                        delay_ms=0)
                    self._requeue(rec)
                    self._log(f"fleet: {job_id} was in flight at the "
                              f"kill; requeued as a retry "
                              f"(attempt {rec.attempts + 1})")
            elif rec.state in ("done", "races"):
                # Trust, but verify: the journal says a result exists
                # with this content hash.
                try:
                    _, digest = self.spool.load_result(job_id)
                    ok = digest == rec.result_hash
                except FleetError:
                    ok = False
                if not ok:
                    self._log(f"fleet: {job_id} result file lost or "
                              f"corrupt since the journal entry; "
                              f"re-running")
                    self.journal.append("outcome", job_id=job_id,
                                        attempt=rec.attempts,
                                        kind="result-lost", rc=None)
                    self.journal.append("retry", job_id=job_id,
                                        attempt_next=rec.attempts + 1,
                                        delay_ms=0)
                    rec.result_hash = ""
                    self._requeue(rec)
            elif rec.state == "pending":
                self._requeue(rec)
        self.pool.validate()

    def _requeue(self, rec: JobRecord) -> None:
        """Put a recovered job back in line; if the in-memory queue is
        momentarily over-subscribed (more revived jobs than the bound),
        park it as waiting — :meth:`_promote_waiting` admits it as soon
        as room frees up.  Nothing is ever dropped on resume."""
        try:
            self.queue.push(rec.spec)
            rec.state = "pending"
        except AdmissionError:
            rec.state = "waiting"
            rec.eligible_at = 0.0

    def _reap_orphan(self, pid: int) -> None:
        """SIGKILL a worker that outlived the previous service — but only
        after proving the pid still belongs to one of *our* workers (pids
        get recycled; killing a stranger would be a supervisor bug)."""
        if pid <= 0:
            return
        try:
            with open(f"/proc/{pid}/cmdline", "rb") as fh:
                cmdline = fh.read().decode("utf-8", "replace")
        except OSError:
            return  # already gone
        if "repro.fleet.worker" not in cmdline or \
                self.spool.root not in cmdline:
            return
        self._log(f"fleet: reaping orphan worker pid {pid}")
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Main loop.
    # ------------------------------------------------------------------ #
    def _loop(self) -> int:
        while True:
            if (self._sigterm or os.path.exists(self.spool.drain_path)) \
                    and not self._drain_requested:
                self._drain_requested = True
                self.journal.append("drain")
                self._log("fleet: drain requested; admission stopped")
            self._ingest()
            self._promote_waiting()
            self._schedule()
            self._poll_workers()
            if self._finished():
                return self._finish()
            time.sleep(self.poll_interval)

    def _finished(self) -> bool:
        if self._attempts:
            return False
        busy = any(not rec.terminal for rec in self.records.values())
        if self._drain_requested:
            return not busy
        if self.drain_on_empty:
            return not busy and not self.spool.pending_files()
        return False

    # ------------------------------------------------------------------ #
    # Ingestion (admission).
    # ------------------------------------------------------------------ #
    def _ingest(self) -> None:
        if self._drain_requested:
            return
        for name in self.spool.pending_files():
            if self.queue.full:
                # Backpressure: leave the files spooled; they are not
                # lost, just not admitted yet.
                break
            path = os.path.join(self.spool.pending_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    spec = JobSpec.parse_framed(
                        fh.read().rstrip("\n"), what=f"submission {name}")
            except (OSError, FleetError) as exc:
                self.journal.append("reject", file=name, error=str(exc))
                self._log(f"fleet: rejecting submission {name}: {exc}")
                try:
                    os.replace(path, path + ".corrupt")
                except OSError:
                    pass
                continue
            if spec.job_id in self.records:
                self.journal.append("reject", file=name,
                                    error=f"duplicate job id "
                                          f"{spec.job_id!r}")
                os.remove(path)
                continue
            self.journal.append("submit", job=spec.to_payload())
            os.remove(path)
            self.records[spec.job_id] = JobRecord(spec=spec)
            self.queue.push(spec)
            self._log(f"fleet: admitted {spec.job_id} "
                      f"({spec.app}/{spec.mode} seed={spec.seed})")

    def _promote_waiting(self) -> None:
        now = time.monotonic()
        for rec in self.records.values():
            if rec.state == "waiting" and now >= rec.eligible_at \
                    and not self.queue.full:
                rec.state = "pending"
                self.queue.push(rec.spec)

    # ------------------------------------------------------------------ #
    # Scheduling + worker launch.
    # ------------------------------------------------------------------ #
    def _schedule(self) -> None:
        for spec in self.queue.jobs():
            try:
                placement = self.pool.place(spec)
            except FleetError as exc:
                # Can never fit on this pool: permanently failed.
                self.queue.remove(spec.job_id)
                rec = self.records[spec.job_id]
                self.journal.append("outcome", job_id=spec.job_id,
                                    attempt=rec.attempts,
                                    kind="placement", rc=None)
                self._terminal(rec, "failed", reason=str(exc))
                continue
            if placement is None:
                continue  # backfill: a smaller later job may still fit
            self.queue.remove(spec.job_id)
            self._start_attempt(self.records[spec.job_id], placement)

    def _start_attempt(self, rec: JobRecord, placement: Placement) -> None:
        spec = rec.spec
        rec.attempts += 1
        job_path = os.path.join(self.spool.work_dir, spec.job_id + ".json")
        with open(job_path + ".tmp", "w", encoding="utf-8") as fh:
            fh.write(spec.to_framed() + "\n")
        os.replace(job_path + ".tmp", job_path)
        heartbeat_path = os.path.join(self.spool.work_dir,
                                      spec.job_id + ".hb")
        try:
            os.remove(heartbeat_path)  # stale beats must not count
        except OSError:
            pass
        stderr_path = os.path.join(self.spool.work_dir,
                                   spec.job_id + ".err")
        stderr_fh = open(stderr_path, "wb")
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_dir + os.pathsep + \
            env.get("PYTHONPATH", "") if env.get("PYTHONPATH") else src_dir
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.fleet.worker",
             "--job", job_path,
             "--result", self.spool.result_path(spec.job_id),
             "--heartbeat", heartbeat_path,
             "--heartbeat-interval", str(self.heartbeat_interval)],
            stdout=subprocess.DEVNULL, stderr=stderr_fh, env=env)
        started = time.monotonic()
        kill_after = None
        if spec.deadline_seconds is not None:
            kill_after = started + spec.deadline_seconds + \
                self.deadline_grace
        rec.state = "running"
        rec.worker_pid = proc.pid
        self.journal.append("start", job_id=spec.job_id,
                            attempt=rec.attempts, pid=proc.pid,
                            slots=[placement.start, placement.size])
        self._attempts[spec.job_id] = _Attempt(
            record=rec, proc=proc, placement=placement,
            heartbeat_path=heartbeat_path, stderr_path=stderr_path,
            started_at=started, kill_after=kill_after,
            stderr_fh=stderr_fh)
        self._starts += 1
        if not self._chaos_done and self._chaos_target is None and \
                self._starts == self.chaos_kill_worker:
            self._chaos_target = spec.job_id
        self._log(f"fleet: started {spec.job_id} attempt "
                  f"{rec.attempts}/{spec.attempts_allowed} "
                  f"(pid {proc.pid}, slots "
                  f"{list(placement.slots)})")

    # ------------------------------------------------------------------ #
    # Supervision.
    # ------------------------------------------------------------------ #
    def _poll_workers(self) -> None:
        now = time.monotonic()
        for job_id in sorted(self._attempts):
            att = self._attempts[job_id]
            rc = att.proc.poll()
            kind_override = None
            if rc is None:
                if not self._chaos_done and \
                        job_id == self._chaos_target and \
                        now - att.started_at >= self.chaos_kill_after:
                    # Chaos: murder this worker mid-job, exactly once.
                    self._chaos_done = True
                    self.journal.append("chaos_kill", job_id=job_id,
                                        pid=att.proc.pid)
                    self._log(f"fleet: CHAOS killing worker "
                              f"{att.proc.pid} ({job_id})")
                    att.proc.kill()
                    rc = att.proc.wait()
                elif att.kill_after is not None and now > att.kill_after:
                    self._log(f"fleet: {job_id} overstayed its deadline "
                              f"+ grace; killing worker {att.proc.pid}")
                    att.proc.kill()
                    rc = att.proc.wait()
                    kind_override = "timeout"
                elif self._heartbeat_age(att, now) > \
                        self.heartbeat_timeout:
                    self._log(f"fleet: {job_id} heartbeat silent for "
                              f">{self.heartbeat_timeout:.1f}s; killing "
                              f"hung worker {att.proc.pid}")
                    att.proc.kill()
                    rc = att.proc.wait()
                    kind_override = "hung"
                else:
                    continue
            self._conclude_attempt(att, rc, kind_override)

    def _heartbeat_age(self, att: _Attempt, now: float) -> float:
        try:
            mtime = os.stat(att.heartbeat_path).st_mtime
        except OSError:
            return now - att.started_at  # never beat yet
        return max(0.0, time.time() - mtime)

    def _classify(self, rc: int) -> str:
        if rc < 0:
            return "crash"
        return {EXIT_CLEAN: "clean", EXIT_RACES: "races",
                EXIT_CONFIG: "config", EXIT_TIMEOUT: "timeout",
                EXIT_RUNTIME: "runtime"}.get(rc, "runtime")

    def _conclude_attempt(self, att: _Attempt, rc: int,
                          kind_override: Optional[str]) -> None:
        rec = att.record
        job_id = rec.spec.job_id
        del self._attempts[job_id]
        self.pool.release(job_id)
        att.stderr_fh.close()
        kind = kind_override or self._classify(rc)
        result_hash = ""
        if kind in ("clean", "races"):
            try:
                _, result_hash = self.spool.load_result(job_id)
            except FleetError as exc:
                self._log(f"fleet: {job_id} exited {rc} but its result "
                          f"is unusable: {exc}")
                kind = "runtime"
        self.journal.append("outcome", job_id=job_id,
                            attempt=rec.attempts, kind=kind, rc=rc)
        rec.last_kind = kind
        if kind == "clean":
            self._terminal(rec, "done", result_hash=result_hash)
            return
        if kind == "races":
            self._terminal(rec, "races", result_hash=result_hash)
            return
        if kind == "config":
            self._terminal(rec, "failed",
                           reason="config error (permanent; see "
                                  + att.stderr_path + ")")
            return
        if kind in CRASH_KINDS:
            rec.crashes += 1
            if rec.crashes >= rec.spec.max_crashes:
                self._terminal(rec, "poisoned",
                               reason=f"{rec.crashes} worker crash(es); "
                                      f"poison cap reached")
                return
        if rec.attempts >= rec.spec.attempts_allowed:
            self._terminal(rec, "failed",
                           reason=f"{kind}; retry budget exhausted "
                                  f"after {rec.attempts} attempt(s)")
            return
        delay = min(self.backoff_cap,
                    self.backoff_base * (2 ** (rec.attempts - 1)))
        self.journal.append("retry", job_id=job_id,
                            attempt_next=rec.attempts + 1,
                            delay_ms=int(delay * 1000))
        rec.state = "waiting"
        rec.eligible_at = time.monotonic() + delay
        self._log(f"fleet: {job_id} attempt {rec.attempts} -> {kind} "
                  f"(rc={rc}); retrying in {delay:.2f}s")

    def _terminal(self, rec: JobRecord, state: str, reason: str = "",
                  result_hash: str = "") -> None:
        rec.state = state
        rec.reason = reason
        rec.result_hash = result_hash
        self.journal.append("terminal", job_id=rec.spec.job_id,
                            state=state, reason=reason,
                            result_hash=result_hash)
        extra = f" ({reason})" if reason else ""
        self._log(f"fleet: {rec.spec.job_id} -> {state}{extra}")

    # ------------------------------------------------------------------ #
    # Drain + aggregate.
    # ------------------------------------------------------------------ #
    def _finish(self) -> int:
        payload = self.build_aggregate_payload()
        text = render_aggregate(payload)
        for path, content in ((self.spool.aggregate_txt, text),
                              (self.spool.aggregate_json,
                               frame_payload(payload) + "\n")):
            with open(path + ".tmp", "w", encoding="utf-8") as fh:
                fh.write(content)
            os.replace(path + ".tmp", path)
        completed = sum(1 for rec in self.records.values()
                        if rec.state in ("done", "races"))
        degraded = len(self.records) - completed
        code = EXIT_CLEAN if degraded == 0 else EXIT_RUNTIME
        self.journal.append("drained", jobs=len(self.records),
                            completed=completed, exit_code=code)
        self._log(f"fleet: drained — {completed}/{len(self.records)} "
                  f"job(s) completed detection; aggregate at "
                  f"{self.spool.aggregate_txt}")
        self._log("")
        self._log(text.rstrip("\n"))
        return code

    def build_aggregate_payload(self) -> Dict:
        entries = []
        for job_id in sorted(self.records):
            rec = self.records[job_id]
            result = None
            if rec.state in ("done", "races"):
                result, _ = self.spool.load_result(job_id)
            entries.append({
                "job_id": job_id, "app": rec.spec.app,
                "mode": rec.spec.mode, "nprocs": rec.spec.nprocs,
                "seed": rec.spec.seed, "state": rec.state,
                "result": result,
            })
        return build_aggregate(entries)
