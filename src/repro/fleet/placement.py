"""Sized-slot placement: packing jobs onto the worker pool.

Follows the ``ob74`` Application/Kernel-placement idiom (SNIPPETS.md
snippets 1-2): resources are a fixed row of *slots*, each schedulable
unit has a *size* (a 2x2 kernel there, ``ceil(nprocs / 8)`` worker slots
here), placements name explicit locations, and every mutation is
validated against the pool's invariants — no overlap, in bounds,
release-what-you-placed — so a placement bug is a loud error at the
placement layer instead of a mysterious oversubscription three layers up.

A job that does not currently fit is *not* an error: it waits in the
queue until running jobs release slots.  A job larger than the whole
pool can never fit and IS an error, raised at placement-plan time so the
supervisor classifies it permanently-failed instead of letting it camp
at the head of the queue forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import FleetError
from repro.fleet.job import JobSpec


@dataclass(frozen=True)
class Placement:
    """A job's validated location on the pool: slots
    ``[start, start + size)``."""

    job_id: str
    start: int
    size: int

    @property
    def slots(self) -> range:
        return range(self.start, self.start + self.size)


class SlotPool:
    """A fixed row of worker slots with explicit, validated occupancy."""

    def __init__(self, total_slots: int):
        if total_slots < 1:
            raise ValueError(f"total_slots must be >= 1: {total_slots}")
        self.total_slots = total_slots
        #: slot index -> job_id occupying it (absent = free).
        self._occupancy: Dict[int, str] = {}
        self._placements: Dict[str, Placement] = {}

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    @property
    def free_slots(self) -> int:
        return self.total_slots - len(self._occupancy)

    def placements(self) -> List[Placement]:
        return [self._placements[jid] for jid in sorted(self._placements)]

    # ------------------------------------------------------------------ #
    # Placement.
    # ------------------------------------------------------------------ #
    def fit(self, job: JobSpec) -> Optional[Placement]:
        """The lowest-indexed contiguous free block that fits ``job``,
        or ``None`` if the job must wait.  Raises :class:`FleetError`
        for a job that can never fit on this pool."""
        size = job.slots
        if size > self.total_slots:
            raise FleetError(
                f"job {job.job_id!r} needs {size} slot(s) "
                f"(nprocs={job.nprocs}) but the pool only has "
                f"{self.total_slots}; enlarge --slots or shrink the job")
        run = 0
        for idx in range(self.total_slots):
            run = run + 1 if idx not in self._occupancy else 0
            if run == size:
                return Placement(job.job_id, idx - size + 1, size)
        return None

    def occupy(self, placement: Placement) -> None:
        """Install a placement, validating bounds and overlap."""
        if placement.job_id in self._placements:
            raise FleetError(
                f"job {placement.job_id!r} is already placed at slots "
                f"{list(self._placements[placement.job_id].slots)}")
        if placement.start < 0 or \
                placement.start + placement.size > self.total_slots:
            raise FleetError(
                f"placement of {placement.job_id!r} at "
                f"[{placement.start}, {placement.start + placement.size}) "
                f"is out of bounds for a {self.total_slots}-slot pool")
        taken = [idx for idx in placement.slots if idx in self._occupancy]
        if taken:
            holders = sorted({self._occupancy[idx] for idx in taken})
            raise FleetError(
                f"placement of {placement.job_id!r} overlaps slot(s) "
                f"{taken} held by {holders}")
        for idx in placement.slots:
            self._occupancy[idx] = placement.job_id
        self._placements[placement.job_id] = placement

    def place(self, job: JobSpec) -> Optional[Placement]:
        """Fit + occupy in one step (the supervisor's scheduling call)."""
        placement = self.fit(job)
        if placement is not None:
            self.occupy(placement)
        return placement

    def release(self, job_id: str) -> None:
        """Free a job's slots; releasing an unplaced job is an error
        (it would mask double-release bugs in the supervisor)."""
        placement = self._placements.pop(job_id, None)
        if placement is None:
            raise FleetError(f"job {job_id!r} holds no placement")
        for idx in placement.slots:
            del self._occupancy[idx]

    def validate(self) -> None:
        """Invariant check (used by tests and after recovery): occupancy
        and placements must describe the same, overlap-free picture."""
        seen: Dict[int, str] = {}
        for jid, placement in self._placements.items():
            if jid != placement.job_id:
                raise FleetError(f"placement key {jid!r} names "
                                 f"{placement.job_id!r}")
            for idx in placement.slots:
                if idx in seen:
                    raise FleetError(
                        f"slot {idx} claimed by both {seen[idx]!r} "
                        f"and {jid!r}")
                seen[idx] = jid
        if seen != self._occupancy:
            raise FleetError("occupancy map disagrees with placements")
