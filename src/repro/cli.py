"""Command-line interface.

Usage (``python -m repro.cli <command> ...``)::

    apps                         list the bundled applications
    run APP [options]            run one application and report races
    report [--write PATH]        regenerate every table and figure
    attribute APP [options]      two-run §6.1 racy-access attribution
    table2                       static instrumentation statistics
    disasm APP [--instrumented]  mini-ISA listing of an app kernel binary
    fleet serve|submit|status|drain
                                 supervised multi-run detection service

Exit codes (see :mod:`repro.exitcodes`): 0 clean, 1 races found,
2 configuration error, 3 runtime failure/degraded, 4 deadline exceeded.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps.base import measure
from repro.apps.registry import APPLICATIONS, EXTRAS, get_app


def _add_run_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("app", choices=sorted(APPLICATIONS) + sorted(EXTRAS))
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--protocol", choices=["sw", "mw"], default="sw")
    p.add_argument("--policy", choices=["round_robin", "random"],
                   default="round_robin")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--first-races-only", action="store_true")
    p.add_argument("--paper-input", action="store_true",
                   help="use the paper's Table 1 input set (slow)")
    p.add_argument("--reference-detector", action="store_true",
                   help="run the paper's literal O(i²p²) detection "
                        "algorithm instead of the fast path (identical "
                        "output, slower wall-clock; see docs/performance.md)")
    p.add_argument("--reference-access-path", action="store_true",
                   help="run the paper's literal one-analysis-call-per-"
                        "word access instrumentation instead of the "
                        "batched Env engine (identical output, slower "
                        "wall-clock; see docs/performance.md)")
    p.add_argument("--loss-rate", type=float, default=0.0,
                   help="per-datagram drop probability of the simulated "
                        "network (default 0: reliable, byte-identical to "
                        "builds without the robustness layer)")
    p.add_argument("--duplicate-rate", type=float, default=0.0,
                   help="per-datagram duplication probability")
    p.add_argument("--reorder-rate", type=float, default=0.0,
                   help="per-datagram reordering (late delivery) probability")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the deterministic fault schedule; the "
                        "same seed reproduces the same drops on the same "
                        "datagrams (see docs/robustness.md)")
    p.add_argument("--retry-budget", type=int, default=8,
                   help="total transmission attempts per fragment before "
                        "the reliable channel gives up (default 8)")
    p.add_argument("--crash-rate", type=float, default=0.0,
                   help="per-event node-crash probability, evaluated at "
                        "shared accesses, message sends and barrier "
                        "arrivals (default 0: no crashes, byte-identical "
                        "to builds without the crash-tolerance layer)")
    p.add_argument("--crash-seed", type=int, default=0,
                   help="seed of the deterministic crash schedule; "
                        "independent of --seed and --fault-seed "
                        "(see docs/robustness.md)")
    p.add_argument("--crash-at", action="append", default=[],
                   metavar="PID:GEN",
                   help="crash process PID at its arrival to barrier "
                        "generation GEN (repeatable; targeting P0, the "
                        "initial master, requires --master-failover)")
    p.add_argument("--master-failover", action="store_true",
                   help="allow the barrier master (the coordinator running "
                        "the race detector) to crash: the surviving "
                        "processes elect the lowest live pid, migrate the "
                        "journaled detection state to it, and re-solicit "
                        "the in-flight epoch metadata; off (default), the "
                        "master is pinned to P0 and immune to crashes, "
                        "byte-identical to builds without the coordinator "
                        "subsystem")
    p.add_argument("--election-timeout", type=float, default=None,
                   metavar="CYCLES",
                   help="virtual-time silence past the last live arrival "
                        "before the survivors hold the coordinator "
                        "election (default: the crash-detection timeout)")
    p.add_argument("--sharded-detection", action="store_true",
                   help="distribute each epoch's pair search across the "
                        "live processes: shard owners run the pruned "
                        "search for their interval-pair blocks on their "
                        "own clocks and the reports tree-reduce back to "
                        "the coordinator — byte-identical races, smaller "
                        "serialized detection share at the coordinator "
                        "(see docs/performance.md)")
    p.add_argument("--detection-shards", type=int, default=0, metavar="N",
                   help="cap the number of shard owners per epoch "
                        "(requires --sharded-detection; 0 = every live "
                        "process, 1 = coordinator-local)")
    p.add_argument("--coarse-filter", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="two-level detection filter (default on): "
                        "piggy-back coarse granule digests on the notice "
                        "lists so the detection engine proves most "
                        "page-overlapping pairs race-free without the "
                        "bitmap-fetch round; race reports are "
                        "byte-identical either way — --no-coarse-filter "
                        "restores the paper's unfiltered pipeline "
                        "(see docs/performance.md)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="take barrier-consistent per-node checkpoints and "
                        "persist them under DIR; a crashed node then "
                        "recovers with its detection metadata intact, so "
                        "race reports match the crash-free run exactly")
    p.add_argument("--checkpoint-delta", action="store_true",
                   help="delta-encode each checkpoint against the node's "
                        "previous generation (implies checkpointing): only "
                        "changed pages/intervals are written, shrinking "
                        "checkpoint bytes and their priced write cost; "
                        "recovery is byte-identical to full snapshots")
    p.add_argument("--resume-from", default=None, metavar="DIR",
                   help="resume from a checkpoint directory written by a "
                        "previous --checkpoint-dir run with the same "
                        "configuration; reproduces the uninterrupted run's "
                        "race report byte-identically")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="also write the race report (one sorted line per "
                        "race) to PATH — lets CI diff reports across "
                        "fault seeds, loss rates and crash seeds "
                        "(unverifiable crash-degradation entries go to "
                        "stdout only, keeping the file comparable)")
    p.add_argument("--mode", choices=["online", "record", "detect-offline"],
                   default="online",
                   help="two-phase pipeline: 'record' runs with detection "
                        "off and logs only the synchronization order "
                        "(lock grants, barrier arrivals, sync-message "
                        "deliveries) to --trace-file; 'detect-offline' "
                        "re-executes steered by that trace with the full "
                        "detector on, reproducing the monolithic 'online' "
                        "run's report byte-identically (see "
                        "docs/performance.md); refuses to compose with "
                        "--crash-rate/--crash-at/--resume-from")
    p.add_argument("--trace-file", default=None, metavar="PATH",
                   help="hash-framed synchronization-order trace written "
                        "by --mode record and consumed by --mode "
                        "detect-offline (required by both)")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock budget for the run; past it the "
                        "scheduler aborts cleanly with DeadlineExceeded "
                        "(exit code 4) instead of running away")


def _fault_overrides(args) -> dict:
    """DsmConfig overrides carrying the CLI's fault- and crash-injection
    flags."""
    from repro.sim.crash import DEFAULT_ELECTION_TIMEOUT, parse_crash_at
    election = getattr(args, "election_timeout", None)
    return dict(loss_rate=args.loss_rate,
                master_failover=getattr(args, "master_failover", False),
                election_timeout=(election if election is not None
                                  else DEFAULT_ELECTION_TIMEOUT),
                duplicate_rate=args.duplicate_rate,
                reorder_rate=args.reorder_rate,
                fault_seed=args.fault_seed,
                retry_budget=args.retry_budget,
                crash_rate=args.crash_rate,
                crash_seed=args.crash_seed,
                crash_at=parse_crash_at(args.crash_at),
                sharded_detection=getattr(args, "sharded_detection", False),
                detection_shards=getattr(args, "detection_shards", 0),
                coarse_filter=getattr(args, "coarse_filter", True),
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_delta=getattr(args, "checkpoint_delta", False),
                resume_from=getattr(args, "resume_from", None),
                mode=getattr(args, "mode", "online"),
                trace_file=getattr(args, "trace_file", None),
                deadline_seconds=getattr(args, "deadline", None),
                access_fast_path=not getattr(
                    args, "reference_access_path", False))


def cmd_apps(_args) -> int:
    for name, spec in {**APPLICATIONS, **EXTRAS}.items():
        print(f"{name:12s} sync={spec.synchronization:14s} "
              f"input={spec.input_description:20s} "
              f"races expected: {'yes' if spec.expect_races else 'no'}")
    return 0


def cmd_run(args) -> int:
    spec = get_app(args.app)
    params = spec.paper_params if args.paper_input else spec.default_params
    nprocs = 3 if args.app == "queue_racy" else args.procs
    if args.resume_from or args.mode != "online":
        # A resumed run must match the original checkpointed run exactly,
        # so only the detection-on run is performed (measure()'s
        # uninstrumented baseline would diverge from the snapshots).
        # The two-phase modes are likewise single runs: record forces
        # detection off and logs the synchronization order; detect-offline
        # replays the trace with detection on.
        res = spec.run(nprocs=nprocs, params=params,
                       protocol=args.protocol, policy=args.policy,
                       seed=args.seed,
                       first_races_only=args.first_races_only,
                       detector_fast_path=not args.reference_detector,
                       **_fault_overrides(args))
        result = None
    else:
        result = measure(spec, nprocs=nprocs, params=params,
                         protocol=args.protocol, policy=args.policy,
                         seed=args.seed,
                         first_races_only=args.first_races_only,
                         detector_fast_path=not args.reference_detector,
                         **_fault_overrides(args))
        res = result.detected
    print(f"{args.app} on {nprocs} simulated processes "
          f"({args.protocol} protocol, {args.policy} seed {args.seed})")
    if result is not None:
        print(f"  runtime: {res.runtime_seconds * 1e3:.2f} virtual ms, "
              f"slowdown {result.slowdown:.2f}x")
    elif args.mode == "record":
        print(f"  runtime: {res.runtime_seconds * 1e3:.2f} virtual ms "
              f"(recording to {args.trace_file})")
    elif args.mode == "detect-offline":
        print(f"  runtime: {res.runtime_seconds * 1e3:.2f} virtual ms "
              f"(replaying {args.trace_file})")
    else:
        print(f"  runtime: {res.runtime_seconds * 1e3:.2f} virtual ms "
              f"(resumed from {args.resume_from})")
    print(f"  memory: {res.memory_kbytes:.1f} KB shared, "
          f"{res.barriers_completed} barriers, "
          f"{res.lock_acquires} lock acquires, "
          f"{res.intervals_per_barrier:.1f} intervals/barrier")
    st = res.detector_stats
    if st is not None:
        print(f"  detector: {st.interval_comparisons} comparisons, "
              f"{st.concurrent_pairs} concurrent pairs, "
              f"{st.bitmaps_fetched}/{st.bitmaps_created} bitmaps fetched")
        if res.config.coarse_filter:
            print(f"  filter: {st.pairs_filtered}/{st.granule_checks} "
                  f"combination(s) proven race-free by digest, "
                  f"{st.granule_hits} granule hit(s) fetched, "
                  f"{res.traffic.digest_bytes} digest bytes carried")
    rs = res.record_stats
    if rs is not None and args.mode == "record":
        print(f"  record: {rs['entries_recorded']} sync entries "
              f"({rs['lock_grants']} lock grants, "
              f"{rs['barrier_arrivals']} barrier arrivals, "
              f"{rs['deliveries']} message deliveries), "
              f"{rs['trace_bytes']} trace bytes")
    elif rs is not None:
        print(f"  replay: {rs['grants_replayed']} lock grants steered, "
              f"{rs['arrivals_verified']} barrier arrivals and "
              f"{rs['deliveries_verified']} deliveries verified "
              f"against the trace")
    if res.config.faults_enabled:
        fs = res.traffic.fault_summary()
        print(f"  network: {fs['drops']} drops, {fs['retransmits']} "
              f"retransmits, {fs['duplicates']} duplicates suppressed, "
              f"{fs['reorders']} reorders, {fs['retry_failures']} "
              f"retry failures")
        if st is not None and st.page_granularity_reports:
            print(f"  degradation: {st.page_granularity_reports} "
                  f"page-granularity report(s) after "
                  f"{st.bitmap_rounds_failed} failed bitmap round(s)")
    cs = res.crash_stats
    if res.config.crashes_enabled:
        print(f"  crashes: {cs.crashes} injected "
              f"({cs.deaths_declared} declared dead by the master), "
              f"{cs.recoveries_from_checkpoint} checkpoint recoveries, "
              f"{cs.recoveries_without_checkpoint} restart recoveries, "
              f"{cs.intervals_lost} interval(s) lost")
    if res.config.checkpointing_enabled:
        print(f"  checkpoints: {cs.checkpoints_written} written, "
              f"{cs.checkpoint_bytes} bytes"
              + (f" -> {res.config.checkpoint_dir}"
                 if res.config.checkpoint_dir else ""))
    if res.config.sharded_detection:
        sh = res.sharding_stats
        print(f"  sharding: {sh.epochs_sharded}/"
              f"{sh.epochs_sharded + sh.epochs_centralized} epoch(s) "
              f"sharded, {sh.shards_dispatched} shard(s), "
              f"{sh.records_shipped} record(s) shipped, "
              f"{sh.bytes_scattered + sh.bytes_reduced} "
              f"scatter/reduce bytes, "
              f"{sh.bitmap_fetch_messages} bitmap fetch(es) "
              f"({sh.bitmap_fetch_bytes} bytes), "
              f"{sh.fallbacks_owner_crash + sh.fallbacks_network} "
              f"fallback(s)")
    if res.config.master_failover:
        fo = res.failover_stats
        print(f"  failover: {fo.elections_held} election(s), "
              f"{fo.state_bytes_migrated} state bytes migrated, "
              f"{fo.records_resolicited} record(s) re-solicited, "
              f"{fo.state_checkpoints} journal write(s) "
              f"({fo.state_checkpoint_bytes} bytes)")
    if res.unverifiable and st is not None:
        print(f"\n{len(res.unverifiable)} unverifiable concurrent "
              f"pair entr(ies) — crash-lost metadata "
              f"({st.unverifiable_pairs} distinct pair(s)):")
        for entry in res.unverifiable:
            print(f"  {entry}")
    if res.races:
        print(f"\n{len(res.races)} data race(s):")
        for race in res.races:
            print(f"  {race}")
    elif args.mode == "record":
        print("\ndetection deferred (record mode): replay the trace with "
              "--mode detect-offline to get the race report")
    else:
        print("\nno data races detected")
    if args.report:
        from repro.harness.format import race_report_lines
        with open(args.report, "w") as fh:
            for line in race_report_lines(res):
                fh.write(line + "\n")
    from repro.exitcodes import EXIT_CLEAN, EXIT_RACES
    return EXIT_RACES if res.races else EXIT_CLEAN


def cmd_report(args) -> int:
    from repro.harness.experiments import main as harness_main
    argv = ["--write", args.write] if args.write else []
    return harness_main(argv)


def cmd_attribute(args) -> int:
    from repro.errors import ConfigError
    from repro.replay import attribute_races
    if getattr(args, "mode", "online") != "online":
        raise ConfigError(
            f"attribute runs its own two-run record/replay protocol and "
            f"cannot compose with --mode {args.mode}; drop --mode/--trace-file")
    spec = get_app(args.app)
    cfg = spec.config(nprocs=args.procs, protocol=args.protocol,
                      policy=args.policy, seed=args.seed,
                      detector_fast_path=not args.reference_detector,
                      **_fault_overrides(args))
    report = attribute_races(spec.func, spec.default_params, cfg)
    if not report.races:
        print("no races to attribute")
        return 0
    print(f"{len(report.races)} races; synchronization log "
          f"{report.log_bytes} bytes; {report.replay_grants} grants "
          "replayed.  Sites per racy variable:")
    by_symbol = {}
    for addr, hits in report.sites.items():
        symbol = report.symbol_of[addr].split("+")[0]
        by_symbol.setdefault(symbol, set()).update(h.site for h in hits)
    for symbol in sorted(by_symbol):
        print(f"  {symbol}:")
        for site in sorted(by_symbol[symbol]):
            print(f"    {site}")
    return 0


def cmd_timeline(args) -> int:
    from repro.core.timeline import timeline_from_run
    from repro.dsm.cvm import CVM
    from repro.errors import ConfigError
    if getattr(args, "mode", "online") != "online":
        raise ConfigError(
            f"timeline needs the detector's interval metadata and cannot "
            f"compose with --mode {args.mode}; drop --mode/--trace-file")
    spec = get_app(args.app)
    nprocs = 3 if args.app == "queue_racy" else args.procs
    cfg = spec.config(nprocs=nprocs, protocol=args.protocol,
                      policy=args.policy, seed=args.seed,
                      track_access_trace=True,
                      detector_fast_path=not args.reference_detector,
                      **_fault_overrides(args))
    system = CVM(cfg)
    result = system.run(spec.func, spec.default_params)
    print(timeline_from_run(system, result))
    if result.races:
        print(f"\n{len(result.races)} race(s); '!' marks intervals "
              "touching a racy word")
    return 0


def cmd_table2(_args) -> int:
    from repro.harness.table2 import compute_table2, render_table2
    print(render_table2(compute_table2()))
    return 0


#: Kernel-language applications (docs/language.md): disassembled from
#: their DSL sources rather than the scalar-kernel builders.
_DSL_DISASM = ("wsdeque", "bfs", "hashtab")


def cmd_disasm(args) -> int:
    from repro.instrument.asm import disassemble
    from repro.instrument.atom import AtomRewriter
    from repro.instrument.binaries import binary_for
    from repro.instrument.isa import Section
    if args.app in _DSL_DISASM:
        import importlib

        from repro.instrument.linker import link
        from repro.instrument.parser import compile_source
        mod = importlib.import_module(f"repro.apps.{args.app}")
        obj = compile_source(mod.SOURCE, args.app, regalloc=args.regalloc)
        image = link(args.app, [obj], libraries=[], include_cvm=False,
                     strict=True)
    else:
        image = binary_for(args.app, regalloc=args.regalloc)
    if args.instrumented:
        image = AtomRewriter().instrument(image)
        if args.batched:
            from repro.instrument.batch import coalesce_analysis_calls
            image, report = coalesce_analysis_calls(image)
            print(f"; batched: {report.calls_before} analysis calls -> "
                  f"{report.calls_after} ({report.ranged_calls} ranged, "
                  f"{report.words_batched} words)")
            print()
    if not args.full:
        # Application code only (libraries are synthetic filler).
        for name in sorted(image.functions):
            fn = image.functions[name]
            if fn.section is Section.APP:
                from repro.instrument.asm import disassemble_function
                print(disassemble_function(fn))
                print()
    else:
        print(disassemble(image))
    return 0


def _parse_seeds(text: str) -> List[int]:
    """``A:B`` (half-open range) or ``A,B,C`` seed sweep for submit."""
    from repro.errors import ConfigError
    try:
        if ":" in text:
            lo, hi = (int(part) for part in text.split(":", 1))
            if hi <= lo:
                raise ValueError
            return list(range(lo, hi))
        return [int(part) for part in text.split(",")]
    except ValueError:
        raise ConfigError(
            f"--seeds {text!r} is neither a half-open range A:B nor a "
            f"comma list A,B,C")


def _parse_overrides(items: List[str]) -> dict:
    """``--set key=value`` pairs; values parse as JSON, falling back to
    bare strings (so ``--set loss_rate=0.05`` and ``--set
    trace_file=/tmp/t.log`` both work)."""
    import json
    from repro.errors import ConfigError
    overrides = {}
    for item in items:
        key, sep, value = item.partition("=")
        if not sep:
            raise ConfigError(f"--set {item!r} is not key=value")
        try:
            overrides[key] = json.loads(value)
        except json.JSONDecodeError:
            overrides[key] = value
    return overrides


def cmd_fleet_submit(args) -> int:
    from repro.fleet import FleetSpool, JobSpec
    spool = FleetSpool(args.spool)
    overrides = _parse_overrides(args.set)
    if args.trace_file:
        overrides["trace_file"] = args.trace_file
    chaos = {}
    if args.chaos_exit_code is not None:
        chaos["exit_code"] = args.chaos_exit_code
    if args.chaos_hang:
        chaos["hang"] = True
    nprocs = 3 if args.app == "queue_racy" else args.procs
    seeds = _parse_seeds(args.seeds) if args.seeds else [args.seed]
    for seed in seeds:
        job_id = spool.next_job_id()
        job_overrides = dict(overrides)
        if args.checkpoint:
            # Scoped per job: two fleet jobs never share a checkpoint
            # directory (the CheckpointManager lock would refuse it).
            job_overrides["checkpoint_dir"] = \
                spool.checkpoint_dir_for(job_id)
        spec = JobSpec(
            job_id=job_id, app=args.app, mode=args.mode, nprocs=nprocs,
            seed=seed, overrides=job_overrides,
            deadline_seconds=args.deadline,
            max_retries=args.max_retries, max_crashes=args.max_crashes,
            chaos=chaos)
        spool.submit(spec, limit=args.queue_limit)
        print(f"submitted {job_id}: {spec.app}/{spec.mode} seed={seed} "
              f"nprocs={nprocs} (priority class {spec.priority})")
    return 0


def cmd_fleet_serve(args) -> int:
    from repro.fleet import FleetService
    service = FleetService(
        args.spool, slots=args.slots, queue_limit=args.queue_limit,
        poll_interval=args.poll_interval,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout,
        deadline_grace=args.deadline_grace,
        backoff_base=args.backoff_base, backoff_cap=args.backoff_cap,
        drain_on_empty=args.drain_on_empty,
        chaos_kill_worker=args.chaos_kill_worker,
        chaos_kill_after=args.chaos_kill_after)
    return service.serve(resume=args.resume)


def cmd_fleet_status(args) -> int:
    from repro.fleet import FleetSpool, status_text
    print(status_text(FleetSpool(args.spool)), end="")
    return 0


def cmd_fleet_drain(args) -> int:
    from repro.fleet import FleetSpool
    spool = FleetSpool(args.spool)
    spool.ensure()
    with open(spool.drain_path, "w", encoding="utf-8"):
        pass
    print(f"drain requested: {spool.drain_path} (the service stops "
          f"admission, finishes in-flight jobs, writes the aggregate "
          f"and exits)")
    return 0


def _add_fleet_options(sub) -> None:
    def spool_arg(p):
        p.add_argument("--spool", required=True, metavar="DIR",
                       help="fleet spool directory (queue, journal, "
                            "results, aggregate)")

    p_serve = sub.add_parser(
        "serve", help="run the supervised detection service")
    spool_arg(p_serve)
    p_serve.add_argument("--slots", type=int, default=4,
                         help="worker-pool size in slots; a job costs "
                              "ceil(nprocs/8) slots (default 4)")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="admission bound of the in-memory queue")
    p_serve.add_argument("--resume", action="store_true",
                         help="recover queue/in-flight/results state "
                              "from the spool journal after the service "
                              "was killed")
    p_serve.add_argument("--drain-on-empty", action="store_true",
                         help="exit (with the aggregate) once every "
                              "submitted job is terminal and the spool "
                              "is empty — batch mode")
    p_serve.add_argument("--poll-interval", type=float, default=0.05)
    p_serve.add_argument("--heartbeat-interval", type=float, default=0.2)
    p_serve.add_argument("--heartbeat-timeout", type=float, default=5.0,
                         help="silence past which a worker is declared "
                              "hung and SIGKILLed")
    p_serve.add_argument("--deadline-grace", type=float, default=2.0,
                         help="extra seconds past a job's --deadline "
                              "before the supervisor kills the worker "
                              "(the in-run guard should fire first)")
    p_serve.add_argument("--backoff-base", type=float, default=0.1)
    p_serve.add_argument("--backoff-cap", type=float, default=2.0)
    p_serve.add_argument("--chaos-kill-worker", type=int, default=0,
                         metavar="N",
                         help="fault injection: SIGKILL the Nth started "
                              "worker once, mid-job (tests/CI)")
    p_serve.add_argument("--chaos-kill-after", type=float, default=0.15)
    p_serve.set_defaults(func=cmd_fleet_serve)

    p_sub = sub.add_parser("submit", help="spool a detection job")
    spool_arg(p_sub)
    p_sub.add_argument("app")
    p_sub.add_argument("--mode",
                       choices=["online", "record", "detect-offline"],
                       default="online",
                       help="also the priority class: record < "
                            "detect-offline < online")
    p_sub.add_argument("--procs", type=int, default=4)
    p_sub.add_argument("--seed", type=int, default=0)
    p_sub.add_argument("--seeds", default=None, metavar="A:B|A,B,C",
                       help="submit one job per seed (sweep); the "
                            "aggregate dedups races across them")
    p_sub.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS")
    p_sub.add_argument("--max-retries", type=int, default=2)
    p_sub.add_argument("--max-crashes", type=int, default=2)
    p_sub.add_argument("--trace-file", default=None, metavar="PATH")
    p_sub.add_argument("--checkpoint", action="store_true",
                       help="checkpoint under the spool's per-job scope "
                            "(ckpt/<job-id>)")
    p_sub.add_argument("--set", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="extra DsmConfig override (repeatable), "
                            "e.g. --set loss_rate=0.05")
    p_sub.add_argument("--chaos-exit-code", type=int, default=None,
                       help="fault injection: worker exits with this "
                            "code instead of running (tests/CI)")
    p_sub.add_argument("--chaos-hang", action="store_true",
                       help="fault injection: worker hangs silently "
                            "(tests/CI)")
    p_sub.add_argument("--queue-limit", type=int, default=64,
                       help="spool-side admission bound; past it submit "
                            "refuses with an AdmissionError (exit 3)")
    p_sub.set_defaults(func=cmd_fleet_submit)

    p_stat = sub.add_parser("status", help="show fleet state from the "
                                           "journal (no service needed)")
    spool_arg(p_stat)
    p_stat.set_defaults(func=cmd_fleet_status)

    p_drain = sub.add_parser("drain",
                             help="ask the service to drain and exit")
    spool_arg(p_drain)
    p_drain.set_defaults(func=cmd_fleet_drain)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps").set_defaults(func=cmd_apps)

    p_run = sub.add_parser("run", help="run an application")
    _add_run_options(p_run)
    p_run.set_defaults(func=cmd_run)

    p_rep = sub.add_parser("report", help="regenerate tables and figures")
    p_rep.add_argument("--write", default=None, metavar="PATH")
    p_rep.set_defaults(func=cmd_report)

    p_att = sub.add_parser("attribute",
                           help="two-run racy-access attribution (§6.1)")
    _add_run_options(p_att)
    p_att.set_defaults(func=cmd_attribute)

    sub.add_parser("table2").set_defaults(func=cmd_table2)

    p_tl = sub.add_parser("timeline",
                          help="interval/happens-before timeline of a run")
    _add_run_options(p_tl)
    p_tl.set_defaults(func=cmd_timeline)

    p_dis = sub.add_parser("disasm", help="disassemble a kernel binary")
    p_dis.add_argument("app", choices=["fft", "sor", "tsp", "water", "lu",
                                       "wsdeque", "bfs", "hashtab"])
    p_dis.add_argument("--regalloc", choices=["naive", "linear"],
                       default="naive",
                       help="register allocator (default: naive, the "
                            "codegen the committed tables are pinned to)")
    p_dis.add_argument("--instrumented", action="store_true")
    p_dis.add_argument("--batched", action="store_true",
                       help="with --instrumented: coalesce provably "
                            "contiguous analysis calls into ranged calls")
    p_dis.add_argument("--full", action="store_true",
                       help="include synthetic library code")
    p_dis.set_defaults(func=cmd_disasm)

    p_fleet = sub.add_parser(
        "fleet", help="supervised, crash-tolerant multi-run service")
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)
    _add_fleet_options(fleet_sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError
    from repro.exitcodes import EXIT_CONFIG, EXIT_TIMEOUT, classify_exception
    try:
        return args.func(args)
    except (ReproError, ValueError) as exc:
        code = classify_exception(exc)
        label = {EXIT_CONFIG: "configuration error",
                 EXIT_TIMEOUT: "deadline exceeded"}.get(code, "error")
        print(f"repro: {label}: {exc}", file=sys.stderr)
        return code


if __name__ == "__main__":
    sys.exit(main())
