"""Benchmark regenerating Table 1 — Application Characteristics.

Run with ``pytest benchmarks/test_table1.py --benchmark-only -s`` to see
the rendered table.  The timed quantity is one full paired measurement
(unaltered CVM run + race-detecting run) of one application at 8
processors — the unit of work behind every Table 1 row.
"""

from repro.apps.base import measure
from repro.apps.registry import APPLICATIONS
from repro.harness.context import ExperimentContext
from repro.harness.paper_values import PAPER_TABLE1
from repro.harness.table1 import compute_table1, render_table1

from benchmarks.bench_common import measured


def test_table1_rows_and_shape(benchmark):
    result = benchmark.pedantic(
        lambda: measure(APPLICATIONS["sor"], nprocs=8),
        rounds=1, iterations=1)
    assert result.slowdown > 1

    ctx = ExperimentContext()
    # Reuse memoized pairs for the other rows.
    for app in APPLICATIONS:
        ctx._cache[(app, 8)] = measured(app, 8)
    rows = compute_table1(ctx)
    print()
    print(render_table1(rows))

    by_app = {r.app: r for r in rows}
    # Paper-shape assertions.
    for app, row in by_app.items():
        paper = PAPER_TABLE1[app]["slowdown_8proc"]
        assert 1.1 < row.slowdown < 3.5, (app, row.slowdown)
        assert abs(row.slowdown - paper) < 1.2, (app, row.slowdown, paper)
    assert by_app["fft"].intervals_per_barrier == 2.0
    assert by_app["sor"].intervals_per_barrier == 2.0
    assert by_app["tsp"].intervals_per_barrier == max(
        r.intervals_per_barrier for r in rows)
    avg = sum(r.slowdown for r in rows) / len(rows)
    assert 1.4 < avg < 2.8  # paper: 2.2
