"""Benchmark regenerating Figure 4 — Slowdown vs. Number of Processors.

Times the 2-processor paired measurement (one point of the sweep), then
renders the full sweep and checks the paper's trend: slowdown does not
grow as processors are added.
"""

from repro.apps.base import measure
from repro.apps.registry import APPLICATIONS
from repro.harness.context import ExperimentContext
from repro.harness.figure4 import compute_figure4, render_figure4

from benchmarks.bench_common import SWEEP, measured


def test_figure4_sweep_and_trend(benchmark):
    point = benchmark.pedantic(
        lambda: measure(APPLICATIONS["fft"], nprocs=2),
        rounds=1, iterations=1)
    assert point.slowdown > 1

    ctx = ExperimentContext()
    for app in ctx.app_names:
        for nprocs in SWEEP:
            ctx._cache[(app, nprocs)] = measured(app, nprocs)
    rows = compute_figure4(ctx, SWEEP)
    print()
    print(render_figure4(rows))

    for r in rows:
        # The paper's Figure 4: slowdown decreases with processor count.
        assert r.decreasing_overall(), (r.app, r.slowdowns)
        # Overhead exists at every point.
        assert all(s > 1.0 for s in r.slowdowns.values())
