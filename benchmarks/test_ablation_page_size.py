"""Ablation (§6.2): page-size sensitivity of the single-writer protocol.

The paper notes its DECstations' large pages "exacerbate the problems of
false sharing associated with single-writer protocols".  This bench sweeps
the page size for Water and shows the mechanism: bigger pages put more
unrelated data on each page, so more concurrent intervals overlap at page
granularity (higher "Intervals Used"), more bitmaps must be fetched to
prove the sharing false, and the protocol moves more page data — while the
set of *actual races* found is identical at every page size (word-level
bitmaps make the verdict granularity-independent).
"""

from repro.apps.registry import APPLICATIONS
from repro.apps.water import WaterParams
from repro.dsm.cvm import CVM

PAGE_SIZES = (16, 64, 256)


def run(page_size: int):
    spec = APPLICATIONS["water"]
    cfg = spec.config(nprocs=4, page_size_words=page_size,
                      segment_words=1 << 16)
    return CVM(cfg).run(spec.func, WaterParams(nmol=24, steps=2))


def test_page_size_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: {ps: run(ps) for ps in PAGE_SIZES}, rounds=1, iterations=1)

    print("\n§6.2 page-size ablation (Water, 4 procs):")
    print(f"{'page':>6s} {'intervals used':>15s} {'bitmaps fetched':>16s} "
          f"{'page bytes moved':>17s} {'races':>6s}")
    races_by_size = {}
    for ps in PAGE_SIZES:
        res = results[ps]
        st = res.detector_stats
        page_bytes = res.traffic.bytes_by_tag.get("page_reply", 0)
        # Compare by variable + interval pair: absolute addresses shift
        # with the page size (alignment padding moves allocations).
        races_by_size[ps] = {
            (r.kind, r.symbol.split("+")[0],
             tuple(sorted([(r.a.pid, r.a.index, r.a.access),
                           (r.b.pid, r.b.index, r.b.access)])))
            for r in res.races}
        print(f"{ps:6d} {st.intervals_used_fraction:15.1%} "
              f"{st.bitmaps_fetched:16d} {page_bytes:17,d} "
              f"{len(res.races):6d}")

    small, big = results[PAGE_SIZES[0]], results[PAGE_SIZES[-1]]
    # Bigger pages -> more page-granularity overlap and more data motion.
    assert big.detector_stats.intervals_used_fraction >= \
        small.detector_stats.intervals_used_fraction
    assert big.traffic.bytes_by_tag.get("page_reply", 0) > \
        small.traffic.bytes_by_tag.get("page_reply", 0)
    # The actual races are identical at every page size: word bitmaps
    # decide, not pages.
    assert races_by_size[16] == races_by_size[64] == races_by_size[256]
