"""Microbenchmarks of the detector's hot primitives.

These are the operations whose constant-time/linear-time behaviour the
paper leans on: vector-timestamp concurrency checks (two integer
compares), word-bitmap intersection (constant in page size), and the
concurrent-pair search over an epoch's intervals.
"""

import random

from repro.core.bitmap import Bitmap
from repro.core.concurrency import PairSearchStats, find_concurrent_pairs
from repro.dsm.interval import Interval
from repro.dsm.vector_clock import VectorClock, concurrent


def test_vc_concurrency_check(benchmark):
    va = VectorClock([5, 0, 3, 1, 0, 2, 0, 4])
    vb = VectorClock([2, 7, 3, 0, 1, 2, 5, 0])
    result = benchmark(lambda: concurrent(0, 5, va, 1, 7, vb))
    assert result is True


def test_bitmap_intersection_page(benchmark):
    rng = random.Random(0)
    a, b = Bitmap(1024), Bitmap(1024)
    for _ in range(200):
        a.set(rng.randrange(1024))
        b.set(rng.randrange(1024))
    bits = benchmark(lambda: a.intersection_bits(b))
    assert isinstance(bits, list)


def test_bitmap_set_range(benchmark):
    def work():
        bm = Bitmap(1024)
        bm.set_range(13, 900)
        return bm

    bm = benchmark(work)
    assert bm.count() == 900


def test_pair_search_epoch(benchmark):
    """An epoch the size of a TSP barrier interval population."""
    rng = random.Random(42)
    intervals = []
    nprocs, per_proc = 8, 20
    for pid in range(nprocs):
        seen = [0] * nprocs
        for idx in range(1, per_proc + 1):
            seen[pid] = idx
            # Randomly observe other processes' progress (lock traffic).
            for q in range(nprocs):
                if q != pid and rng.random() < 0.3:
                    seen[q] = min(per_proc, seen[q] + rng.randrange(3))
            rec = Interval(pid, idx, VectorClock(seen), 0, 64)
            rec.record_write(rng.randrange(32), rng.randrange(64))
            rec.record_read(rng.randrange(32), rng.randrange(64))
            intervals.append(rec)

    def search():
        stats = PairSearchStats()
        return sum(1 for _ in find_concurrent_pairs(intervals, stats)), stats

    count, stats = benchmark(search)
    assert stats.comparisons == (nprocs * (nprocs - 1) // 2) * per_proc ** 2
    assert 0 < count <= stats.comparisons


def test_pair_search_pruned_epoch(benchmark):
    """The ordering-bypass variant on the same epoch population: same
    pairs, far fewer comparisons (the paper's 'many of the comparisons
    can be bypassed')."""
    from repro.core.concurrency import find_concurrent_pairs_pruned

    rng = random.Random(42)
    intervals = []
    nprocs, per_proc = 8, 20
    seen = [[0] * nprocs for _ in range(nprocs)]
    for idx in range(1, per_proc + 1):
        for pid in range(nprocs):
            if rng.random() < 0.3:
                other = rng.randrange(nprocs)
                for r in range(nprocs):
                    seen[pid][r] = max(seen[pid][r], seen[other][r])
            seen[pid][pid] = idx
            rec = Interval(pid, idx, VectorClock(seen[pid]), 0, 64)
            rec.record_write(rng.randrange(32), rng.randrange(64))
            intervals.append(rec)

    def search():
        stats = PairSearchStats()
        count = sum(1 for _ in find_concurrent_pairs_pruned(intervals, stats))
        return count, stats

    count, stats = benchmark(search)
    naive = PairSearchStats()
    naive_count = sum(1 for _ in find_concurrent_pairs(intervals, naive))
    assert count == naive_count
    assert stats.comparisons < naive.comparisons
