"""Ablation: the two-level detection filter vs. the unfiltered pipeline.

The paper's detector decides every page-overlapping concurrent pair by
fetching word bitmaps in the extra barrier round (§4, step 4).  The
two-level filter (``--coarse-filter``) piggy-backs coarse granule
digests on the notice records instead, so most pairs are proven
race-free from data already in hand and never enter the fetch round.
This bench runs every registered application with the filter off and on
at 16 processes: race reports must be byte-identical (the filter only
skips provably-empty comparisons), and the bitmap-fetch traffic must
shrink wherever the unfiltered pipeline fetched anything at all.
"""

import pytest

from repro.apps.registry import APPLICATIONS

NPROCS = 16


def run_pair(app: str):
    spec = APPLICATIONS[app]
    off = spec.run(nprocs=NPROCS, coarse_filter=False)
    on = spec.run(nprocs=NPROCS, coarse_filter=True)
    return off, on


def test_coarse_filter_equivalence_and_fetch_reduction(benchmark):
    pairs = benchmark.pedantic(
        lambda: {app: run_pair(app) for app in sorted(APPLICATIONS)},
        rounds=1, iterations=1)

    print("\ntwo-level filter ablation (16 procs):")
    print(f"{'app':6s} {'races':>6s} {'fetches off':>12s} {'on':>6s} "
          f"{'bytes off':>10s} {'on':>8s} {'filtered':>9s} {'hits':>6s}")
    any_reduction = False
    for app, (off, on) in pairs.items():
        s_off, s_on = off.detector_stats, on.detector_stats
        b_off = off.traffic.bitmap_round_bytes
        b_on = on.traffic.bitmap_round_bytes
        print(f"{app:6s} {len(off.races):6d} {s_off.bitmaps_fetched:12d} "
              f"{s_on.bitmaps_fetched:6d} {b_off:10d} {b_on:8d} "
              f"{s_on.pairs_filtered:9d} {s_on.granule_hits:6d}")
        # Byte-identical verdicts: the filter may only skip comparisons
        # the digests prove empty.
        assert [str(r) for r in off.races] == [str(r) for r in on.races], app
        assert ([str(e) for e in off.unverifiable]
                == [str(e) for e in on.unverifiable]), app
        # The unfiltered counters agree up to the point the filter acts.
        assert s_on.concurrent_pairs == s_off.concurrent_pairs, app
        assert s_on.overlapping_pairs == s_off.overlapping_pairs, app
        # Whatever still gets fetched is a subset of the unfiltered round.
        assert s_on.bitmaps_fetched <= s_off.bitmaps_fetched, app
        assert b_on <= b_off, app
        if s_off.bitmaps_fetched:
            # The filter must actually cut traffic on fetch-heavy apps.
            assert s_on.bitmaps_fetched < s_off.bitmaps_fetched, app
            assert b_on < b_off, app
            any_reduction = True
        # Filter-off runs never carry digests or count filter work.
        assert off.traffic.digest_bytes == 0, app
        assert s_off.granule_checks == s_off.granule_hits == 0, app
        assert s_off.pairs_filtered == 0, app

    assert any_reduction, "no app exercised the bitmap round at 16 procs"


@pytest.mark.parametrize("app", sorted(APPLICATIONS))
def test_coarse_filter_equivalent_on_sharded_engine(app):
    """The same ablation through the sharded engine: byte-identical
    reports, and the per-owner fetch traffic shrinks at least as much
    (shard owners fetch without cross-owner dedup)."""
    spec = APPLICATIONS[app]
    off = spec.run(nprocs=NPROCS, sharded_detection=True,
                   coarse_filter=False)
    on = spec.run(nprocs=NPROCS, sharded_detection=True, coarse_filter=True)
    assert [str(r) for r in off.races] == [str(r) for r in on.races]
    sh_off, sh_on = off.sharding_stats, on.sharding_stats
    assert sh_on.bitmap_fetch_bytes <= sh_off.bitmap_fetch_bytes
    if sh_off.bitmap_fetch_bytes:
        assert sh_on.bitmap_fetch_bytes < sh_off.bitmap_fetch_bytes
