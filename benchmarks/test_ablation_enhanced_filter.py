"""Ablation (§6.5): better reference tracking vs. the baseline filter.

The paper notes that ~68% of runtime analysis calls turn out to be for
private data, because the static analysis tracks references only locally
and conservatively instruments computed addresses; it expects smarter
analysis to "eliminate many of these 'false' instrumentations".  This
bench runs the provenance-tracking filter side by side with the baseline
addressing-mode filter — statically (Table 2 residue) and dynamically
(analysis calls actually fired by the interpreter on the same input).
"""

import functools

from repro.instrument.atom import AtomRewriter
from repro.instrument.binaries import APP_NAMES, binary_for
from repro.instrument.dataflow import (ProvenanceFilter,
                                       classify_with_provenance,
                                       compare_filters)
from repro.instrument.machine import AnalysisCounter, Machine

MACHINE_ARGS = {"fft": (16,), "sor": (8, 8), "tsp": (5,), "water": (4, 1)}


def dynamic_calls(app: str, enhanced: bool) -> AnalysisCounter:
    image = binary_for(app)
    rewriter = AtomRewriter()
    if enhanced:
        instrumented = rewriter.instrument(
            image, classifier=lambda fn: classify_with_provenance(fn, {}))
    else:
        instrumented = rewriter.instrument(image)
    hook = AnalysisCounter()
    Machine(instrumented, analysis_hook=hook,
            max_steps=2_000_000).run(*MACHINE_ARGS[app])
    return hook


def test_enhanced_filter_static_and_dynamic(benchmark):
    comparison = benchmark.pedantic(
        lambda: {app: compare_filters(binary_for(app)) for app in APP_NAMES},
        rounds=1, iterations=1)

    print("\n§6.5 enhanced-filter ablation:")
    print(f"{'app':6s} {'inst (baseline)':>16s} {'inst (provenance)':>18s} "
          f"{'static cut':>11s} {'dyn calls':>10s} {'dyn cut':>8s}")
    any_dynamic_cut = False
    for app in APP_NAMES:
        cmp_ = comparison[app]
        base_dyn = dynamic_calls(app, enhanced=False)
        enh_dyn = dynamic_calls(app, enhanced=True)
        base_total = base_dyn.shared + base_dyn.private
        enh_total = enh_dyn.shared + enh_dyn.private
        dyn_cut = 1 - enh_total / base_total if base_total else 0.0
        any_dynamic_cut |= enh_total < base_total
        print(f"{app:6s} {cmp_.baseline_instrumented:16d} "
              f"{cmp_.provenance_instrumented:18d} "
              f"{cmp_.reduction:10.0%} {enh_total:10d} {dyn_cut:8.0%}")
        # Soundness: the enhanced filter never removes a *shared* call.
        assert enh_dyn.shared == base_dyn.shared, app
        # And never instruments more.
        assert cmp_.provenance_instrumented <= cmp_.baseline_instrumented

    assert any_dynamic_cut, "provenance filter should cut some private calls"
