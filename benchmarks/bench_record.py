#!/usr/bin/env python
"""Record-mode overhead benchmark (the two-phase pipeline's headline).

For every registered application this measures, in deterministic virtual
time, the cost of the ``--mode record`` run — detection off, logging
only the synchronization order — against an uninstrumented base run and
against full online detection, and re-executes each trace with ``--mode
detect-offline`` to confirm the offline reports are byte-identical to
the monolithic online run.

The comparison point from the literature: Ronsse & De Bosschere's
non-intrusive record/replay (RECPLAY) reports roughly a 2.2x record
slowdown.  Here the trace captures grant/arrival/delivery order already
known to the runtime, so the record run should stay within a few percent
of the base run — the gate (``--max-record-overhead``, default 1.10)
fails the benchmark if any app's record slowdown drifts above it, and
``--min-advantage`` (default 4.0) fails it if online detection's
overhead is not at least that many times the record overhead (both
measured as *added* virtual time over the base run).

Results go to ``BENCH_record.json`` so the repository carries the
record-overhead trajectory across PRs, alongside ``BENCH_endtoend.json``
and ``BENCH_detection.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_record.py           # full
    PYTHONPATH=src python benchmarks/bench_record.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
from typing import List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.apps.registry import APPLICATIONS, EXTRAS, get_app  # noqa: E402

#: RECPLAY's record-phase slowdown (Ronsse & De Bosschere), the
#: literature comparison row carried into the JSON report.
RECPLAY_RECORD_SLOWDOWN = 2.2


def _workloads(quick: bool) -> List[Tuple[str, int]]:
    if quick:
        return [("sor", 8), ("tsp", 8)]
    rows: List[Tuple[str, int]] = []
    for app in sorted(APPLICATIONS) + sorted(EXTRAS):
        if app == "queue_racy":
            rows.append((app, 3))
            continue
        rows.append((app, 8))
        rows.append((app, 16))
    return rows


def _report_lines(res) -> List[str]:
    return sorted(str(r) for r in res.races)


def bench_workload(app: str, nprocs: int, trace_dir: str) -> dict:
    spec = get_app(app)
    trace_path = os.path.join(trace_dir, f"{app}_{nprocs}.trace")

    base = spec.run(nprocs=nprocs, detection=False)
    recorded = spec.run(nprocs=nprocs, mode="record", trace_file=trace_path)
    online = spec.run(nprocs=nprocs)
    replayed = spec.run(nprocs=nprocs, mode="detect-offline",
                        trace_file=trace_path)

    record_slowdown = recorded.runtime_cycles / base.runtime_cycles
    online_slowdown = online.runtime_cycles / base.runtime_cycles
    equivalent = (_report_lines(replayed) == _report_lines(online)
                  and replayed.detector_stats == online.detector_stats)
    rs = recorded.record_stats
    return {
        "app": app,
        "nprocs": nprocs,
        "base_cycles": base.runtime_cycles,
        "record_cycles": recorded.runtime_cycles,
        "online_cycles": online.runtime_cycles,
        "record_slowdown": record_slowdown,
        "online_slowdown": online_slowdown,
        "entries_recorded": rs["entries_recorded"],
        "trace_bytes": rs["trace_bytes"],
        "races": len(online.races),
        "replay_equivalent": equivalent,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="two workloads only (CI smoke)")
    parser.add_argument("--max-record-overhead", type=float, default=1.10,
                        help="maximum allowed record-run slowdown over "
                             "the uninstrumented base (default 1.10)")
    parser.add_argument("--min-advantage", type=float, default=4.0,
                        help="online detection's added overhead must be "
                             "at least this many times the record run's "
                             "(default 4.0)")
    parser.add_argument("--output", default="BENCH_record.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    rows = []
    with tempfile.TemporaryDirectory(prefix="bench_record_") as trace_dir:
        for app, nprocs in _workloads(args.quick):
            row = bench_workload(app, nprocs, trace_dir)
            rows.append(row)
            print(f"{app}@{nprocs:<2d}  record {row['record_slowdown']:.4f}x  "
                  f"online {row['online_slowdown']:.3f}x  "
                  f"{row['entries_recorded']:6d} entries  "
                  f"{row['trace_bytes']:7d} trace bytes  "
                  f"{'OK' if row['replay_equivalent'] else 'MISMATCH'}")

    worst_record = max(r["record_slowdown"] for r in rows)
    # The advantage ratio compares *added* overhead; a record run at
    # 1.003x against online detection at 2.6x is a ~530x advantage.
    advantages = [
        (r["online_slowdown"] - 1.0) / max(r["record_slowdown"] - 1.0, 1e-9)
        for r in rows]
    report = {
        "benchmark": "record-mode virtual-time overhead",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "recplay_record_slowdown": RECPLAY_RECORD_SLOWDOWN,
        "workloads": rows,
        "worst_record_slowdown": worst_record,
        "min_online_to_record_advantage": min(advantages),
        "max_record_overhead_required": args.max_record_overhead,
        "min_advantage_required": args.min_advantage,
        "all_equivalent": all(r["replay_equivalent"] for r in rows),
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"\nwrote {args.output}")

    if not report["all_equivalent"]:
        print("FAIL: offline replay reports diverge from online detection",
              file=sys.stderr)
        return 1
    if worst_record > args.max_record_overhead:
        print(f"FAIL: record slowdown {worst_record:.4f}x > "
              f"{args.max_record_overhead:.2f}x", file=sys.stderr)
        return 1
    if min(advantages) < args.min_advantage:
        print(f"FAIL: online/record overhead advantage "
              f"{min(advantages):.1f}x < {args.min_advantage:.1f}x",
              file=sys.stderr)
        return 1
    print(f"PASS: worst record slowdown {worst_record:.4f}x "
          f"(<= {args.max_record_overhead:.2f}x, RECPLAY reference "
          f"{RECPLAY_RECORD_SLOWDOWN}x), online detection costs >= "
          f"{min(advantages):.0f}x the record overhead, all replays "
          "byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
