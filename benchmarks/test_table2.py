"""Benchmark regenerating Table 2 — Instrumentation Statistics.

Times the full static pipeline for one binary: compile the kernel program,
synthesize and link the libraries, classify every load/store.
"""

from repro.harness.paper_values import PAPER_TABLE2
from repro.harness.table2 import compute_table2, render_table2
from repro.instrument.atom import AtomRewriter
from repro.instrument.binaries import binary_for


def test_table2_rows_and_shape(benchmark):
    report = benchmark.pedantic(
        lambda: AtomRewriter().analyze(binary_for("water")),
        rounds=3, iterations=1)
    assert report.binary == "water"

    rows = compute_table2()
    print()
    print(render_table2(rows))

    by_app = {r.app: r for r in rows}
    for app, row in by_app.items():
        # The paper's claim: >99% statically eliminated.
        assert row.eliminated_fraction > 0.99, app
        assert row.library > 1000
        assert row.cvm > 1000
    # FFT and Water link libm: far larger library residue.
    assert by_app["fft"].library > 2 * by_app["sor"].library
    assert by_app["water"].library > 2 * by_app["tsp"].library
    # Water carries the largest instrumented residue, SOR the smallest —
    # the ordering of the paper's Inst. column.
    inst = {a: r.instrumented for a, r in by_app.items()}
    assert inst["water"] == max(inst.values())
    assert inst["sor"] == min(inst.values())
    # Full paper ordering of the Inst. column: water > tsp > fft > sor.
    assert inst["water"] > inst["tsp"] > inst["fft"] > inst["sor"]
