#!/usr/bin/env python
"""Wall-clock benchmark of the epoch-detection engines.

Captures the interval batches that real application runs hand to the
barrier master (``repro.perf.capture_epochs``), then replays each batch
through both detection engines — the reference O(i²p²) algorithm and the
default fast path — timing the full ``run_epoch`` analysis and checking
in the same breath that races, statistics, and virtual-time ledgers are
identical.  Results go to ``BENCH_detection.json`` so the repository
carries a perf trajectory across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py           # full
    PYTHONPATH=src python benchmarks/bench_wallclock.py --quick   # CI smoke

Exit status is non-zero if any engine pair disagrees, or if the stress
workload's speedup falls below the target (``--min-speedup``, default
3x; the acceptance bar for the fast path).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.apps.registry import APPLICATIONS, EXTRAS, get_app  # noqa: E402
from repro.perf import capture_epochs, time_detection  # noqa: E402

#: (app, nprocs, stress?) — the stress row is the acceptance gate: a
#: barrier-synchronized workload at paper-scale epoch counts, where the
#: naive pair search's quadratic term dominates.
FULL_WORKLOADS = [
    ("tsp", 8, False),
    ("tsp", 16, False),
    ("water", 8, False),
    ("water", 16, True),
]
QUICK_WORKLOADS = [
    ("water", 8, True),
]


def bench_workload(app: str, nprocs: int, stress: bool,
                   repeats: int) -> dict:
    spec = get_app(app)
    t0 = time.perf_counter()
    run, epochs = capture_epochs(spec, nprocs=nprocs)
    capture_s = time.perf_counter() - t0
    page_size = run.config.page_size_words
    ref = time_detection(epochs, page_size, nprocs, fast_path=False,
                         cost_model=run.config.cost_model,
                         repeats=repeats, label=f"{app}@{nprocs}:ref")
    fast = time_detection(epochs, page_size, nprocs, fast_path=True,
                          cost_model=run.config.cost_model,
                          repeats=repeats, label=f"{app}@{nprocs}:fast")
    equivalent = ref.fingerprint() == fast.fingerprint()
    return {
        "app": app,
        "nprocs": nprocs,
        "stress": stress,
        "epochs": len(epochs),
        "intervals": sum(len(e.intervals) for e in epochs),
        "races": len(fast.races),
        "capture_s": capture_s,
        "reference": ref.sample.as_dict(),
        "fast_path": fast.sample.as_dict(),
        "speedup": ref.sample.best / fast.sample.best,
        "equivalent": equivalent,
        "model_comparisons": fast.stats.interval_comparisons,
        "actual_comparisons": {"reference": ref.actual_comparisons,
                               "fast_path": fast.actual_comparisons},
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="single small workload, fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="wall-clock samples per engine (default 5, "
                             "quick 2)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required fast-path speedup on the stress "
                             "workload (default 3.0)")
    parser.add_argument("--output", default="BENCH_detection.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    workloads = QUICK_WORKLOADS if args.quick else FULL_WORKLOADS
    repeats = args.repeats or (2 if args.quick else 5)

    rows = []
    for app, nprocs, stress in workloads:
        row = bench_workload(app, nprocs, stress, repeats)
        rows.append(row)
        print(f"{app}@{nprocs}{' [stress]' if stress else '':9s} "
              f"epochs={row['epochs']:3d} intervals={row['intervals']:5d}  "
              f"ref {row['reference']['best_s'] * 1e3:8.1f} ms  "
              f"fast {row['fast_path']['best_s'] * 1e3:8.1f} ms  "
              f"speedup {row['speedup']:5.2f}x  "
              f"{'OK' if row['equivalent'] else 'MISMATCH'}")

    stress_rows = [r for r in rows if r["stress"]]
    stress_speedup = min(r["speedup"] for r in stress_rows)
    report = {
        "benchmark": "epoch-detection wall clock",
        "mode": "quick" if args.quick else "full",
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": rows,
        "stress_speedup": stress_speedup,
        "min_speedup_required": args.min_speedup,
        "all_equivalent": all(r["equivalent"] for r in rows),
    }
    # The scale-out benchmark (bench_detection_scaleout.py) owns the
    # "scaleout" key of the shared file; carry it through a rewrite.
    if os.path.exists(args.output):
        with open(args.output) as f:
            previous = json.load(f)
        if "scaleout" in previous:
            report["scaleout"] = previous["scaleout"]
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"\nwrote {args.output}")

    if not report["all_equivalent"]:
        print("FAIL: engines disagree", file=sys.stderr)
        return 1
    if stress_speedup < args.min_speedup:
        print(f"FAIL: stress speedup {stress_speedup:.2f}x < "
              f"{args.min_speedup:.1f}x", file=sys.stderr)
        return 1
    print(f"PASS: stress speedup {stress_speedup:.2f}x "
          f"(>= {args.min_speedup:.1f}x), all engines equivalent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
