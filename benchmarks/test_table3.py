"""Benchmark regenerating Table 3 — Dynamic Metrics.

Times one detection-enabled application run (the source of every dynamic
metric), then renders and shape-checks the whole table.
"""

from repro.apps.registry import APPLICATIONS
from repro.harness.context import ExperimentContext
from repro.harness.table3 import compute_table3, render_table3

from benchmarks.bench_common import measured


def test_table3_rows_and_shape(benchmark):
    res = benchmark.pedantic(
        lambda: APPLICATIONS["water"].run(nprocs=8),
        rounds=1, iterations=1)
    assert res.detector_stats is not None

    ctx = ExperimentContext()
    for app in APPLICATIONS:
        ctx._cache[(app, 8)] = measured(app, 8)
    rows = compute_table3(ctx)
    print()
    print(render_table3(rows))

    by_app = {r.app: r for r in rows}
    # SOR: literally zero unsynchronized sharing (paper: 0% / 0%).
    assert by_app["sor"].intervals_used == 0.0
    assert by_app["sor"].bitmaps_used == 0.0
    # TSP: the overwhelming majority of intervals involved (paper: 93%).
    assert by_app["tsp"].intervals_used > 0.5
    assert by_app["tsp"].intervals_used == max(
        r.intervals_used for r in rows)
    # FFT: modest false sharing, almost no bitmaps end in races
    # (paper: 15% / 1%).
    assert 0 < by_app["fft"].intervals_used < 0.5
    assert by_app["fft"].bitmaps_used < by_app["fft"].intervals_used
    # Water sits between SOR and TSP (paper: 13%).
    assert by_app["sor"].intervals_used < by_app["water"].intervals_used \
        < by_app["tsp"].intervals_used
    # Bitmaps fetched are always a minority of bitmaps created.
    for r in rows:
        assert r.bitmaps_used < 0.6
    # The analysis routine is called mostly for private data (paper §5.1:
    # "the majority of run-time calls ... are for private, not shared").
    # SOR is the exception in the paper's Table 3 as well (483k shared vs
    # 251k private): its instrumented residue is almost entirely the grid.
    for app in ("fft", "tsp", "water"):
        r = by_app[app]
        assert r.private_per_sec > r.shared_per_sec, app
    assert by_app["sor"].shared_per_sec > by_app["sor"].private_per_sec
