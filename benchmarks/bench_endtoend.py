#!/usr/bin/env python
"""End-to-end wall-clock benchmark of the access fast path.

Times complete ``CVM.run`` executions — instrumentation, coherence
protocol, network accounting, epoch detection, everything — for every
registered application under both Env engines: the per-word scalar
reference chain (``access_fast_path=False``, the paper's literal
one-call-per-access instrumentation) and the default batched engine
(fused clock charges, range-native interval recording, big-int bitmap
fills).  Each pair is checked for full observable equivalence in the
same breath: race reports, detector statistics, access counters, traffic
totals, per-process virtual-time ledgers, and the final runtime.

Results go to ``BENCH_endtoend.json`` so the repository carries an
end-to-end perf trajectory across PRs, alongside the detection-engine
microbenchmark in ``BENCH_detection.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_endtoend.py           # full
    PYTHONPATH=src python benchmarks/bench_endtoend.py --quick   # CI smoke

Exit status is non-zero if any engine pair disagrees, or if the stress
workload's speedup falls below the target (``--min-speedup``, default
2x; the acceptance bar for the batched engine).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.apps.registry import APPLICATIONS, EXTRAS, get_app  # noqa: E402
from repro.apps.sor import SorParams  # noqa: E402
from repro.perf.timing import timeit_best  # noqa: E402

#: The stress row: SOR scaled to twice the default grid at 16 processes.
#: Range-dominated (row-wise sweeps over page-aligned arrays), so the
#: per-word scalar chain pays its full per-access toll — the workload the
#: batched engine exists for.
STRESS_PARAMS = SorParams(rows=96, cols=64, iterations=8)


def _workloads(quick: bool) -> List[Tuple[str, int, object, bool]]:
    """(app, nprocs, params, stress?) rows. queue_racy is pinned at its
    3-process schedule; every other app runs at 8 and 16."""
    if quick:
        # One regular kernel, one irregular bridge-backed app (heap
        # churn through the instrument→dsm bridge), plus the gated
        # stress row — so CI smoke covers every app class.
        return [("tsp", 8, None, False), ("hashtab", 8, None, False),
                ("sor", 16, STRESS_PARAMS, True)]
    rows: List[Tuple[str, int, object, bool]] = []
    for app in sorted(APPLICATIONS) + sorted(EXTRAS):
        if app == "queue_racy":
            rows.append((app, 3, None, False))
            continue
        rows.append((app, 8, None, False))
        rows.append((app, 16, None, False))
    rows.append(("sor", 16, STRESS_PARAMS, True))
    return rows


def _fingerprint(res) -> Tuple:
    """Everything observable about a run, hashable for equality."""
    return (
        tuple(r.key() for r in res.races),
        res.detector_stats,
        res.runtime_cycles,
        res.shared_instr_calls,
        res.traffic.total_messages,
        res.traffic.total_bytes,
        tuple(tuple(sorted((c.name, t) for c, t in ledger.totals.items()))
              for ledger in res.ledgers),
    )


def bench_workload(app: str, nprocs: int, params, stress: bool,
                   repeats: int) -> dict:
    spec = get_app(app)
    kept: dict = {}

    def run_with(fast: bool):
        res = spec.run(nprocs=nprocs, params=params,
                       access_fast_path=fast)
        kept[fast] = res
        return res

    ref = timeit_best(lambda: run_with(False), repeats=repeats,
                      label=f"{app}@{nprocs}:scalar")
    fast = timeit_best(lambda: run_with(True), repeats=repeats,
                       label=f"{app}@{nprocs}:batched")
    equivalent = _fingerprint(kept[False]) == _fingerprint(kept[True])
    res = kept[True]
    return {
        "app": app,
        "nprocs": nprocs,
        "stress": stress,
        "params": repr(params) if params is not None else "default",
        "races": len(res.races),
        "shared_accesses": res.shared_instr_calls,
        "runtime_cycles": res.runtime_cycles,
        "scalar": ref.as_dict(),
        "batched": fast.as_dict(),
        "speedup": ref.best / fast.best,
        "equivalent": equivalent,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="two workloads, fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="wall-clock samples per engine (default 3, "
                             "quick 2)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required batched-engine speedup on the "
                             "stress workload (default 2.0)")
    parser.add_argument("--output", default="BENCH_endtoend.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    repeats = args.repeats or (2 if args.quick else 3)
    rows = []
    for app, nprocs, params, stress in _workloads(args.quick):
        row = bench_workload(app, nprocs, params, stress, repeats)
        rows.append(row)
        print(f"{app}@{nprocs}{' [stress]' if stress else '':9s} "
              f"accesses={row['shared_accesses']:7d}  "
              f"scalar {row['scalar']['best_s'] * 1e3:8.1f} ms  "
              f"batched {row['batched']['best_s'] * 1e3:8.1f} ms  "
              f"speedup {row['speedup']:5.2f}x  "
              f"{'OK' if row['equivalent'] else 'MISMATCH'}")

    stress_speedup = min(r["speedup"] for r in rows if r["stress"])
    report = {
        "benchmark": "end-to-end run wall clock",
        "mode": "quick" if args.quick else "full",
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": rows,
        "stress_speedup": stress_speedup,
        "min_speedup_required": args.min_speedup,
        "all_equivalent": all(r["equivalent"] for r in rows),
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"\nwrote {args.output}")

    if not report["all_equivalent"]:
        print("FAIL: engines disagree", file=sys.stderr)
        return 1
    if stress_speedup < args.min_speedup:
        print(f"FAIL: stress speedup {stress_speedup:.2f}x < "
              f"{args.min_speedup:.1f}x", file=sys.stderr)
        return 1
    print(f"PASS: stress speedup {stress_speedup:.2f}x "
          f"(>= {args.min_speedup:.1f}x), all engine pairs equivalent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
