"""Ablation (§6.5): multi-writer diffs replacing store instrumentation.

The paper estimates that switching to the multi-writer protocol and
deriving write bitmaps from the existing diffs — so stores need not be
instrumented at all — should remove at least ~17% of total overhead
(instrumentation is ~68% of overhead and ~25% of accesses are stores),
at the price of missing races where a value is overwritten with itself.
This bench measures both halves of that trade on Water.
"""

from repro.apps.registry import APPLICATIONS
from repro.apps.water import WaterParams
from repro.dsm.cvm import CVM


def run(diff_mode: bool, nprocs: int = 8):
    spec = APPLICATIONS["water"]
    cfg = spec.config(nprocs=nprocs, protocol="mw",
                      diff_write_detection=diff_mode)
    return CVM(cfg).run(spec.func, spec.default_params)


def test_diff_write_detection_cuts_instrumentation(benchmark):
    diff_res = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    instr_res = run(False)

    # Stores are no longer instrumented: fewer shared analysis calls...
    assert diff_res.shared_instr_calls < instr_res.shared_instr_calls
    # ... and measurably less instrumentation overhead.
    d = diff_res.aggregate_ledger()
    i = instr_res.aggregate_ledger()
    from repro.sim.costmodel import CostCategory
    diff_instr = (d.totals[CostCategory.PROC_CALL]
                  + d.totals[CostCategory.ACCESS_CHECK])
    full_instr = (i.totals[CostCategory.PROC_CALL]
                  + i.totals[CostCategory.ACCESS_CHECK])
    saved = 1 - diff_instr / full_instr
    print(f"\n§6.5 ablation: diff-based write detection removes "
          f"{saved:.0%} of instrumentation cycles "
          f"({full_instr:,.0f} -> {diff_instr:,.0f})")
    # The paper estimates ~17% of *total* overhead for binaries where 25%
    # of accesses are stores; Water's instrumented calls are mostly loads
    # and residual private accesses, so the relative saving is smaller —
    # what must hold is that it is real and strictly positive.
    assert saved > 0.03

    # The headline bug is still found (value actually changes).
    assert any(r.symbol.startswith("water_poteng") for r in diff_res.races)


def test_diff_mode_weaker_guarantee():
    """The documented miss: same-value overwrites are invisible."""
    def app(env):
        x = env.malloc(1, name="x")
        if env.pid == 0:
            env.store(x, 5)
        env.barrier()
        env.load(x)
        env.barrier()
        env.store(x, 5)  # racy, but writes the value already present
        env.barrier()

    spec = APPLICATIONS["water"]
    cfg_diff = spec.config(nprocs=4, protocol="mw",
                           diff_write_detection=True)
    cfg_full = spec.config(nprocs=4, protocol="mw",
                           diff_write_detection=False)
    missed = CVM(cfg_diff).run(app)
    caught = CVM(cfg_full).run(app)
    assert missed.races == []
    assert caught.races != []
