"""Shared, memoized measurement runs for the benchmark suite.

Each table/figure benchmark needs the same paired (detection off/on) app
runs; memoizing them keeps ``pytest benchmarks/ --benchmark-only`` fast
while every benchmark still *times* the piece of the pipeline it is about.
"""

from __future__ import annotations

import functools

from repro.apps.base import AppResult, measure
from repro.apps.registry import APPLICATIONS

#: Processor counts for the Figure 4 sweep.
SWEEP = (2, 4, 8)


@functools.lru_cache(maxsize=None)
def measured(app: str, nprocs: int = 8) -> AppResult:
    return measure(APPLICATIONS[app], nprocs=nprocs)


def warm_all(nprocs_list=(8,)) -> None:
    for app in APPLICATIONS:
        for nprocs in nprocs_list:
            measured(app, nprocs)
