"""Benchmark regenerating Figure 3 — Overhead Breakdown.

Times the overhead decomposition itself (ledger aggregation over a run),
then renders the stacked bars and checks the paper's structural claims.
"""

from repro.harness.context import ExperimentContext
from repro.harness.figure3 import compute_figure3, render_figure3

from benchmarks.bench_common import measured


def test_figure3_breakdown_and_shape(benchmark):
    ctx = ExperimentContext()
    for app in ctx.app_names:
        ctx._cache[(app, 8)] = measured(app, 8)

    rows = benchmark.pedantic(lambda: compute_figure3(ctx),
                              rounds=3, iterations=1)
    print()
    print(render_figure3(rows))

    by_app = {r.app: r for r in rows}
    # Instrumentation (proc call + access check) dominates overall —
    # the paper reports an average of 68% of total overhead.
    avg_instr = sum(r.instrumentation_share for r in rows) / len(rows)
    assert avg_instr > 0.5
    # The comparison algorithm is at most the third most costly component
    # for every application (paper §5: "only the third or fourth-most
    # expensive portion").
    for r in rows:
        assert r.category_rank("intervals") >= 3 or \
            r.fractions["intervals"] < 0.05, r.app
    # TSP's access-check overhead is at the top of the pack (its
    # analysis-call rate is the highest of the four, §5.1); SOR's lean
    # compute keeps its bar in the same range, so assert top-2 with a
    # tolerance rather than a strict maximum.
    peak = max(r.fractions["access_check"] for r in rows)
    assert by_app["tsp"].fractions["access_check"] >= 0.8 * peak
    assert by_app["tsp"].fractions["access_check"] >= \
        by_app["fft"].fractions["access_check"]
    assert by_app["tsp"].fractions["access_check"] >= \
        by_app["water"].fractions["access_check"]
    # Water's interval-comparison share is the largest of the four apps
    # (its fine-grained synchronization), as in the paper.
    water_intervals = by_app["water"].fractions["intervals"] / \
        by_app["water"].total_overhead
    for app in ("fft", "sor", "tsp"):
        other = by_app[app].fractions["intervals"] / \
            by_app[app].total_overhead
        assert water_intervals >= other, app
    # Every total overhead is positive and below 200% (slowdown < 3x).
    for r in rows:
        assert 0 < r.total_overhead < 2.0
