"""Ablation (§6.5): inlining the instrumentation.

ATOM could only insert procedure calls; the paper reports the call
overhead as ~6.7% of total overhead on average and expects an inlining
version of ATOM to eliminate it.  We model inlining by zeroing the
per-access call cost and measure the recovered slowdown.
"""

from repro.apps.base import measure
from repro.apps.registry import APPLICATIONS
from repro.sim.costmodel import CostCategory


def test_inlining_eliminates_proc_call_overhead(benchmark):
    spec = APPLICATIONS["tsp"]
    inlined = benchmark.pedantic(
        lambda: measure(spec, nprocs=8, inline_instrumentation=True),
        rounds=1, iterations=1)
    normal = measure(spec, nprocs=8)

    # The proc-call category vanishes entirely.
    assert inlined.detected.aggregate_ledger().totals[
        CostCategory.PROC_CALL] == 0
    assert normal.detected.aggregate_ledger().totals[
        CostCategory.PROC_CALL] > 0
    # And the slowdown improves by a visible margin.
    print(f"\n§6.5 inlining ablation (TSP): slowdown "
          f"{normal.slowdown:.2f} -> {inlined.slowdown:.2f}")
    assert inlined.slowdown < normal.slowdown
    # Access checks remain: inlining removes calls, not the check.
    assert inlined.detected.aggregate_ledger().totals[
        CostCategory.ACCESS_CHECK] > 0


def test_inlining_does_not_change_findings():
    spec = APPLICATIONS["water"]
    normal = spec.run(nprocs=4)
    inlined = spec.run(nprocs=4, inline_instrumentation=True)
    assert {r.key() for r in normal.races} == \
        {r.key() for r in inlined.races}
