#!/usr/bin/env python
"""Scale-out benchmark of sharded distributed epoch detection.

Runs a detection-heavy synthetic workload (every process generates many
mutually concurrent lock intervals per epoch, so the pair search — not
the application — dominates the coordinator's epoch) across a sweep of
process counts, once with the centralized detection engine and once with
``--sharded-detection``, and records per-nprocs scaling curves:

* total virtual runtime of both engines and their ratio (the speedup);
* the coordinator's detection share of the runtime (INTERVALS + BITMAPS
  cycles on the coordinator's clock / total runtime) — centralized, this
  grows with nprocs until the coordinator is the bottleneck; sharded, it
  collapses to ~0 because the comparison work moves to the shard owners;
* the sharding protocol's own traffic (messages/bytes under
  ``CostCategory.SHARDED_DETECT``) so the distribution cost is visible
  rather than buried in the speedup;
* a real-application row (water) for context at each process count.

Every cell also checks cross-engine equivalence in the same breath: the
sharded run must produce byte-identical race reports and detector
statistics, or the benchmark fails regardless of speed.

A second section ablates the two-level coarse filter
(``--coarse-filter``) on the same stress workload and on every
registered application, on both detection engines: reports must be
byte-identical filter-on vs filter-off, the combined bitmap-fetch
traffic must shrink by ``--min-filter-reduction`` (default 2x), and the
centralized engine — whose coordinator serializes the whole bitmap
round — must get measurably faster.

Results merge into ``BENCH_detection.json`` under the ``"scaleout"``
and ``"coarse_filter"`` keys (the wall-clock microbenchmark owns the
rest of the file) so the repository carries both trajectories across
PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_detection_scaleout.py          # full
    PYTHONPATH=src python benchmarks/bench_detection_scaleout.py --quick  # CI

Exit status is non-zero if any cell's engines disagree, or if the
sharded engine's speedup at the highest swept process count falls below
``--min-speedup`` (default 1.25x — conservative against the ~1.5x the
workload measures at 32 processes).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from dataclasses import dataclass
from typing import List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.apps.base import AppSpec  # noqa: E402
from repro.apps.registry import get_app  # noqa: E402
from repro.sim.costmodel import CostCategory  # noqa: E402

FULL_NPROCS = [4, 8, 16, 32]
QUICK_NPROCS = [4, 16]

#: Small pages keep each bitmap comparison cheap so the sweep stays fast
#: while the *number* of concurrent pairs still grows quadratically.
STRESS_CONFIG = dict(page_size_words=64, segment_words=1 << 16)


@dataclass(frozen=True)
class StressParams:
    epochs: int = 3
    intervals: int = 12
    pages: int = 2


def detect_stress(env, params: StressParams) -> int:
    """Synthetic pair-search stressor.

    Each process runs ``intervals`` critical sections per epoch under its
    *own* lock — no cross-process ordering, so every interval is
    concurrent with every other process's intervals and the pair search
    sees the full quadratic block grid.  The writes land on shared pages
    at per-pid word offsets (false sharing: overlap at page level, no
    races), plus one genuinely racy word so the report is non-trivial.
    """
    psz = env.system.config.page_size_words
    field = env.malloc(8 * psz, name="field", page_aligned=True)
    racy = env.malloc(psz, name="racy", page_aligned=True)
    for _ in range(params.epochs):
        for it in range(params.intervals):
            with env.locked(env.pid):
                for pg in range(params.pages):
                    env.store(field + pg * psz + env.pid, it)
            if env.pid < 2 and it == 0:
                env.store(racy, env.pid)
        env.barrier()
    return 0


STRESS_SPEC = AppSpec(
    name="detect_stress", func=detect_stress,
    default_params=StressParams(), paper_params=StressParams(),
    synchronization="locks+barriers",
    input_description="synthetic pair-search stressor",
    expect_races=True)


def coordinator_detection_share(result) -> float:
    """INTERVALS + BITMAPS cycles on the coordinator's clock as a share
    of total virtual runtime (the serialized epoch-analysis fraction the
    paper pins at the barrier master, §6.2)."""
    ledger = result.ledgers[0]
    det = (ledger.totals[CostCategory.INTERVALS]
           + ledger.totals[CostCategory.BITMAPS])
    return det / result.runtime_cycles


def bench_cell(spec: AppSpec, nprocs: int, **config) -> dict:
    # The scale-out cells measure sharding alone: the two-level filter
    # (on by default) would shrink the very bitmap-round work sharding
    # distributes, so it is pinned off here and measured separately by
    # the "coarse_filter" section below.
    config = dict(config, coarse_filter=False)
    central = spec.run(nprocs=nprocs, **config)
    sharded = spec.run(nprocs=nprocs, sharded_detection=True, **config)
    equivalent = (
        [str(r) for r in central.races] == [str(r) for r in sharded.races]
        and central.detector_stats == sharded.detector_stats
        and ([str(e) for e in central.unverifiable]
             == [str(e) for e in sharded.unverifiable]))
    sharded_cycles = sharded.aggregate_ledger().totals[
        CostCategory.SHARDED_DETECT]
    return {
        "app": spec.name,
        "nprocs": nprocs,
        "races": len(central.races),
        "equivalent": equivalent,
        "centralized_runtime_cycles": central.runtime_cycles,
        "sharded_runtime_cycles": sharded.runtime_cycles,
        "speedup": central.runtime_cycles / sharded.runtime_cycles,
        "coordinator_detection_share": {
            "centralized": coordinator_detection_share(central),
            "sharded": coordinator_detection_share(sharded),
        },
        "sharded_detect_cycles": sharded_cycles,
        "sharding": sharded.sharding_stats.summary(),
    }


def fetch_bytes(result, sharded: bool) -> int:
    """Bitmap-fetch traffic of one run: the centralized engine's bitmap
    round, or the shard owners' fetch exchanges."""
    if sharded:
        return result.sharding_stats.bitmap_fetch_bytes
    return result.traffic.bitmap_round_bytes


def filter_cell(spec: AppSpec, nprocs: int, sharded: bool,
                **config) -> dict:
    """One two-level-filter ablation cell: the same workload with the
    filter off and on, on one detection engine.  Reports must come out
    byte-identical (the filter only skips provably-empty comparisons);
    what changes is the bitmap-fetch traffic and the virtual runtime."""
    runs = {}
    for filt in (False, True):
        runs[filt] = spec.run(nprocs=nprocs, sharded_detection=sharded,
                              coarse_filter=filt, **config)
    off, on = runs[False], runs[True]
    equivalent = (
        [str(r) for r in off.races] == [str(r) for r in on.races]
        and ([str(e) for e in off.unverifiable]
             == [str(e) for e in on.unverifiable]))
    off_bytes, on_bytes = fetch_bytes(off, sharded), fetch_bytes(on, sharded)
    st = on.detector_stats
    return {
        "app": spec.name,
        "nprocs": nprocs,
        "engine": "sharded" if sharded else "centralized",
        "races": len(off.races),
        "equivalent": equivalent,
        "fetch_bytes_off": off_bytes,
        "fetch_bytes_on": on_bytes,
        "fetch_reduction": off_bytes / on_bytes if on_bytes else float("inf"),
        "runtime_cycles_off": off.runtime_cycles,
        "runtime_cycles_on": on.runtime_cycles,
        "runtime_speedup": off.runtime_cycles / on.runtime_cycles,
        "pairs_filtered": st.pairs_filtered,
        "granule_hits": st.granule_hits,
        "digest_bytes": on.traffic.digest_bytes,
    }


def bench_coarse_filter(sweep_top: int, apps_nprocs: int = 8) -> dict:
    """The ``"coarse_filter"`` entry: the stress workload on both engines
    at the sweep's highest process count (the gated cells), plus an
    equivalence sweep over every registered application on both engines.

    The filter's two wins land on different engines: the centralized
    coordinator serializes the whole bitmap round, so skipped fetches
    turn directly into runtime (the ``runtime_speedup`` gate); the shard
    owners fetch per-shard without cross-owner dedup, so the byte
    reduction is largest there (the ``fetch_reduction`` gate counts both
    engines' traffic together).
    """
    stress_cells = [
        filter_cell(STRESS_SPEC, sweep_top, sharded, **STRESS_CONFIG)
        for sharded in (False, True)]
    app_cells = []
    from repro.apps.registry import APPLICATIONS
    for name in sorted(APPLICATIONS):
        for sharded in (False, True):
            app_cells.append(filter_cell(get_app(name), apps_nprocs,
                                         sharded))
    for row in stress_cells + app_cells:
        print(f"{row['app']}@{row['nprocs']:<3d} {row['engine']:11s} "
              f"fetch {row['fetch_bytes_off']:>8d} -> "
              f"{row['fetch_bytes_on']:>7d}  "
              f"runtime x{row['runtime_speedup']:5.3f}  "
              f"{'OK' if row['equivalent'] else 'MISMATCH'}")
    off_total = sum(r["fetch_bytes_off"] for r in stress_cells)
    on_total = sum(r["fetch_bytes_on"] for r in stress_cells)
    central = stress_cells[0]
    return {
        "benchmark": "two-level coarse-filter ablation",
        "stress_nprocs": sweep_top,
        "stress_cells": stress_cells,
        "app_cells": app_cells,
        "fetch_bytes_off": off_total,
        "fetch_bytes_on": on_total,
        "fetch_reduction": (off_total / on_total if on_total
                            else float("inf")),
        "runtime_speedup": central["runtime_speedup"],
        "all_equivalent": all(r["equivalent"]
                              for r in stress_cells + app_cells),
    }


def merge_report(path: str, entry: dict, key: str = "scaleout") -> None:
    """Install one section into the benchmark file without touching the
    other benchmarks' keys."""
    report = {}
    if os.path.exists(path):
        with open(path) as f:
            report = json.load(f)
    report[key] = entry
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="two process counts only (CI smoke)")
    parser.add_argument("--min-speedup", type=float, default=1.25,
                        help="required sharded speedup on the stress "
                             "workload at the highest process count "
                             "(default 1.25)")
    parser.add_argument("--min-filter-reduction", type=float, default=2.0,
                        help="required bitmap-fetch-byte reduction from "
                             "the two-level filter on the stress workload "
                             "at the highest process count, both engines' "
                             "traffic combined (default 2.0)")
    parser.add_argument("--output", default="BENCH_detection.json",
                        help="benchmark file to merge the scale-out "
                             "entry into")
    args = parser.parse_args(argv)

    sweep = QUICK_NPROCS if args.quick else FULL_NPROCS
    rows = []
    for nprocs in sweep:
        row = bench_cell(STRESS_SPEC, nprocs, **STRESS_CONFIG)
        rows.append(row)
        share = row["coordinator_detection_share"]
        print(f"{row['app']}@{nprocs:<3d} "
              f"speedup {row['speedup']:5.2f}x  "
              f"coord share {share['centralized']:6.1%} -> "
              f"{share['sharded']:6.1%}  "
              f"{'OK' if row['equivalent'] else 'MISMATCH'}")
    context_rows = []
    for nprocs in sweep:
        row = bench_cell(get_app("water"), nprocs)
        context_rows.append(row)
        share = row["coordinator_detection_share"]
        print(f"{row['app']}@{nprocs:<3d} "
              f"speedup {row['speedup']:5.2f}x  "
              f"coord share {share['centralized']:6.1%} -> "
              f"{share['sharded']:6.1%}  "
              f"{'OK' if row['equivalent'] else 'MISMATCH'}")

    stress_row = rows[-1]
    all_rows = rows + context_rows
    entry = {
        "benchmark": "sharded-detection scale-out",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "stress_workload": rows,
        "real_app_context": context_rows,
        "stress_nprocs": stress_row["nprocs"],
        "stress_speedup": stress_row["speedup"],
        "min_speedup_required": args.min_speedup,
        "all_equivalent": all(r["equivalent"] for r in all_rows),
    }
    merge_report(args.output, entry)
    print(f"\nmerged scale-out entry into {args.output}\n")

    filt = bench_coarse_filter(sweep[-1])
    merge_report(args.output, filt, key="coarse_filter")
    print(f"\nmerged coarse-filter entry into {args.output}")

    if not entry["all_equivalent"]:
        print("FAIL: sharded and centralized engines disagree",
              file=sys.stderr)
        return 1
    if stress_row["speedup"] < args.min_speedup:
        print(f"FAIL: scale-out speedup {stress_row['speedup']:.2f}x < "
              f"{args.min_speedup:.2f}x at {stress_row['nprocs']} procs",
              file=sys.stderr)
        return 1
    if not filt["all_equivalent"]:
        print("FAIL: coarse-filter reports differ from the unfiltered "
              "pipeline's", file=sys.stderr)
        return 1
    if filt["fetch_reduction"] < args.min_filter_reduction:
        print(f"FAIL: coarse-filter fetch-byte reduction "
              f"{filt['fetch_reduction']:.2f}x < "
              f"{args.min_filter_reduction:.2f}x at "
              f"{filt['stress_nprocs']} procs", file=sys.stderr)
        return 1
    if filt["runtime_speedup"] <= 1.0:
        print(f"FAIL: coarse-filter centralized runtime speedup "
              f"x{filt['runtime_speedup']:.3f} is not a speedup",
              file=sys.stderr)
        return 1
    print(f"PASS: sharding {stress_row['speedup']:.2f}x at "
          f"{stress_row['nprocs']} procs (>= {args.min_speedup:.2f}x); "
          f"filter {filt['fetch_reduction']:.1f}x fewer fetch bytes, "
          f"x{filt['runtime_speedup']:.3f} centralized runtime; "
          f"all cells equivalent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
