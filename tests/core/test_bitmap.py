"""Word-granularity bitmaps, validated against a Python-set reference."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitmap import Bitmap

WIDTH = 64
indices = st.integers(min_value=0, max_value=WIDTH - 1)
index_sets = st.sets(indices, max_size=WIDTH)


def from_set(bits):
    bm = Bitmap(WIDTH)
    for i in bits:
        bm.set(i)
    return bm


def test_set_test_basic():
    bm = Bitmap(16)
    bm.set(0)
    bm.set(15)
    assert bm.test(0) and bm.test(15)
    assert not bm.test(7)
    assert bm.count() == 2
    assert bm.any()


def test_width_validation():
    with pytest.raises(ValueError):
        Bitmap(0)
    with pytest.raises(ValueError):
        Bitmap(12)  # not multiple of 8


def test_index_bounds():
    bm = Bitmap(8)
    with pytest.raises(IndexError):
        bm.set(8)
    with pytest.raises(IndexError):
        bm.test(-1)


def test_set_range_spanning_bytes():
    bm = Bitmap(32)
    bm.set_range(5, 20)
    assert all(bm.test(i) == (5 <= i < 25) for i in range(32))


def test_set_range_within_one_byte():
    # Range entirely inside one byte: first_full > last_full path.
    bm = Bitmap(32)
    bm.set_range(9, 3)  # bits 9-11, all in byte 1
    assert all(bm.test(i) == (9 <= i < 12) for i in range(32))
    assert bm.count() == 3


def test_set_range_ending_exactly_on_byte_boundary():
    # End == multiple of 8: no trailing partial byte may be touched.
    bm = Bitmap(32)
    bm.set_range(3, 13)  # bits 3-15, ends exactly at bit 16
    assert all(bm.test(i) == (3 <= i < 16) for i in range(32))
    # And starting exactly on a boundary too: pure whole-byte fill.
    bm2 = Bitmap(32)
    bm2.set_range(8, 16)
    assert all(bm2.test(i) == (8 <= i < 24) for i in range(32))


def test_set_range_full_page():
    bm = Bitmap(64)
    bm.set_range(0, 64)
    assert bm.count() == 64
    assert all(bm.test(i) for i in range(64))


def test_set_range_single_bit_at_byte_edges():
    for start in (0, 7, 8, 15, 31):
        bm = Bitmap(32)
        bm.set_range(start, 1)
        assert bm.count() == 1 and bm.test(start)


def test_set_range_bounds_and_degenerate():
    bm = Bitmap(16)
    bm.set_range(5, 0)  # no-op
    assert not bm.any()
    with pytest.raises(IndexError):
        bm.set_range(10, 7)  # runs past the end
    with pytest.raises(ValueError):
        bm.set_range(0, -1)


def test_set_range_within_single_byte():
    bm = Bitmap(16)
    bm.set_range(1, 3)
    assert [i for i in range(16) if bm.test(i)] == [1, 2, 3]


def test_set_range_empty_and_bounds():
    bm = Bitmap(16)
    bm.set_range(3, 0)
    assert not bm.any()
    with pytest.raises(IndexError):
        bm.set_range(10, 7)
    with pytest.raises(ValueError):
        bm.set_range(0, -1)


def test_overlaps_and_intersection():
    a = from_set({1, 5, 9})
    b = from_set({5, 9, 20})
    assert a.overlaps(b)
    assert a.intersection_bits(b) == [5, 9]
    c = from_set({0, 2})
    assert not a.overlaps(c)
    assert a.intersection_bits(c) == []


def test_width_mismatch_rejected():
    with pytest.raises(ValueError):
        Bitmap(8).overlaps(Bitmap(16))


def test_bytes_roundtrip_and_copy():
    a = from_set({0, 13, 63})
    b = Bitmap.from_bytes(a.to_bytes())
    assert a == b
    c = a.copy()
    c.set(1)
    assert not a.test(1)


def test_union_update():
    a = from_set({1, 2})
    a.union_update(from_set({2, 3}))
    assert sorted(a.iter_set_bits()) == [1, 2, 3]


def test_clear():
    a = from_set({1, 2, 3})
    a.clear()
    assert not a.any() and a.count() == 0


def test_nbytes():
    assert Bitmap(64).nbytes == 8


@given(index_sets)
def test_count_matches_reference(bits):
    assert from_set(bits).count() == len(bits)
    assert sorted(from_set(bits).iter_set_bits()) == sorted(bits)


@given(index_sets, index_sets)
def test_intersection_matches_reference(xs, ys):
    a, b = from_set(xs), from_set(ys)
    assert a.overlaps(b) == bool(xs & ys)
    assert a.intersection_bits(b) == sorted(xs & ys)


@given(indices, st.integers(min_value=0, max_value=WIDTH))
def test_set_range_matches_reference(start, count):
    count = min(count, WIDTH - start)
    bm = Bitmap(WIDTH)
    bm.set_range(start, count)
    assert sorted(bm.iter_set_bits()) == list(range(start, start + count))


@given(index_sets, index_sets)
def test_union_matches_reference(xs, ys):
    a = from_set(xs)
    a.union_update(from_set(ys))
    assert sorted(a.iter_set_bits()) == sorted(xs | ys)

# Range fast path vs per-bit reference, on arbitrary pre-populated maps
# (the big-int mask must OR into existing bytes, never overwrite them).
range_specs = st.tuples(indices, st.integers(min_value=0, max_value=WIDTH))


def _clamp(spec):
    start, count = spec
    return start, min(count, WIDTH - start)


@given(index_sets, range_specs)
def test_set_range_on_populated_bitmap_matches_per_bit(bits, spec):
    start, count = _clamp(spec)
    fast = from_set(bits)
    ref = from_set(bits)
    fast.set_range(start, count)
    for i in range(start, start + count):
        ref.set(i)
    assert fast.to_bytes() == ref.to_bytes()
    assert sorted(fast.iter_set_bits()) == sorted(
        set(bits) | set(range(start, start + count)))


@given(st.lists(range_specs, max_size=6))
def test_overlapping_ranges_match_per_bit(specs):
    fast = Bitmap(WIDTH)
    expected = set()
    for spec in specs:
        start, count = _clamp(spec)
        fast.set_range(start, count)
        expected |= set(range(start, start + count))
    assert sorted(fast.iter_set_bits()) == sorted(expected)
    assert fast.count() == len(expected)


@given(st.lists(range_specs, max_size=4), index_sets)
def test_union_update_on_range_built_bitmaps(specs, bits):
    a = Bitmap(WIDTH)
    expected = set()
    for spec in specs:
        start, count = _clamp(spec)
        a.set_range(start, count)
        expected |= set(range(start, start + count))
    a.union_update(from_set(bits))
    assert sorted(a.iter_set_bits()) == sorted(expected | bits)


@given(range_specs)
def test_clear_on_range_built_bitmap(spec):
    start, count = _clamp(spec)
    bm = Bitmap(WIDTH)
    bm.set_range(start, count)
    bm.clear()
    assert not bm.any()
    assert bm.to_bytes() == bytes(WIDTH // 8)


@given(index_sets, range_specs)
def test_overlaps_after_range_fill(bits, spec):
    start, count = _clamp(spec)
    a = Bitmap(WIDTH)
    a.set_range(start, count)
    covered = set(range(start, start + count))
    assert a.overlaps(from_set(bits)) == bool(covered & bits)
    assert a.intersection_bits(from_set(bits)) == sorted(covered & bits)
