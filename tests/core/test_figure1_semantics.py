"""The paper's Figure 1: actual vs feasible races, and lock ordering.

P1 writes x under lock L.  P2 performs a conditional unsynchronized read
(r1, executed only if ``flag``) and an unconditional unsynchronized read
(r2); a third process reads x under the lock (r3).

* w1–r2 is an *actual* race in every execution and must be reported;
* w1–r1 is feasible but, when ``flag`` is false, does not occur — a
  dynamic detector must stay silent about it (the paper's whole point
  about actual vs feasible races, §2);
* w1–r3 is ordered by the unlock/lock pair — whichever order the lock is
  granted in — and must never be reported.

The unsynchronized reader performs no synchronization between barriers,
so its interval is concurrent with the writer's critical section under
every legal scheduling.
"""

from tests.helpers import run_app


def figure1_app(env, flag: bool):
    x = env.malloc(1, name="x")
    env.barrier()
    if env.pid == 0:
        with env.locked(1):                       # Lock(L); w1(x); Unlock(L)
            env.store(x, 42, site="fig1:w1")
    elif env.pid == 1:
        if flag:
            env.load(x, site="fig1:r1")           # conditional unsync read
        env.load(x, site="fig1:r2")               # unconditional unsync read
    elif env.pid == 2:
        with env.locked(1):
            env.load(x, site="fig1:r3")           # lock-ordered read
    env.barrier()


def _reader_pids(res):
    return {s.pid for r in res.races for s in (r.a, r.b) if s.access == "read"}


def test_flag_false_reports_only_w1_r2():
    res = run_app(figure1_app, False, nprocs=3)
    assert len(res.races) == 1
    r = res.races[0]
    assert r.kind.value == "read-write"
    assert r.symbol == "x"
    # The racing read belongs to the unsynchronized process, never to the
    # lock-ordered reader.
    assert _reader_pids(res) == {1}


def test_flag_true_still_one_report_per_interval_pair():
    """r1 and r2 share P2's (single, synchronization-free) interval, so
    Definition 2 yields the same (word, interval-pair) — one report, the
    same one an execution with flag false produces."""
    res = run_app(figure1_app, True, nprocs=3)
    assert len(res.races) == 1
    assert _reader_pids(res) == {1}


def test_r3_never_flagged_in_either_variant():
    for flag in (False, True):
        res = run_app(figure1_app, flag, nprocs=3)
        assert 2 not in _reader_pids(res)


def test_lock_ordered_pair_alone_is_silent():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            with env.locked(1):
                env.store(x, 42)
        elif env.pid == 1:
            with env.locked(1):
                env.load(x)
        env.barrier()

    res = run_app(app, nprocs=2)
    assert res.races == []
