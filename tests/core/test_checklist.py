"""Page-overlap winnowing and bitmap-need computation."""

from repro.core.checklist import (bitmaps_needed, build_check_list,
                                  overlap_work, page_overlaps)
from repro.dsm.interval import Interval
from repro.dsm.vector_clock import VectorClock


def iv(pid, index, writes=(), reads=()):
    rec = Interval(pid, index, VectorClock([0, 0]), 0, 16)
    for p in writes:
        rec.record_write(p, 0)
    for p in reads:
        rec.record_read(p, 0)
    return rec


def test_write_write_overlap():
    a, b = iv(0, 1, writes=[3]), iv(1, 1, writes=[3])
    [ov] = page_overlaps(a, b)
    assert ov.page == 3 and ov.write_write
    assert not ov.a_read_b_write and not ov.a_write_b_read


def test_read_write_overlap_direction():
    a, b = iv(0, 1, reads=[5]), iv(1, 1, writes=[5])
    [ov] = page_overlaps(a, b)
    assert ov.a_read_b_write and not ov.a_write_b_read and not ov.write_write


def test_read_read_excluded():
    a, b = iv(0, 1, reads=[2]), iv(1, 1, reads=[2])
    assert page_overlaps(a, b) == []


def test_disjoint_pages_no_overlap():
    a, b = iv(0, 1, writes=[1], reads=[2]), iv(1, 1, writes=[3], reads=[4])
    assert page_overlaps(a, b) == []


def test_multiple_overlap_pages_sorted():
    a = iv(0, 1, writes=[9, 2], reads=[5])
    b = iv(1, 1, writes=[5, 2], reads=[9])
    pages = [ov.page for ov in page_overlaps(a, b)]
    assert pages == [2, 5, 9]


def test_build_check_list_filters_empty():
    a, b = iv(0, 1, writes=[1]), iv(1, 1, writes=[2])
    c, d = iv(0, 2, writes=[7]), iv(1, 2, reads=[7])
    entries = build_check_list([(a, b), (c, d)])
    assert len(entries) == 1
    assert entries[0].pages[0].page == 7


def test_bitmaps_needed_minimal_set():
    a = iv(0, 1, writes=[3], reads=[8])
    b = iv(1, 1, writes=[3, 8])
    entries = build_check_list([(a, b)])
    needed = bitmaps_needed(entries)
    assert needed == {
        (0, 1, 3, "write"), (1, 1, 3, "write"),   # write-write on page 3
        (0, 1, 8, "read"), (1, 1, 8, "write"),    # read-write on page 8
    }


def test_bitmaps_needed_deduplicates_across_entries():
    a = iv(0, 1, writes=[3])
    b = iv(1, 1, writes=[3])
    c = iv(2, 1, writes=[3])
    entries = build_check_list([(a, b), (a, c)])
    needed = bitmaps_needed(entries)
    assert (0, 1, 3, "write") in needed
    assert len(needed) == 3  # a's bitmap requested once


def test_overlap_work_linear_in_list_sizes():
    a = iv(0, 1, writes=[1, 2, 3], reads=[4])
    b = iv(1, 1, writes=[5], reads=[6, 7])
    assert overlap_work(a, b) == 4 + 3
