"""Property and fuzz tests of the two-level filter's coarse digests.

The filter is only sound if ``digests_disjoint(a, b)`` implies the word
bitmaps do not intersect — for every access pattern, page size, and
construction path (incremental set/set_range, ``from_bytes`` restore,
``copy``, ``union_update``).  These tests drive random and adversarial
patterns through all of them and check the invariant directly against
the exact bitmaps.
"""

import random

import pytest

from repro.core.bitmap import (BLOOM_SPARSE_MAX, DIGEST_MAX_BITS,
                               GRANULE_WORDS, Bitmap, _coarse_of,
                               bloom_word_mask, coarse_digest,
                               digest_width_bits, digests_disjoint)
from repro.dsm.interval import Interval
from repro.dsm.vector_clock import VectorClock

SIZES = [8, 16, 24, 64, 256, 1024, 2048, 4096]


def random_bitmap(rng: random.Random, nbits: int) -> Bitmap:
    """Build a bitmap through a random mix of every mutation path."""
    bm = Bitmap(nbits)
    for _ in range(rng.randrange(6)):
        op = rng.randrange(3)
        if op == 0:
            bm.set(rng.randrange(nbits))
        elif op == 1:
            start = rng.randrange(nbits)
            bm.set_range(start, rng.randrange(1, nbits - start + 1))
        else:
            other = Bitmap(nbits)
            other.set(rng.randrange(nbits))
            bm.union_update(other)
    if rng.randrange(3) == 0:
        bm = Bitmap.from_bytes(bm.to_bytes())
    if rng.randrange(3) == 0:
        bm = bm.copy()
    return bm


@pytest.mark.parametrize("nbits", SIZES)
def test_incremental_coarse_mask_matches_recompute(nbits):
    rng = random.Random(nbits)
    for _ in range(60):
        bm = random_bitmap(rng, nbits)
        assert bm.coarse_mask == _coarse_of(bm.to_bytes())


@pytest.mark.parametrize("nbits", SIZES)
def test_digest_disjoint_implies_bitmaps_disjoint(nbits):
    """The soundness invariant, fuzzed: a digest verdict of 'disjoint'
    must never contradict the exact word-bitmap intersection."""
    rng = random.Random(7919 + nbits)
    for _ in range(120):
        a = random_bitmap(rng, nbits)
        b = random_bitmap(rng, nbits)
        da = coarse_digest(a, nbits)
        db = coarse_digest(b, nbits)
        if digests_disjoint(da, db):
            assert not a.overlaps(b)
        # And sharing a word always collides (no false negatives that
        # would hide a race): overlap => digests hit.
        if a.overlaps(b):
            assert not digests_disjoint(da, db)


def test_granule_and_page_boundary_edges():
    """set/set_range exactly at granule and page edges land in the right
    granule bits."""
    nbits = 64
    bm = Bitmap(nbits)
    bm.set(GRANULE_WORDS - 1)          # last word of granule 0
    assert bm.coarse_mask == 0b0001
    bm.set(GRANULE_WORDS)              # first word of granule 1
    assert bm.coarse_mask == 0b0011
    bm.set(nbits - 1)                  # last word of the page
    assert bm.coarse_mask == 0b1011
    span = Bitmap(nbits)
    span.set_range(GRANULE_WORDS - 1, 2)   # straddles granules 0-1
    assert span.coarse_mask == 0b0011
    full = Bitmap(nbits)
    full.set_range(0, nbits)
    assert full.coarse_mask == 0b1111
    one = Bitmap(nbits)
    one.set_range(nbits - 1, 1)        # count==1 fast path at the edge
    assert one.coarse_mask == 0b1000
    assert one.test(nbits - 1)


def test_digest_width_folds_large_pages():
    """Granule masks wider than DIGEST_MAX_BITS fold pairwise; the folded
    digest stays sound."""
    nbits = GRANULE_WORDS * DIGEST_MAX_BITS * 4  # 4x too many granules
    assert digest_width_bits(nbits) <= DIGEST_MAX_BITS
    a = Bitmap(nbits)
    b = Bitmap(nbits)
    a.set_range(0, 40)                       # low granules
    b.set(nbits - 1)                         # the very last granule
    da, db = coarse_digest(a, nbits), coarse_digest(b, nbits)
    assert da[0].bit_length() <= DIGEST_MAX_BITS
    assert db[0].bit_length() <= DIGEST_MAX_BITS
    assert digests_disjoint(da, db)
    b.set(3)                                 # now truly overlapping region
    assert not digests_disjoint(coarse_digest(a, nbits),
                                coarse_digest(b, nbits))


def test_bloom_separates_same_granule_sparse_sets():
    """The granule mask's worst case — distinct words in one granule —
    is what the Bloom fallback exists for."""
    nbits = 64
    a, b = Bitmap(nbits), Bitmap(nbits)
    a.set(0)
    b.set(1)
    da, db = coarse_digest(a, nbits), coarse_digest(b, nbits)
    assert da[0] == db[0] == 1           # same granule: mask can't help
    assert da[1] is not None and db[1] is not None
    if not (bloom_word_mask(0) & bloom_word_mask(1)):
        assert digests_disjoint(da, db)
    # Same word always collides, whatever the hash does.
    b2 = Bitmap(nbits)
    b2.set(0)
    assert not digests_disjoint(da, coarse_digest(b2, nbits))


def test_dense_sets_drop_the_bloom():
    nbits = 256
    bm = Bitmap(nbits)
    bm.set_range(0, BLOOM_SPARSE_MAX + 1)
    assert coarse_digest(bm, nbits)[1] is None
    sparse = Bitmap(nbits)
    sparse.set_range(0, BLOOM_SPARSE_MAX)
    assert coarse_digest(sparse, nbits)[1] is not None


def test_absent_bitmap_digests_empty():
    """An absent bitmap is an empty access set: disjoint from everything,
    including another absent bitmap."""
    empty = coarse_digest(None, 1024)
    assert empty == (0, 0)
    assert digests_disjoint(empty, empty)
    full = Bitmap(1024)
    full.set_range(0, 1024)
    assert digests_disjoint(empty, coarse_digest(full, 1024))


def make_interval(page_size=64, **kw):
    return Interval(pid=0, index=1, vc=VectorClock.zero(2), epoch=0,
                    page_size_words=page_size, **kw)


def test_interval_digest_cache_and_merge_invalidation():
    """Closed intervals cache finalized digests; a §6.5 diff merge after
    the close must invalidate the affected page's write digest."""
    iv = make_interval()
    iv.record_write(3, 0)
    d_open = iv.digest(3, "write")
    assert not iv._digests            # open: never cached
    iv.record_write(3, 17)            # still legal while open
    assert iv.digest(3, "write") != d_open
    iv.close()
    cached = iv.digest(3, "write")
    assert iv._digests[(3, "write")] == cached
    diff_bm = Bitmap(64)
    diff_bm.set(33)
    iv.merge_write_bitmap(3, diff_bm)
    assert (3, "write") not in iv._digests
    merged = iv.digest(3, "write")
    assert merged[0] == cached[0] | (1 << 2)


def test_interval_digests_match_bitmaps_for_both_kinds():
    iv = make_interval()
    iv.record_read(1, 5)
    iv.record_write(2, 40, count=10)
    iv.close()
    assert iv.digest(1, "read") == coarse_digest(iv.read_bitmaps[1], 64)
    assert iv.digest(2, "write") == coarse_digest(iv.write_bitmaps[2], 64)
    # A page with no recorded access of that kind digests empty.
    assert iv.digest(1, "write") == (0, 0)


def test_checkpoint_restore_regenerates_coarse_state():
    """Digests are derived state: a bitmap rebuilt from checkpoint bytes
    recomputes the identical coarse mask, so restored intervals filter
    exactly like the originals."""
    rng = random.Random(42)
    for nbits in (64, 1024):
        for _ in range(30):
            bm = random_bitmap(rng, nbits)
            restored = Bitmap.from_bytes(bm.to_bytes())
            assert restored == bm
            assert restored.coarse_mask == bm.coarse_mask
            assert coarse_digest(restored, nbits) == coarse_digest(bm, nbits)
