"""The pruned (binary-search) pair search: equivalence and savings."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concurrency import (PairSearchStats, find_concurrent_pairs,
                                    find_concurrent_pairs_pruned)
from repro.dsm.interval import Interval
from repro.dsm.vector_clock import VectorClock


def random_epoch(seed: int, nprocs: int, per_proc: int):
    """Generate a causally-consistent epoch: each process's vector clock
    grows monotonically, occasionally observing other processes' closed
    intervals (like lock traffic would)."""
    rng = random.Random(seed)
    seen = [[0] * nprocs for _ in range(nprocs)]
    closed = [0] * nprocs
    intervals = []
    for _round in range(per_proc):
        for pid in range(nprocs):
            # Occasionally acquire from a random other process.
            if rng.random() < 0.4:
                other = rng.randrange(nprocs)
                if other != pid:
                    for r in range(nprocs):
                        seen[pid][r] = max(seen[pid][r], seen[other][r])
                    seen[pid][other] = max(seen[pid][other], closed[other])
            seen[pid][pid] += 1
            closed[pid] = seen[pid][pid]
            intervals.append(Interval(pid, seen[pid][pid],
                                      VectorClock(seen[pid]), 0, 16))
    return intervals


def pair_keys(pairs):
    return {((a.pid, a.index), (b.pid, b.index)) for a, b in pairs}


@pytest.mark.parametrize("seed", range(10))
def test_pruned_equals_naive(seed):
    intervals = random_epoch(seed, nprocs=4, per_proc=8)
    naive = pair_keys(find_concurrent_pairs(intervals, PairSearchStats()))
    pruned = pair_keys(
        find_concurrent_pairs_pruned(intervals, PairSearchStats()))
    assert naive == pruned


@given(st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=2, max_value=5),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=25, deadline=None)
def test_pruned_equals_naive_property(seed, nprocs, per_proc):
    intervals = random_epoch(seed, nprocs, per_proc)
    naive = pair_keys(find_concurrent_pairs(intervals, PairSearchStats()))
    pruned = pair_keys(
        find_concurrent_pairs_pruned(intervals, PairSearchStats()))
    assert naive == pruned


def test_pruned_needs_fewer_comparisons_on_ordered_epochs():
    """Heavily-synchronized epochs (long happens-before chains) are where
    the bypass pays: O(i log i) vs O(i^2) comparisons."""
    intervals = random_epoch(7, nprocs=4, per_proc=40)
    naive_stats, pruned_stats = PairSearchStats(), PairSearchStats()
    list(find_concurrent_pairs(intervals, naive_stats))
    list(find_concurrent_pairs_pruned(intervals, pruned_stats))
    assert pruned_stats.comparisons < naive_stats.comparisons / 3
    assert pruned_stats.concurrent_pairs == naive_stats.concurrent_pairs


def test_pruned_on_fully_concurrent_epoch():
    """No synchronization at all: every cross-process pair is concurrent;
    the pruned search must still enumerate all of them."""
    intervals = []
    for pid in range(3):
        vc = [0, 0, 0]
        for idx in range(1, 4):
            vc[pid] = idx
            intervals.append(Interval(pid, idx, VectorClock(vc), 0, 16))
    stats = PairSearchStats()
    pairs = pair_keys(find_concurrent_pairs_pruned(intervals, stats))
    assert len(pairs) == 3 * 9  # 3 proc pairs x 3 x 3
