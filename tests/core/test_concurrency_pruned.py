"""The pruned (binary-search) pair search and the window/index fast-path
primitives: equivalence with the naive reference, and the savings."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checklist import (build_check_list, build_check_list_fast,
                                  index_meetings, overlap_work)
from repro.core.concurrency import (PairSearchStats, find_concurrent_pairs,
                                    find_concurrent_pairs_pruned,
                                    iter_window_pairs,
                                    model_comparison_count, scan_windows)
from repro.dsm.interval import Interval
from repro.dsm.vector_clock import VectorClock


def random_epoch(seed: int, nprocs: int, per_proc: int, notices: bool = False):
    """Generate a causally-consistent epoch: each process's vector clock
    grows monotonically, occasionally observing other processes' closed
    intervals (like lock traffic would).  With ``notices``, each interval
    additionally reads/writes a few random pages from a small pool so
    check-list construction has material to work on."""
    rng = random.Random(seed)
    seen = [[0] * nprocs for _ in range(nprocs)]
    closed = [0] * nprocs
    intervals = []
    for _round in range(per_proc):
        for pid in range(nprocs):
            # Occasionally acquire from a random other process.
            if rng.random() < 0.4:
                other = rng.randrange(nprocs)
                if other != pid:
                    for r in range(nprocs):
                        seen[pid][r] = max(seen[pid][r], seen[other][r])
                    seen[pid][other] = max(seen[pid][other], closed[other])
            seen[pid][pid] += 1
            closed[pid] = seen[pid][pid]
            rec = Interval(pid, seen[pid][pid], VectorClock(seen[pid]), 0, 16)
            if notices:
                for page in rng.sample(range(8), rng.randrange(0, 3)):
                    rec.record_write(page, rng.randrange(16))
                for page in rng.sample(range(8), rng.randrange(0, 3)):
                    rec.record_read(page, rng.randrange(16))
            intervals.append(rec)
    return intervals


def pair_keys(pairs):
    return {((a.pid, a.index), (b.pid, b.index)) for a, b in pairs}


@pytest.mark.parametrize("seed", range(10))
def test_pruned_equals_naive(seed):
    intervals = random_epoch(seed, nprocs=4, per_proc=8)
    naive = pair_keys(find_concurrent_pairs(intervals, PairSearchStats()))
    pruned = pair_keys(
        find_concurrent_pairs_pruned(intervals, PairSearchStats()))
    assert naive == pruned


@given(st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=2, max_value=5),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=25, deadline=None)
def test_pruned_equals_naive_property(seed, nprocs, per_proc):
    intervals = random_epoch(seed, nprocs, per_proc)
    naive = pair_keys(find_concurrent_pairs(intervals, PairSearchStats()))
    pruned = pair_keys(
        find_concurrent_pairs_pruned(intervals, PairSearchStats()))
    assert naive == pruned


def test_pruned_needs_fewer_comparisons_on_ordered_epochs():
    """Heavily-synchronized epochs (long happens-before chains) are where
    the bypass pays: O(i log i) vs O(i^2) comparisons."""
    intervals = random_epoch(7, nprocs=4, per_proc=40)
    naive_stats, pruned_stats = PairSearchStats(), PairSearchStats()
    list(find_concurrent_pairs(intervals, naive_stats))
    list(find_concurrent_pairs_pruned(intervals, pruned_stats))
    assert pruned_stats.comparisons < naive_stats.comparisons / 3
    assert pruned_stats.concurrent_pairs == naive_stats.concurrent_pairs


def entry_key(entry):
    return ((entry.a.pid, entry.a.index), (entry.b.pid, entry.b.index),
            [(ov.page, ov.write_write, ov.a_read_b_write, ov.a_write_b_read)
             for ov in entry.pages])


@pytest.mark.parametrize("seed", range(10))
def test_model_comparison_count_matches_naive(seed):
    intervals = random_epoch(seed, nprocs=4, per_proc=8)
    stats = PairSearchStats()
    list(find_concurrent_pairs(intervals, stats))
    assert model_comparison_count(intervals) == stats.comparisons


@pytest.mark.parametrize("seed", range(10))
def test_scan_windows_aggregates_match_naive(seed):
    intervals = random_epoch(seed, nprocs=4, per_proc=8, notices=True)
    naive_stats = PairSearchStats()
    naive_pairs = list(find_concurrent_pairs(intervals, naive_stats))
    stats = PairSearchStats()
    pair_count, probe_work, windows = scan_windows(intervals, stats)
    assert pair_count == naive_stats.concurrent_pairs
    assert stats.concurrent_pairs == naive_stats.concurrent_pairs
    assert stats.intervals == naive_stats.intervals
    assert probe_work == sum(overlap_work(a, b) for a, b in naive_pairs)
    # Windows expand to the identical pair sequence, order included.
    assert [((a.pid, a.index), (b.pid, b.index))
            for a, b in iter_window_pairs(windows)] == \
           [((a.pid, a.index), (b.pid, b.index)) for a, b in naive_pairs]


@pytest.mark.parametrize("seed", range(10))
def test_indexed_check_list_matches_reference(seed):
    intervals = random_epoch(seed, nprocs=4, per_proc=8, notices=True)
    reference = build_check_list(
        find_concurrent_pairs(intervals, PairSearchStats()))
    fast = build_check_list_fast(intervals)
    assert [entry_key(e) for e in fast] == [entry_key(e) for e in reference]


@given(st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=2, max_value=5),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=25, deadline=None)
def test_indexed_check_list_matches_reference_property(seed, nprocs, per_proc):
    intervals = random_epoch(seed, nprocs, per_proc, notices=True)
    reference = build_check_list(
        find_concurrent_pairs(intervals, PairSearchStats()))
    fast = build_check_list_fast(intervals)
    assert [entry_key(e) for e in fast] == [entry_key(e) for e in reference]


def test_index_meetings_bounds_index_work():
    """The estimator counts every writer/writer and writer/reader page
    meeting the index build can generate."""
    intervals = random_epoch(3, nprocs=4, per_proc=8, notices=True)
    meetings = index_meetings(intervals)
    assert meetings >= 0
    # Exact on a hand-built epoch: 2 writers + 1 reader on one page.
    a = Interval(0, 1, VectorClock([1, 0, 0]), 0, 16)
    b = Interval(1, 1, VectorClock([0, 1, 0]), 0, 16)
    c = Interval(2, 1, VectorClock([0, 0, 1]), 0, 16)
    a.record_write(5, 0)
    b.record_write(5, 1)
    c.record_read(5, 2)
    assert index_meetings([a, b, c]) == 1 + 2  # one w/w pair, two w/r


def test_pruned_on_fully_concurrent_epoch():
    """No synchronization at all: every cross-process pair is concurrent;
    the pruned search must still enumerate all of them."""
    intervals = []
    for pid in range(3):
        vc = [0, 0, 0]
        for idx in range(1, 4):
            vc[pid] = idx
            intervals.append(Interval(pid, idx, VectorClock(vc), 0, 16))
    stats = PairSearchStats()
    pairs = pair_keys(find_concurrent_pairs_pruned(intervals, stats))
    assert len(pairs) == 3 * 9  # 3 proc pairs x 3 x 3
