"""The central soundness/completeness check.

Paper §2: "our system will detect all data races that occur during a given
execution" — and nothing else.  We verify this mechanically: random small
SPMD programs are generated (stores, loads, lock-protected sections,
barrier-separated phases), executed with full access tracing, and the
online detector's race set is compared — exactly, at (kind, word,
interval-pair) granularity — against two independent oracles:

* a brute-force per-access happens-before detector, and
* the Adve-style post-mortem interval analysis.

Any divergence in either direction (missed race or phantom race) fails.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.helpers import online_race_keys, run_app_with_system

from repro.core.baseline import HappensBeforeDetector, PostMortemAnalyzer

#: Shared words available to generated programs (2 pages of 16 words).
NWORDS = 32
NLOCKS = 3


def generate_program(seed: int, nprocs: int, phases: int, ops_per_phase: int):
    """Build per-process op lists: each phase ends with a barrier; ops are
    ("load", addr) / ("store", addr) / ("locked", lid, [ops...])."""
    rng = random.Random(seed)
    program = {pid: [] for pid in range(nprocs)}
    for _phase in range(phases):
        for pid in range(nprocs):
            ops = []
            for _ in range(rng.randrange(ops_per_phase + 1)):
                roll = rng.random()
                addr = rng.randrange(NWORDS)
                if roll < 0.35:
                    ops.append(("store", addr))
                elif roll < 0.7:
                    ops.append(("load", addr))
                else:
                    lid = rng.randrange(NLOCKS)
                    inner = []
                    for _ in range(rng.randrange(1, 4)):
                        a = rng.randrange(NWORDS)
                        inner.append(("store" if rng.random() < 0.5
                                      else "load", a))
                    ops.append(("locked", lid, inner))
            program[pid].append(ops)
    return program


def run_program(program, nprocs, seed):
    def app(env):
        base = env.malloc(NWORDS, name="arena")
        env.barrier()
        for phase_ops in program[env.pid]:
            for op in phase_ops:
                _execute(env, base, op)
            env.barrier()

    return run_app_with_system(
        app, nprocs=nprocs, track_access_trace=True,
        policy="random", seed=seed)


def _execute(env, base, op):
    if op[0] == "store":
        env.store(base + op[1], env.pid + 1)
    elif op[0] == "load":
        env.load(base + op[1])
    else:
        _kind, lid, inner = op
        env.lock(lid)
        for sub in inner:
            _execute(env, base, sub)
        env.unlock(lid)


def _compare(seed: int, nprocs: int, phases: int, ops: int,
             sched_seed: int) -> None:
    program = generate_program(seed, nprocs, phases, ops)
    system, result = run_program(program, nprocs, sched_seed)
    online = online_race_keys(result)
    hb = HappensBeforeDetector(system.store.vc_log)
    oracle = hb.races(result.access_trace)
    assert online == oracle, (
        f"online != happens-before oracle for seed={seed}: "
        f"missed={sorted(oracle - online)[:5]} "
        f"phantom={sorted(online - oracle)[:5]}")
    pm = PostMortemAnalyzer(system.store.vc_log)
    assert pm.races(result.access_trace) == oracle


@pytest.mark.parametrize("seed", range(12))
def test_online_matches_oracles_random_programs(seed):
    _compare(seed, nprocs=3, phases=3, ops=6, sched_seed=seed * 7 + 1)


@pytest.mark.parametrize("seed", range(6))
def test_online_matches_oracles_more_processes(seed):
    _compare(seed + 100, nprocs=5, phases=2, ops=5, sched_seed=seed)


@given(st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_online_matches_oracles_property(seed, sched_seed):
    _compare(seed, nprocs=3, phases=2, ops=5, sched_seed=sched_seed)


def test_trace_disabled_by_default():
    program = generate_program(0, 2, 1, 3)

    def app(env):
        base = env.malloc(NWORDS, name="arena")
        env.barrier()
        for phase_ops in program[env.pid]:
            for op in phase_ops:
                _execute(env, base, op)
            env.barrier()

    _system, result = run_app_with_system(app, nprocs=2)
    assert result.access_trace == []
