"""First-race filtering (§6.4): post-hoc filter and online mode."""

import pytest

from tests.helpers import run_app

from repro.core.first_race import filter_first_races, first_epoch_with_races
from repro.core.report import IntervalRef, RaceKind, RaceReport


def make_report(epoch, addr=0):
    return RaceReport(
        kind=RaceKind.WRITE_WRITE, addr=addr, symbol="x", page=0,
        offset=addr, epoch=epoch,
        a=IntervalRef(0, 1, "write"), b=IntervalRef(1, 1, "write"))


def test_filter_keeps_earliest_epoch_only():
    reports = [make_report(3), make_report(1, 1), make_report(1, 2),
               make_report(5)]
    first = filter_first_races(reports)
    assert [r.epoch for r in first] == [1, 1]


def test_filter_empty():
    assert filter_first_races([]) == []
    with pytest.raises(ValueError):
        first_epoch_with_races([])


def _two_epoch_racy_app(env):
    x = env.malloc(1, name="x")
    y = env.malloc(1, name="y", page_aligned=True)
    env.barrier()
    env.store(x, env.pid)       # epoch A: races on x
    env.barrier()
    env.store(y, env.pid)       # epoch B: races on y
    env.barrier()


def test_online_first_races_only_suppresses_later_epochs():
    full = run_app(_two_epoch_racy_app, nprocs=2)
    assert {r.symbol for r in full.races} == {"x", "y"}

    first_only = run_app(_two_epoch_racy_app, nprocs=2,
                         first_races_only=True)
    assert {r.symbol for r in first_only.races} == {"x"}
    assert first_only.detector_stats.races_suppressed_not_first > 0


def test_online_filter_equivalent_to_posthoc():
    full = run_app(_two_epoch_racy_app, nprocs=2)
    first_only = run_app(_two_epoch_racy_app, nprocs=2,
                         first_races_only=True)
    posthoc = filter_first_races(full.races)
    assert {r.key() for r in posthoc} == {r.key() for r in first_only.races}


def test_races_within_first_epoch_all_kept():
    def app(env):
        x = env.malloc(2, name="x")
        env.barrier()
        env.store(x, env.pid)
        env.store(x + 1, env.pid)
        env.barrier()

    res = run_app(app, nprocs=2, first_races_only=True)
    assert {r.addr for r in res.races} == {0, 1}
