"""The barrier-time detection algorithm, end to end on small programs."""

import pytest

from tests.helpers import online_race_keys, run_app, run_app_with_system

from repro.core.report import RaceKind, involves_symbol


def test_write_write_race_reported_once_per_pair():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        env.store(x, env.pid)
        env.barrier()

    res = run_app(app, nprocs=4)
    ww = [r for r in res.races if r.kind is RaceKind.WRITE_WRITE]
    assert len(ww) == 6  # C(4,2) pairs, deduplicated
    assert all(r.symbol == "x" for r in ww)


def test_read_write_race_reported():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, 1)
        else:
            env.load(x)
        env.barrier()

    res = run_app(app, nprocs=2)
    assert len(res.races) == 1
    r = res.races[0]
    assert r.kind is RaceKind.READ_WRITE
    assert {r.a.access, r.b.access} == {"read", "write"}


def test_read_read_is_never_a_race():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        env.load(x)
        env.barrier()

    res = run_app(app, nprocs=4)
    assert res.races == []


def test_false_sharing_not_a_race_but_uses_bitmaps():
    def app(env):
        x = env.malloc(16, name="x")
        env.barrier()
        env.store(x + env.pid, 1)  # same page, disjoint words
        env.barrier()

    # Filter pinned off: this test exercises the unfiltered bitmap round.
    res = run_app(app, nprocs=4, coarse_filter=False)
    assert res.races == []
    st = res.detector_stats
    assert st.overlapping_pairs > 0      # page-level overlap happened
    assert st.bitmaps_fetched > 0        # bitmaps were needed to decide
    assert st.intervals_used > 0


def test_coarse_filter_skips_bloom_separable_false_sharing():
    """The same false sharing with the two-level filter on: the writes
    share a granule, but the sparse-set Bloom digests are disjoint, so
    every fetch is skipped and the verdicts are unchanged."""
    def app(env):
        x = env.malloc(16, name="x")
        env.barrier()
        env.store(x + env.pid, 1)
        env.barrier()

    res = run_app(app, nprocs=4)  # coarse_filter defaults on
    assert res.races == []
    st = res.detector_stats
    assert st.overlapping_pairs > 0
    assert st.bitmaps_fetched == 0
    assert st.pairs_filtered == st.granule_checks > 0


def test_disjoint_pages_skip_bitmaps_entirely():
    """Paper §3.2: if page lists do not overlap, no bitmap comparison is
    performed even though the intervals are concurrent."""
    def app(env):
        x = env.malloc(4 * 16, name="x", page_aligned=True)
        env.barrier()
        env.store(x + env.pid * 16, 1)   # one page per process
        env.barrier()

    res = run_app(app, nprocs=4)
    st = res.detector_stats
    assert res.races == []
    assert st.concurrent_pairs > 0
    assert st.overlapping_pairs == 0
    assert st.bitmaps_fetched == 0
    assert st.bitmap_comparisons == 0


def test_race_detected_at_word_granularity():
    """Two processes write adjacent words: no race; the same word: race."""
    def app(env):
        x = env.malloc(2, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, 1)
            env.store(x + 1, 1)
        else:
            env.store(x + 1, 2)  # collides on x+1 only
        env.barrier()

    res = run_app(app, nprocs=2)
    assert len(res.races) == 1
    assert res.races[0].addr == res.races[0].page * 16 + 1
    assert res.races[0].symbol == "x+1"


def test_lock_ordering_suppresses_race():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        with env.locked(1):
            env.store(x, env.load(x) + 1)
        env.barrier()

    res = run_app(app, nprocs=4)
    assert res.races == []


def test_partial_synchronization_still_races():
    """One unsynchronized writer among locked updaters: races against all
    of them (the Figure 1 w1-r2 situation generalized)."""
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, -1)   # no lock!
        else:
            with env.locked(1):
                env.store(x, env.load(x) + 1)
        env.barrier()

    res = run_app(app, nprocs=4)
    assert len(res.races) > 0
    # P0 participates in every race.
    assert all(0 in (r.a.pid, r.b.pid) for r in res.races)


def test_races_confined_to_epoch():
    """Accesses in different barrier epochs never race (the barrier
    orders them); the same pattern within one epoch does."""
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        if env.pid == 0:
            env.store(x, 1)
        env.barrier()          # ordering barrier between the accesses
        if env.pid == 1:
            env.store(x, 2)
        env.barrier()

    res = run_app(app, nprocs=2)
    assert res.races == []


def test_detector_stats_accumulate():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        env.store(x, env.pid)
        env.barrier()
        env.store(x, env.pid)
        env.barrier()

    res = run_app(app, nprocs=2)
    st = res.detector_stats
    assert st.epochs_checked >= 3
    assert st.races_found == len(res.races) == 2
    assert st.interval_comparisons > 0
    assert 0 <= st.intervals_used_fraction <= 1
    assert 0 <= st.bitmaps_used_fraction <= 1


def test_race_report_formatting_and_keys():
    def app(env):
        x = env.malloc(1, name="hotspot")
        env.barrier()
        env.store(x, env.pid)
        env.barrier()

    res = run_app(app, nprocs=2)
    r = res.races[0]
    text = r.format()
    assert "DATA RACE" in text and "hotspot" in text
    assert involves_symbol(r, "hotspot")
    # Key is orientation-independent.
    assert r.key() == r.key()
    keys = online_race_keys(res)
    assert len(keys) == len(res.races)


def test_epoch_history_recorded():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        env.store(x, env.pid)     # racy epoch
        env.barrier()
        env.load(x)               # quiet epoch
        env.barrier()

    res = run_app(app, nprocs=2)
    history = res.detector_stats.epoch_history
    assert len(history) == res.detector_stats.epochs_checked
    racy = [h for h in history if h.races > 0]
    assert len(racy) == 1
    assert racy[0].check_list_entries >= 1
    assert racy[0].bitmaps_fetched >= 2
    # Aggregates equal the sum of the history.
    assert sum(h.comparisons for h in history) == \
        res.detector_stats.interval_comparisons
    assert sum(h.races for h in history) == res.detector_stats.races_found
