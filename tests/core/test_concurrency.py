"""Concurrent-interval pair search."""

from repro.core.concurrency import (PairSearchStats, find_concurrent_pairs,
                                    group_by_pid)
from repro.dsm.interval import Interval
from repro.dsm.vector_clock import VectorClock


def iv(pid, index, vc, epoch=0):
    return Interval(pid, index, VectorClock(vc), epoch, 16)


def test_group_by_pid_sorted():
    recs = [iv(1, 2, [0, 2]), iv(0, 1, [1, 0]), iv(1, 1, [0, 1])]
    grouped = group_by_pid(recs)
    assert [r.index for r in grouped[1]] == [1, 2]
    assert [r.index for r in grouped[0]] == [1]


def test_same_process_never_paired():
    stats = PairSearchStats()
    recs = [iv(0, 1, [1, 0]), iv(0, 2, [2, 0])]
    assert list(find_concurrent_pairs(recs, stats)) == []
    assert stats.comparisons == 0


def test_finds_concurrent_cross_process_pairs():
    stats = PairSearchStats()
    recs = [iv(0, 1, [1, 0]), iv(1, 1, [0, 1])]
    pairs = list(find_concurrent_pairs(recs, stats))
    assert len(pairs) == 1
    assert stats.comparisons == 1
    assert stats.concurrent_pairs == 1


def test_ordered_pairs_excluded():
    # P1's interval has seen P0's (vc[0] >= 1): ordered.
    stats = PairSearchStats()
    recs = [iv(0, 1, [1, 0]), iv(1, 1, [1, 1])]
    assert list(find_concurrent_pairs(recs, stats)) == []
    assert stats.comparisons == 1
    assert stats.concurrent_pairs == 0


def test_pair_order_deterministic():
    recs = [iv(2, 1, [0, 0, 1]), iv(0, 1, [1, 0, 0]), iv(1, 1, [0, 1, 0])]
    stats = PairSearchStats()
    pairs = [(a.pid, b.pid) for a, b in find_concurrent_pairs(recs, stats)]
    assert pairs == [(0, 1), (0, 2), (1, 2)]


def test_comparison_count_quadratic_bound():
    """O(i^2 p^2): with i intervals per proc and p procs, at most
    (p choose 2) * i^2 comparisons (paper §4)."""
    recs = []
    for pid in range(3):
        for idx in range(1, 5):
            vc = [0, 0, 0]
            vc[pid] = idx
            recs.append(iv(pid, idx, vc))
    stats = PairSearchStats()
    list(find_concurrent_pairs(recs, stats))
    assert stats.comparisons == 3 * 4 * 4  # 3 proc pairs x 4 x 4
    assert stats.intervals == 12


def test_mixed_ordering_chain():
    """A release/acquire chain: a ≺ b ≺ c, with d concurrent to all."""
    a = iv(0, 1, [1, 0, 0])
    b = iv(1, 1, [1, 1, 0])   # saw a
    c = iv(0, 2, [2, 1, 0])   # saw b
    d = iv(2, 1, [0, 0, 1])
    stats = PairSearchStats()
    pairs = {(x.pid, x.index, y.pid, y.index)
             for x, y in find_concurrent_pairs([a, b, c, d], stats)}
    assert (0, 1, 1, 1) not in pairs
    assert (0, 2, 1, 1) not in pairs
    assert {(0, 1, 2, 1), (0, 2, 2, 1), (1, 1, 2, 1)} <= pairs
