"""End-to-end robustness: fault schedules are replayable, detection
survives a lossy network, and the degradation path is explicit.

The acceptance bar (ISSUE 2): with a fixed ``--fault-seed`` the whole
drop/duplicate/reorder schedule — and therefore the final race report —
is identical across runs; with moderate fault rates every app completes
and reports the *same* races as a reliable run; and when the bitmap round
is forced to fail, affected pages are reported at page granularity,
flagged, never silently dropped.
"""

import pytest

from repro.apps.registry import get_app
from repro.net.faults import FaultPlan, FaultRates
from repro.sim.costmodel import CostCategory

FAULTY = dict(loss_rate=0.1, duplicate_rate=0.05, reorder_rate=0.05,
              fault_seed=5)


def run_queue(**overrides):
    spec = get_app("queue_racy")
    return spec.run(nprocs=3, **overrides)


def race_lines(result):
    return sorted(str(r) for r in result.races)


def test_same_fault_seed_identical_schedule_and_report():
    a, b = run_queue(**FAULTY), run_queue(**FAULTY)
    assert race_lines(a) == race_lines(b)
    assert a.traffic.fault_summary() == b.traffic.fault_summary()
    assert a.traffic.summary() == b.traffic.summary()
    assert a.runtime_cycles == b.runtime_cycles
    assert a.traffic.drops > 0  # the schedule actually exercised faults


def test_different_fault_seed_different_schedule():
    a = run_queue(**FAULTY)
    b = run_queue(**dict(FAULTY, fault_seed=6))
    assert a.traffic.fault_summary() != b.traffic.fault_summary()


def test_lossy_run_reports_same_races_as_reliable_run():
    lossy, clean = run_queue(**FAULTY), run_queue()
    assert race_lines(lossy) == race_lines(clean)
    assert all(r.granularity == "word" for r in lossy.races)


@pytest.mark.parametrize("app", ["water", "tsp"])
def test_registered_apps_complete_and_agree_under_loss(app):
    spec = get_app(app)
    lossy = spec.run(nprocs=4, loss_rate=0.08, fault_seed=7)
    clean = spec.run(nprocs=4)
    assert race_lines(lossy) == race_lines(clean)
    assert lossy.traffic.retransmits > 0
    ledger = lossy.aggregate_ledger()
    assert ledger.totals[CostCategory.RETRANSMIT] > 0


def test_faults_disabled_is_byte_identical():
    clean_a, clean_b = run_queue(), run_queue()
    assert clean_a.runtime_cycles == clean_b.runtime_cycles
    assert clean_a.traffic.fault_summary() == {
        "drops": 0, "retransmits": 0, "duplicates": 0,
        "reorders": 0, "acks": 0, "retry_failures": 0}
    ledger = clean_a.aggregate_ledger()
    assert ledger.totals[CostCategory.RETRANSMIT] == 0.0
    assert "ack" not in clean_a.traffic.messages_by_tag


def test_bitmap_round_failure_degrades_to_page_granularity():
    # Drop every bitmap_reply with a tiny budget: the master can never
    # retrieve remote word bitmaps, so every remote check entry must
    # surface as an explicitly flagged page-granularity report.
    plan = FaultPlan(by_tag={"bitmap_reply": FaultRates(drop=0.99)}, seed=1)
    degraded = run_queue(fault_plan=plan, retry_budget=2)
    clean = run_queue()
    assert clean.races  # the workload really races
    assert degraded.races, "degradation must not silently drop reports"
    page_reports = [r for r in degraded.races if r.granularity == "page"]
    assert page_reports
    for r in page_reports:
        assert "page-granularity" in str(r)
        assert r.offset == 0
    st = degraded.detector_stats
    assert st.bitmap_rounds_failed > 0
    assert st.page_granularity_reports == len(page_reports)
    assert degraded.traffic.retry_failures > 0
    # Every page that carried a word-level race in the clean run is
    # covered by some report (word or page) in the degraded run.
    degraded_pages = {r.page for r in degraded.races}
    assert {r.page for r in clean.races} <= degraded_pages


def test_degraded_reports_count_in_detector_stats():
    plan = FaultPlan(by_tag={"bitmap_reply": FaultRates(drop=0.99)}, seed=1)
    degraded = run_queue(fault_plan=plan, retry_budget=2)
    assert degraded.detector_stats.races_found == len(degraded.races)
