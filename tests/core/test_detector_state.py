"""Detector-state serialization: the substrate of coordinator failover.

``RaceDetector.serialize_state`` / ``restore_state`` must round-trip the
*entire* mutable detection state — reports, unverifiable entries, the
cross-epoch deduplication keys, aggregate statistics and the per-epoch
history — through canonical JSON, because that is exactly what migrates
to a newly elected coordinator when the master dies.  A lossy round trip
would silently corrupt every post-failover report.
"""

import json

import pytest

from repro.apps.registry import get_app
from repro.core.detector import DetectorStats, RaceDetector
from repro.core.report import decode_report_key, encode_report_key
from repro.dsm.cvm import CVM


def _run_system(app_name, nprocs=4, **overrides):
    """Run an app and hand back the live CVM (its detector retains the
    full end-of-run detection state)."""
    spec = get_app(app_name)
    cfg = spec.config(nprocs=nprocs, **overrides)
    system = CVM(cfg)
    system.run(spec.func, spec.default_params)
    return system


@pytest.fixture(scope="module")
def racy_system():
    return _run_system("queue_racy", nprocs=3)


def _fresh_detector(system, master_pid):
    return system._make_detector(master_pid)


# ---------------------------------------------------------------------- #
# Round trip through canonical JSON, restored on a *different* pid.
# ---------------------------------------------------------------------- #
def test_round_trip_is_a_fixpoint(racy_system):
    det = racy_system.detector
    state = det.serialize_state()
    text = json.dumps(state, sort_keys=True)
    clone = _fresh_detector(racy_system, master_pid=2)
    clone.restore_state(json.loads(text))
    assert clone.serialize_state() == state
    assert clone.master_pid == 2  # identity stays the successor's


def test_round_trip_preserves_reports_exactly(racy_system):
    det = racy_system.detector
    assert det.races  # queue_racy must actually race
    clone = _fresh_detector(racy_system, master_pid=1)
    clone.restore_state(json.loads(json.dumps(det.serialize_state())))
    assert [str(r) for r in clone.races] == [str(r) for r in det.races]
    assert ([str(r) for r in clone.unverifiable]
            == [str(r) for r in det.unverifiable])
    assert clone.stats.races_found == det.stats.races_found


def test_round_trip_preserves_dedup_state(racy_system):
    """`RaceReport.key()` excludes the epoch, so `_seen_keys` must migrate
    with the role: dropping it would re-report every old race the first
    time the new coordinator sees the pair again."""
    det = racy_system.detector
    assert det._seen_keys
    clone = _fresh_detector(racy_system, master_pid=2)
    clone.restore_state(det.serialize_state())
    assert clone._seen_keys == det._seen_keys
    assert clone._unverifiable_pair_keys == det._unverifiable_pair_keys
    assert clone._first_race_epoch == det._first_race_epoch


def test_round_trip_preserves_stats_and_history(racy_system):
    det = racy_system.detector
    assert det.stats.epoch_history  # the run had epochs
    restored = DetectorStats.from_dict(det.stats.to_dict())
    assert restored == det.stats


def test_serialized_state_is_json_clean(racy_system):
    # No Python-only types may leak into the state: the journal is real
    # JSON on the wire.
    state = racy_system.detector.serialize_state()
    assert json.loads(json.dumps(state)) == json.loads(
        json.dumps(json.loads(json.dumps(state))))


def test_report_key_codec_round_trips(racy_system):
    for key in racy_system.detector._seen_keys:
        assert decode_report_key(encode_report_key(key)) == key


# ---------------------------------------------------------------------- #
# Mid-epoch snapshot: serialize after epoch k, restore on another pid,
# finish the remaining epochs — reports must match the uninterrupted
# detector byte for byte, across a seed sweep.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_mid_run_migration_reproduces_reports(seed):
    uninterrupted = _run_system("water", seed=seed)
    migrated = _run_system("water", seed=seed, master_failover=True,
                           crash_at=((0, 1),))
    assert (sorted(str(r) for r in migrated.detector.races)
            == sorted(str(r) for r in uninterrupted.detector.races))
    # The migrated detector genuinely is a different object on a
    # different pid, restored through the journal.
    assert migrated.coordinator.pid == 1
    assert migrated.detector.master_pid == 1
    assert migrated.coordinator.stats.elections_held == 1
