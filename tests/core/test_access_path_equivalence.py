"""Access fast path (batched Env engine): full-pipeline equivalence.

Mirrors test_fast_path_equivalence.py one layer down: every registered
application runs end to end under both ``access_fast_path`` settings —
the fused-charge batched engine (default) versus the per-word scalar
chain (the paper's literal one-call-per-access instrumentation) — and
*everything observable* must match: race reports, detector statistics,
access counters, traffic totals, the per-process virtual-time ledgers,
and the final runtime.  That equality is what lets the batched engine be
the default while Tables 1-3 and Figures 3-4 stay byte-identical, and it
is the correctness gate of ``benchmarks/bench_endtoend.py``.
"""

import pytest

from repro.apps.registry import APPLICATIONS, EXTRAS, get_app
from repro.sim.costmodel import CostCategory

ALL_APPS = sorted(APPLICATIONS) + sorted(EXTRAS)


def paired_runs(app: str, nprocs: int = 8, **overrides):
    spec = get_app(app)
    if app == "queue_racy":
        nprocs = 3
    fast = spec.run(nprocs=nprocs, access_fast_path=True, **overrides)
    ref = spec.run(nprocs=nprocs, access_fast_path=False, **overrides)
    return fast, ref


def assert_equivalent(fast, ref):
    assert [r.key() for r in fast.races] == [r.key() for r in ref.races]
    assert fast.detector_stats == ref.detector_stats
    assert fast.runtime_cycles == ref.runtime_cycles
    assert fast.shared_instr_calls == ref.shared_instr_calls
    assert fast.traffic.total_messages == ref.traffic.total_messages
    assert fast.traffic.total_bytes == ref.traffic.total_bytes
    assert len(fast.ledgers) == len(ref.ledgers)
    for lf, lr in zip(fast.ledgers, ref.ledgers):
        assert lf.totals == lr.totals


@pytest.mark.parametrize("app", ALL_APPS)
def test_batched_matches_scalar(app):
    fast, ref = paired_runs(app)
    assert_equivalent(fast, ref)


@pytest.mark.parametrize("app", ["sor", "water"])
def test_batched_matches_scalar_16_procs(app):
    fast, ref = paired_runs(app, nprocs=16)
    assert_equivalent(fast, ref)


def test_batched_matches_scalar_detection_off():
    """The uninstrumented baseline (slowdown denominators) must agree too."""
    fast, ref = paired_runs("sor", detection=False)
    assert_equivalent(fast, ref)


def test_batched_matches_scalar_multi_writer_diffs():
    """MW diff mode skips store instrumentation; both engines must skip
    the identical charges."""
    fast, ref = paired_runs("water", protocol="mw",
                            diff_write_detection=True)
    assert_equivalent(fast, ref)


def test_batched_matches_scalar_inline_instrumentation():
    """inline mode zeroes the proc-call component of the fused charge."""
    fast, ref = paired_runs("fft", inline_instrumentation=True)
    assert_equivalent(fast, ref)


def test_batched_matches_scalar_under_faults():
    """Fault configs route traffic through the reliable channel; retry
    timeouts interleave with access charges and must still line up."""
    fast, ref = paired_runs("tsp", loss_rate=0.05, fault_seed=3)
    assert_equivalent(fast, ref)
    assert fast.traffic.retransmits == ref.traffic.retransmits > 0


def test_batched_matches_scalar_under_crashes():
    """Crash configs run the general engine on the fast side too (the
    crasher hook needs per-chunk control); verdicts must not move."""
    fast, ref = paired_runs("water", crash_rate=0.01, crash_seed=7,
                            checkpoint=True)
    assert_equivalent(fast, ref)
    assert fast.crash_stats.crashes == ref.crash_stats.crashes > 0


def test_fused_charge_decomposition_matches():
    """The fused advance_split attributes exactly what the scalar chain
    attributes, category by category."""
    fast, ref = paired_runs("sor")
    for cat in (CostCategory.BASE, CostCategory.PROC_CALL,
                CostCategory.ACCESS_CHECK):
        assert fast.aggregate_ledger().totals.get(cat, 0.0) == \
            ref.aggregate_ledger().totals.get(cat, 0.0)


def test_batched_is_the_default():
    fast, ref = paired_runs("water")
    assert fast.config.access_fast_path is True
    assert ref.config.access_fast_path is False
