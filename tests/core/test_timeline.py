"""Interval timeline rendering."""

import pytest

from tests.helpers import run_app_with_system

from repro.core.baseline.postmortem import ComputationEvent
from repro.core.timeline import (HbEdge, _collapse_redundant, direct_edges,
                                 render_timeline, timeline_from_run)
from repro.dsm.vector_clock import VectorClock


def ev(pid, index, vc, reads=(), writes=()):
    return ComputationEvent(pid, index, VectorClock(vc),
                            reads=set(reads), writes=set(writes))


def test_direct_edges_from_vcs():
    events = [ev(0, 1, [1, 0]), ev(1, 2, [1, 2])]
    edges = direct_edges(events)
    assert [str(e) for e in edges] == ["P0:1 -> P1:2"]


def test_edges_skip_unlogged_sources():
    events = [ev(1, 2, [5, 2])]  # P0:5 not in the event set
    assert direct_edges(events) == []


def test_collapse_keeps_newest():
    edges = [HbEdge(0, 1, 1, 3), HbEdge(0, 2, 1, 3)]
    kept = _collapse_redundant(edges)
    assert len(kept) == 1 and kept[0].src_index == 2


def test_render_marks_racy_words():
    events = [ev(0, 1, [1, 0], writes=[7]), ev(1, 1, [0, 1], writes=[7])]
    out = render_timeline(events, racy_words={7})
    assert "1! w:7" in out
    assert "concurrent racy pairs:" in out
    assert "P0:1 || P1:1 on words [7]" in out


def test_render_empty():
    assert render_timeline([]) == "(no intervals)"


def test_render_orders_lanes_and_edges():
    events = [ev(0, 1, [1, 0], writes=[3]),
              ev(0, 2, [2, 1]),
              ev(1, 1, [0, 1], reads=[3]),
              ev(1, 2, [1, 2])]
    out = render_timeline(events)
    lanes = out.splitlines()
    assert lanes[0].startswith("P0 | [1 w:3]--[2]")
    assert lanes[1].startswith("P1 | [1 r:3]--[2]")
    assert "P0:1 -> P1:2" in out
    assert "P1:1 -> P0:2" in out


def test_timeline_from_traced_run():
    def app(env):
        x = env.malloc(1, name="x")
        env.barrier()
        env.store(x, env.pid)   # racy
        env.barrier()

    system, res = run_app_with_system(app, nprocs=2,
                                      track_access_trace=True)
    out = timeline_from_run(system, res)
    assert "P0 |" in out and "P1 |" in out
    assert "!" in out                       # the racy word is marked
    assert "concurrent racy pairs:" in out


def test_timeline_requires_trace():
    def app(env):
        env.barrier()

    system, res = run_app_with_system(app, nprocs=2)
    with pytest.raises(ValueError):
        timeline_from_run(system, res)


def test_access_note_truncation():
    e = ev(0, 1, [1], writes=range(10))
    out = render_timeline([e])
    assert "…" in out
