"""Race report structure, keys and formatting."""

from repro.core.report import (IntervalRef, RaceKind, RaceReport,
                               involves_symbol)


def make(kind=RaceKind.WRITE_WRITE, addr=5, symbol="x+1",
         a=(0, 3, "write"), b=(1, 2, "write")):
    return RaceReport(kind=kind, addr=addr, symbol=symbol, page=0,
                      offset=addr, epoch=1,
                      a=IntervalRef(*a), b=IntervalRef(*b))


def test_key_is_orientation_independent():
    fwd = make(a=(0, 3, "write"), b=(1, 2, "write"))
    rev = make(a=(1, 2, "write"), b=(0, 3, "write"))
    assert fwd.key() == rev.key()


def test_key_distinguishes_kind_addr_and_sides():
    base = make()
    assert base.key() != make(kind=RaceKind.READ_WRITE,
                              a=(0, 3, "read")).key()
    assert base.key() != make(addr=6).key()
    assert base.key() != make(b=(1, 4, "write")).key()


def test_format_mentions_everything_actionable():
    text = make().format()
    for token in ("DATA RACE", "write-write", "x+1", "addr=5", "epoch 1",
                  "P0 interval 3", "P1 interval 2"):
        assert token in text
    assert str(make()) == make().format()


def test_involves_symbol_matches_offsets():
    r = make(symbol="grid+12")
    assert involves_symbol(r, "grid")
    assert not involves_symbol(r, "grid2")
    exact = make(symbol="grid")
    assert involves_symbol(exact, "grid")
    assert not involves_symbol(make(symbol="gridlock"), "grid")


def test_interval_ref_str():
    assert str(IntervalRef(2, 7, "read")) == "P2 interval 7 (read)"
