"""Unit tests for the happens-before oracle itself."""

import pytest

from repro.core.baseline.hb_detector import HappensBeforeDetector, make_race_key
from repro.core.baseline.trace import TraceEvent
from repro.dsm.vector_clock import VectorClock


def vc_log(entries):
    return {key: VectorClock(vec) for key, vec in entries.items()}


def test_concurrent_write_write_found():
    log = vc_log({(0, 1): [1, 0], (1, 1): [0, 1]})
    trace = [TraceEvent(0, 1, addr=5, count=1, is_write=True),
             TraceEvent(1, 1, addr=5, count=1, is_write=True)]
    races = HappensBeforeDetector(log).races(trace)
    assert races == {make_race_key("write-write", 5,
                                   (0, 1, "write"), (1, 1, "write"))}


def test_ordered_accesses_not_raced():
    log = vc_log({(0, 1): [1, 0], (1, 2): [1, 2]})  # (1,2) saw (0,1)
    trace = [TraceEvent(0, 1, 5, 1, True), TraceEvent(1, 2, 5, 1, True)]
    assert HappensBeforeDetector(log).races(trace) == set()


def test_read_read_not_raced():
    log = vc_log({(0, 1): [1, 0], (1, 1): [0, 1]})
    trace = [TraceEvent(0, 1, 5, 1, False), TraceEvent(1, 1, 5, 1, False)]
    assert HappensBeforeDetector(log).races(trace) == set()


def test_same_process_not_raced():
    log = vc_log({(0, 1): [1, 0], (0, 2): [2, 0]})
    trace = [TraceEvent(0, 1, 5, 1, True), TraceEvent(0, 2, 5, 1, True)]
    assert HappensBeforeDetector(log).races(trace) == set()


def test_range_events_expand_to_words():
    log = vc_log({(0, 1): [1, 0], (1, 1): [0, 1]})
    trace = [TraceEvent(0, 1, addr=4, count=4, is_write=True),
             TraceEvent(1, 1, addr=6, count=1, is_write=False)]
    races = HappensBeforeDetector(log).races(trace)
    assert {addr for _k, addr, _s in races} == {6}
    det = HappensBeforeDetector(log)
    assert det.racy_words(trace) == {6}


def test_duplicate_accesses_deduplicated():
    log = vc_log({(0, 1): [1, 0], (1, 1): [0, 1]})
    trace = [TraceEvent(0, 1, 5, 1, True)] * 3 + [TraceEvent(1, 1, 5, 1, True)]
    assert len(HappensBeforeDetector(log).races(trace)) == 1


def test_missing_vc_raises():
    det = HappensBeforeDetector({})
    trace = [TraceEvent(0, 1, 5, 1, True), TraceEvent(1, 1, 5, 1, True)]
    with pytest.raises(KeyError):
        det.races(trace)
