"""Adve-style post-mortem analyzer: event building and log accounting."""

import pytest

from repro.core.baseline.postmortem import PostMortemAnalyzer
from repro.core.baseline.trace import TRACE_EVENT_BYTES, TraceEvent
from repro.dsm.vector_clock import VectorClock


def log(entries):
    return {key: VectorClock(vec) for key, vec in entries.items()}


def test_build_events_aggregates_attributes():
    pm = PostMortemAnalyzer(log({(0, 1): [1, 0]}))
    trace = [TraceEvent(0, 1, 3, 2, True), TraceEvent(0, 1, 9, 1, False)]
    [ev] = pm.build_events(trace)
    assert ev.writes == {3, 4}
    assert ev.reads == {9}
    assert not ev.empty


def test_build_events_missing_ordering_info():
    pm = PostMortemAnalyzer({})
    with pytest.raises(KeyError):
        pm.build_events([TraceEvent(0, 1, 3, 1, True)])


def test_races_interval_granularity():
    pm = PostMortemAnalyzer(log({(0, 1): [1, 0], (1, 1): [0, 1]}))
    trace = [TraceEvent(0, 1, 3, 1, True), TraceEvent(1, 1, 3, 1, False)]
    races = pm.races(trace)
    assert len(races) == 1
    kind, addr, _sides = next(iter(races))
    assert (kind, addr) == ("read-write", 3)


def test_log_bytes_counts_every_event():
    trace = [TraceEvent(0, 1, 3, 1, True)] * 10
    assert PostMortemAnalyzer.log_bytes(trace) == 10 * TRACE_EVENT_BYTES
