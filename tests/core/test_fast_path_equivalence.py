"""Fast-path detection engine: full-pipeline equivalence.

The synthetic-interval tests in test_concurrency_pruned.py establish the
primitives; these run every registered application end to end under both
``detector_fast_path`` settings and assert that *everything observable*
matches: race reports, the whole DetectorStats (including per-epoch
history), the per-process virtual-time ledgers, and the final runtime —
the guarantee that lets the fast path be the default engine while
Tables 1-3 and Figures 3-4 stay bit-identical.
"""

import pytest

from repro.apps.registry import APPLICATIONS, EXTRAS, get_app
from repro.sim.costmodel import CostCategory

ALL_APPS = sorted(APPLICATIONS) + sorted(EXTRAS)


def paired_runs(app: str, **overrides):
    spec = get_app(app)
    fast = spec.run(nprocs=8, detector_fast_path=True, **overrides)
    ref = spec.run(nprocs=8, detector_fast_path=False, **overrides)
    return fast, ref


def assert_equivalent(fast, ref):
    assert [r.key() for r in fast.races] == [r.key() for r in ref.races]
    assert fast.detector_stats == ref.detector_stats
    assert fast.runtime_cycles == ref.runtime_cycles
    assert len(fast.ledgers) == len(ref.ledgers)
    for lf, lr in zip(fast.ledgers, ref.ledgers):
        assert lf.totals == lr.totals


@pytest.mark.parametrize("app", ALL_APPS)
def test_fast_path_matches_reference(app):
    fast, ref = paired_runs(app)
    assert_equivalent(fast, ref)


@pytest.mark.parametrize("app", ["tsp", "water"])
def test_fast_path_matches_reference_16_procs(app):
    """The stress shape from the wall-clock benchmark: more processes,
    more intervals per epoch, more concurrent pairs."""
    spec = get_app(app)
    fast = spec.run(nprocs=16, detector_fast_path=True)
    ref = spec.run(nprocs=16, detector_fast_path=False)
    assert_equivalent(fast, ref)


def test_fast_path_matches_reference_consolidation():
    """Consolidation passes call run_epoch mid-epoch on partial interval
    sets; the engines must agree there too."""
    fast, ref = paired_runs("tsp", consolidation_interval=6)
    assert_equivalent(fast, ref)


def test_fast_path_matches_reference_first_races_only():
    fast, ref = paired_runs("water", first_races_only=True)
    assert_equivalent(fast, ref)


def test_fast_path_matches_reference_multi_writer():
    fast, ref = paired_runs("water", protocol="mw",
                            diff_write_detection=True)
    assert_equivalent(fast, ref)


def test_fast_path_is_the_default_and_decoupled_from_charging():
    """The default config uses the fast engine, and its INTERVALS ledger
    charge equals the reference engine's — virtual time stays the model's
    even though the executed algorithm changed."""
    fast, ref = paired_runs("water")
    agg_fast = fast.aggregate_ledger().totals[CostCategory.INTERVALS]
    agg_ref = ref.aggregate_ledger().totals[CostCategory.INTERVALS]
    assert agg_fast == agg_ref > 0
    assert fast.config.detector_fast_path is True
    assert ref.config.detector_fast_path is False
