"""Virtual clocks and cost ledgers."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.costmodel import (OVERHEAD_CATEGORIES, CostCategory,
                                 CostLedger, CostModel)


def test_advance_accumulates_and_tags():
    clock = VirtualClock()
    clock.advance(100)
    clock.advance(50, CostCategory.PROC_CALL)
    assert clock.now == 150
    assert clock.ledger.base == 100
    assert clock.ledger.totals[CostCategory.PROC_CALL] == 50
    assert clock.ledger.overhead == 50
    assert clock.ledger.total == 150


def test_negative_advance_rejected():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_wait_until_moves_forward_only():
    clock = VirtualClock()
    clock.advance(100)
    assert clock.wait_until(80) == 100   # no time travel
    assert clock.wait_until(250) == 250
    # Idle time is not charged to any category.
    assert clock.ledger.total == 100


def test_ledger_merge():
    a, b = CostLedger(), CostLedger()
    a.charge(CostCategory.BASE, 10)
    b.charge(CostCategory.BASE, 5)
    b.charge(CostCategory.BITMAPS, 3)
    a.merge(b)
    assert a.base == 15
    assert a.totals[CostCategory.BITMAPS] == 3


def test_breakdown_relative_to_base():
    ledger = CostLedger()
    ledger.charge(CostCategory.BASE, 200)
    ledger.charge(CostCategory.ACCESS_CHECK, 50)
    bd = ledger.breakdown()
    assert bd["access_check"] == pytest.approx(0.25)
    assert sum(bd.values()) == pytest.approx(0.25)


def test_breakdown_with_zero_base():
    ledger = CostLedger()
    ledger.charge(CostCategory.BITMAPS, 50)
    assert all(v == 0.0 for v in ledger.breakdown().values())


def test_overhead_categories_cover_everything_but_base():
    # RETRANSMIT (network robustness), RECOVERY (crash tolerance),
    # FAILOVER (coordinator election/state migration), SHARDED_DETECT
    # (detection-sharding protocol traffic), RECORD (two-phase
    # record-mode trace capture) and COARSE_FILTER (two-level filter
    # digest carriage and granule checks) are overhead outside the
    # paper's Figure 3 taxonomy: is_overhead, but deliberately not
    # Figure 3 categories (keeps regenerated tables byte-identical with
    # faults, crashes, failover, sharding, record mode and the filter
    # off).
    assert set(OVERHEAD_CATEGORIES) == \
        set(CostCategory) - {CostCategory.BASE, CostCategory.RETRANSMIT,
                             CostCategory.RECOVERY, CostCategory.FAILOVER,
                             CostCategory.SHARDED_DETECT,
                             CostCategory.RECORD,
                             CostCategory.COARSE_FILTER}
    assert all(cat.is_overhead for cat in OVERHEAD_CATEGORIES)
    for cat in (CostCategory.RETRANSMIT, CostCategory.RECOVERY,
                CostCategory.FAILOVER, CostCategory.SHARDED_DETECT,
                CostCategory.RECORD, CostCategory.COARSE_FILTER):
        assert cat.is_overhead
        assert cat not in OVERHEAD_CATEGORIES
    assert not CostCategory.BASE.is_overhead


def test_cost_model_conversions():
    cm = CostModel(clock_hz=100.0)
    assert cm.seconds(250.0) == pytest.approx(2.5)
    assert cm.message_cycles(100) == pytest.approx(
        cm.msg_latency + 100 * cm.cycles_per_byte)


def test_negative_charge_rejected():
    ledger = CostLedger()
    with pytest.raises(ValueError):
        ledger.charge(CostCategory.BASE, -5)
