"""Scheduler: determinism, blocking, failure and deadlock handling."""

import pytest

from repro.errors import DeadlockError, ProcessFailure, SimulationError
from repro.sim.policy import RandomPolicy, RoundRobinPolicy
from repro.sim.scheduler import ProcState, Scheduler


def test_runs_all_processes_to_completion():
    sched = Scheduler()
    for i in range(5):
        sched.spawn(lambda k=i: k * 10)
    sched.run()
    assert sched.results() == [0, 10, 20, 30, 40]


def test_yield_round_robin_interleaves():
    sched = Scheduler(policy=RoundRobinPolicy())
    order = []

    def worker(pid):
        for step in range(3):
            order.append((pid, step))
            sched.yield_control(pid)

    for i in range(3):
        sched.spawn(worker, i)
    sched.run()
    # Strict round-robin: steps proceed in lockstep.
    assert order == [(0, 0), (1, 0), (2, 0),
                     (0, 1), (1, 1), (2, 1),
                     (0, 2), (1, 2), (2, 2)]


def test_yield_fast_path_when_alone():
    sched = Scheduler()

    def worker(pid):
        for _ in range(100):
            sched.yield_control(pid)
        return "done"

    sched.spawn(worker, 0)
    sched.run()
    assert sched.results() == ["done"]


def test_block_and_unblock():
    sched = Scheduler()
    events = []

    def waiter(pid):
        events.append("wait")
        sched.block(pid, "test")
        events.append("resumed")

    def waker(pid):
        sched.yield_control(pid)  # let the waiter block first
        events.append("wake")
        sched.unblock(0)

    sched.spawn(waiter, 0)
    sched.spawn(waker, 1)
    sched.run()
    assert events == ["wait", "wake", "resumed"]


def test_unblock_is_idempotent_on_ready_process():
    sched = Scheduler()

    def worker(pid):
        sched.unblock(pid)  # self, already running: no-op
        return pid

    sched.spawn(worker, 0)
    sched.run()
    assert sched.results() == [0]


def test_deadlock_detected():
    sched = Scheduler()

    def stuck(pid):
        sched.block(pid, f"stuck-{pid}")

    sched.spawn(stuck, 0)
    sched.spawn(stuck, 1)
    with pytest.raises(DeadlockError) as exc:
        sched.run()
    assert 0 in exc.value.blocked and 1 in exc.value.blocked


def test_process_failure_propagates_with_cause():
    sched = Scheduler()

    def boom(pid):
        raise ValueError("kapow")

    sched.spawn(boom, 0)
    with pytest.raises(ProcessFailure) as exc:
        sched.run()
    assert exc.value.pid == 0
    assert isinstance(exc.value.original, ValueError)


def test_failure_releases_other_threads():
    sched = Scheduler()

    def blocker(pid):
        sched.block(pid, "forever")

    def boom(pid):
        sched.yield_control(pid)
        raise RuntimeError("die")

    sched.spawn(blocker, 0)
    sched.spawn(boom, 1)
    with pytest.raises(ProcessFailure):
        sched.run()
    # The blocked process's thread must be released (daemon unwind); its
    # state is whatever it was, but run() returned — the key property.


def test_spawn_after_run_rejected():
    sched = Scheduler()
    sched.spawn(lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.spawn(lambda: None)


def test_run_twice_rejected():
    sched = Scheduler()
    sched.spawn(lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.run()


def test_random_policy_deterministic_per_seed():
    def trace_for(seed):
        sched = Scheduler(policy=RandomPolicy(seed))
        order = []

        def worker(pid):
            for _ in range(5):
                order.append(pid)
                sched.yield_control(pid)

        for i in range(4):
            sched.spawn(worker, i)
        sched.run()
        return order

    assert trace_for(7) == trace_for(7)
    assert trace_for(7) != trace_for(8)  # overwhelmingly likely


def test_others_ready():
    sched = Scheduler()
    seen = []

    def worker(pid):
        seen.append((pid, sched.others_ready(pid)))

    sched.spawn(worker, 0)
    sched.spawn(worker, 1)
    sched.run()
    # P0 runs while P1 is still ready; by the time P1 runs, P0 is done.
    assert seen == [(0, True), (1, False)]


def test_scheduler_requires_token_for_calls():
    sched = Scheduler()

    def worker(pid):
        return pid

    sched.spawn(worker, 0)
    # Calling from outside (dispatcher context, no token) must fail.
    with pytest.raises(SimulationError):
        sched.yield_control(0)


def test_clocks_are_per_process():
    sched = Scheduler()

    def worker(pid):
        sched.processes[pid].clock.advance(100 * (pid + 1))

    for i in range(3):
        sched.spawn(worker, i)
    sched.run()
    assert [c.now for c in sched.clocks()] == [100, 200, 300]


def test_max_switches_guards_livelock():
    sched = Scheduler(max_switches=10)

    def worker(pid):
        while True:
            sched.yield_control(pid)

    sched.spawn(worker, 0)
    sched.spawn(worker, 1)
    with pytest.raises((SimulationError, ProcessFailure)):
        sched.run()
