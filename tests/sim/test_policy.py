"""Scheduling policies."""

import pytest

from repro.sim.policy import RandomPolicy, RoundRobinPolicy, make_policy


def test_round_robin_cycles_in_pid_order():
    p = RoundRobinPolicy()
    ready = [2, 0, 5]
    assert p.pick(ready, None) == 0
    assert p.pick(ready, 0) == 2
    assert p.pick(ready, 2) == 5
    assert p.pick(ready, 5) == 0  # wraps


def test_round_robin_skips_missing_pids():
    p = RoundRobinPolicy()
    assert p.pick([1, 3], 1) == 3
    assert p.pick([1, 3], 2) == 3
    assert p.pick([1, 3], 3) == 1


def test_round_robin_empty_ready_rejected():
    with pytest.raises(ValueError):
        RoundRobinPolicy().pick([], None)


def test_random_policy_is_seed_deterministic():
    seq1 = [RandomPolicy(42).pick(list(range(8)), None) for _ in range(1)]
    p1, p2 = RandomPolicy(42), RandomPolicy(42)
    picks1 = [p1.pick(list(range(8)), None) for _ in range(20)]
    picks2 = [p2.pick(list(range(8)), None) for _ in range(20)]
    assert picks1 == picks2


def test_random_policy_picks_only_ready():
    p = RandomPolicy(0)
    for _ in range(50):
        assert p.pick([3, 7], None) in (3, 7)


def test_make_policy():
    assert isinstance(make_policy("round_robin"), RoundRobinPolicy)
    assert isinstance(make_policy("random", seed=5), RandomPolicy)
    with pytest.raises(ValueError):
        make_policy("lottery")
