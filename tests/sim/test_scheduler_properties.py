"""Property tests: the scheduler against a reference state machine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.policy import RandomPolicy, RoundRobinPolicy
from repro.sim.scheduler import Scheduler


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=20, deadline=None)
def test_all_work_completes_regardless_of_policy(nprocs, seed):
    """Every process's yields and results are preserved under any seed."""
    sched = Scheduler(policy=RandomPolicy(seed))
    counts = [0] * nprocs

    def worker(pid):
        for _ in range(5):
            counts[pid] += 1
            sched.yield_control(pid)
        return pid * 2

    for i in range(nprocs):
        sched.spawn(worker, i)
    sched.run()
    assert counts == [5] * nprocs
    assert sched.results() == [2 * i for i in range(nprocs)]


@given(st.integers(min_value=2, max_value=5),
       st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=15, deadline=None)
def test_block_unblock_chains_terminate(nprocs, seed):
    """A chain of processes where each unblocks its successor terminates
    under every scheduling seed.  The flag check and the block are atomic
    with respect to other processes (the token is held throughout), so
    the wakeup cannot be lost — unblock-before-block is a no-op by
    contract of the scheduler, and the flag covers that window."""
    sched = Scheduler(policy=RandomPolicy(seed))
    order = []
    done = [False] * nprocs

    def worker(pid):
        if pid != 0 and not done[pid - 1]:
            sched.block(pid, "waiting for predecessor")
        order.append(pid)
        done[pid] = True
        nxt = pid + 1
        if nxt < nprocs:
            sched.unblock(nxt)

    for i in range(nprocs):
        sched.spawn(worker, i)
    sched.run()
    assert order == list(range(nprocs))


@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=10, deadline=None)
def test_same_seed_same_interleaving(seed):
    def trace(s):
        sched = Scheduler(policy=RandomPolicy(s))
        log = []

        def worker(pid):
            for step in range(4):
                log.append((pid, step))
                sched.yield_control(pid)

        for i in range(4):
            sched.spawn(worker, i)
        sched.run()
        return log

    assert trace(seed) == trace(seed)


def test_round_robin_is_fair_under_load():
    """No process gets two turns while another is starved (round robin)."""
    sched = Scheduler(policy=RoundRobinPolicy())
    log = []

    def worker(pid):
        for _ in range(10):
            log.append(pid)
            sched.yield_control(pid)

    for i in range(3):
        sched.spawn(worker, i)
    sched.run()
    # In any window of 3 consecutive entries, all three pids appear.
    for i in range(0, len(log) - 2, 3):
        assert set(log[i:i + 3]) == {0, 1, 2}
